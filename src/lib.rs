//! Facade crate for the Imitator reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so downstream users (and the
//! repository's own examples and integration tests) can depend on a single
//! crate:
//!
//! * [`ft`] — the Imitator fault-tolerance layer and distributed runners;
//! * [`graph`] — graphs, generators, dataset stand-ins;
//! * [`partition`] — edge-cut and vertex-cut partitioners;
//! * [`engine`] — the vertex-program model and local-graph runtimes;
//! * [`cluster`] — the simulated cluster (nodes, barriers, failures);
//! * [`storage`] — the simulated DFS and binary codec;
//! * [`algos`] — PageRank, SSSP, community detection, ALS;
//! * [`metrics`] — counters, timers, memory accounting.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use imitator as ft;
pub use imitator_algos as algos;
pub use imitator_cluster as cluster;
pub use imitator_engine as engine;
pub use imitator_graph as graph;
pub use imitator_metrics as metrics;
pub use imitator_partition as partition;
pub use imitator_storage as storage;

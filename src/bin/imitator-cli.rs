//! `imitator-cli` — run graph algorithms on the simulated cluster with any
//! fault-tolerance configuration, from the command line.
//!
//! ```text
//! imitator-cli run   --algo pagerank --dataset ljournal --nodes 8 --ft rep \
//!                    --recovery rebirth --fail 2@6 --iters 20
//! imitator-cli run   --algo sssp --input graph.txt --source 0 --ft rep --recovery migration
//! imitator-cli stats --dataset gweb --nodes 8 --cut fennel
//! ```
//!
//! `--input` accepts a plain edge-list file (`src dst [weight]` per line);
//! `--dataset` one of the paper's stand-ins. Exit code 2 reports usage errors.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use imitator_repro::algos::{Als, CommunityDetection, PageRank, Sssp};
use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::ft::{
    run_edge_cut, DetectorKind, FtMode, NetFaults, RecoveryStrategy, RunConfig, RunReport,
    TransportKind,
};
use imitator_repro::graph::gen::Dataset;
use imitator_repro::graph::{Graph, Vid};
use imitator_repro::partition::{EdgeCutPartitioner, FennelEdgeCut, HashEdgeCut};
use imitator_repro::storage::{Dfs, DfsConfig};

const USAGE: &str = "\
imitator-cli — replication-based fault tolerance for graph processing

USAGE:
  imitator-cli run   [OPTIONS]      run an algorithm on the simulated cluster
  imitator-cli stats [OPTIONS]      partitioning & replica statistics only

OPTIONS (run):
  --algo <pagerank|sssp|cd|als>     algorithm            [default: pagerank]
  --dataset <name>                  gweb|ljournal|wiki|syn-gl|dblp|roadca|uk|twitter
  --input <file>                    edge-list file instead of --dataset
  --scale <f64>                     dataset scale        [default: 0.01]
  --nodes <n>                       simulated machines   [default: 8]
  --threads <n>                     worker threads per machine [default: 4]
  --cut <hash|fennel>               edge-cut partitioner [default: hash]
  --ft <none|rep|ckpt>              fault tolerance      [default: rep]
  --recovery <rebirth|migration>    REP recovery         [default: rebirth]
  --tolerance <k>                   failures tolerated   [default: 1]
  --interval <n>                    CKPT interval        [default: 4]
  --incremental                     incremental CKPT snapshots (§2.3)
  --fail <node@iter>                inject a crash (repeatable)
  --no-sync-suppress                ship every sync record (disable the
                                    redundant-sync filter; results identical)
  --no-pipeline                     strict compute → send phase ordering
                                    (disable superstep pipelining; results
                                    identical)
  --no-delta-sync                   ship full sync records (disable delta
                                    encoding; results identical)
  --tcp                             ship frames over loopback TCP sockets
                                    (results identical to channels)
  --lossy <seed>                    seeded drop/dup/reorder/delay fault
                                    schedule on every link (results identical)
  --detector <oracle|heartbeat>     failure detection    [default: oracle]
                                    oracle: the injector reports crashes;
                                    heartbeat: crashes are inferred from
                                    missed heartbeats (results identical)
  --hb-interval <ms>                heartbeat period     [default: 10]
  --hb-timeout <ms>                 silence before suspicion [default: 60]
  --iters <n>                       iteration budget     [default: 20]
  --source <vid>                    SSSP source          [default: 0]
  --seed <u64>                      generator seed       [default: 42]
  --top <n>                         print n top-valued vertices [default: 5]
";

#[derive(Debug)]
struct Opts {
    command: String,
    algo: String,
    dataset: Option<String>,
    input: Option<String>,
    scale: f64,
    nodes: usize,
    threads: usize,
    cut: String,
    ft: String,
    recovery: String,
    tolerance: usize,
    interval: u64,
    incremental: bool,
    sync_suppress: bool,
    pipeline: bool,
    delta_sync: bool,
    transport: TransportKind,
    detector: DetectorKind,
    hb_interval_ms: u64,
    hb_timeout_ms: u64,
    fails: Vec<(u32, u64)>,
    iters: u64,
    source: u32,
    seed: u64,
    top: usize,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        command: args.first().cloned().ok_or("missing command")?,
        algo: "pagerank".into(),
        dataset: None,
        input: None,
        scale: 0.01,
        nodes: 8,
        threads: 4,
        cut: "hash".into(),
        ft: "rep".into(),
        recovery: "rebirth".into(),
        tolerance: 1,
        interval: 4,
        incremental: false,
        sync_suppress: true,
        pipeline: true,
        delta_sync: true,
        transport: TransportKind::Channel,
        detector: DetectorKind::Oracle,
        hb_interval_ms: 10,
        hb_timeout_ms: 60,
        fails: Vec::new(),
        iters: 20,
        source: 0,
        seed: 42,
        top: 5,
    };
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algo" => opts.algo = value()?,
            "--dataset" => opts.dataset = Some(value()?),
            "--input" => opts.input = Some(value()?),
            "--scale" => opts.scale = value()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--nodes" => opts.nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--threads" => {
                opts.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--cut" => opts.cut = value()?,
            "--ft" => opts.ft = value()?,
            "--recovery" => opts.recovery = value()?,
            "--tolerance" => {
                opts.tolerance = value()?.parse().map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--interval" => {
                opts.interval = value()?.parse().map_err(|e| format!("--interval: {e}"))?;
            }
            "--incremental" => opts.incremental = true,
            "--no-sync-suppress" => opts.sync_suppress = false,
            "--no-pipeline" => opts.pipeline = false,
            "--no-delta-sync" => opts.delta_sync = false,
            "--tcp" => opts.transport = TransportKind::Tcp,
            "--lossy" => {
                let seed = value()?.parse().map_err(|e| format!("--lossy: {e}"))?;
                opts.transport = TransportKind::Lossy(NetFaults::from_seed(seed));
            }
            "--detector" => {
                opts.detector = match value()?.as_str() {
                    "oracle" => DetectorKind::Oracle,
                    "heartbeat" | "hb" => DetectorKind::Heartbeat,
                    other => return Err(format!("unknown detector {other}")),
                };
            }
            "--hb-interval" => {
                opts.hb_interval_ms = value()?
                    .parse()
                    .map_err(|e| format!("--hb-interval: {e}"))?;
            }
            "--hb-timeout" => {
                opts.hb_timeout_ms = value()?.parse().map_err(|e| format!("--hb-timeout: {e}"))?;
            }
            "--fail" => {
                let v = value()?;
                let (node, iter) = v
                    .split_once('@')
                    .ok_or_else(|| format!("--fail wants node@iter, got {v}"))?;
                opts.fails.push((
                    node.parse().map_err(|e| format!("--fail node: {e}"))?,
                    iter.parse().map_err(|e| format!("--fail iter: {e}"))?,
                ));
            }
            "--iters" => opts.iters = value()?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--source" => opts.source = value()?.parse().map_err(|e| format!("--source: {e}"))?,
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--top" => opts.top = value()?.parse().map_err(|e| format!("--top: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn dataset_by_name(name: &str) -> Result<Dataset, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gweb" => Dataset::GWeb,
        "ljournal" | "lj" => Dataset::LJournal,
        "wiki" => Dataset::Wiki,
        "syn-gl" | "syngl" => Dataset::SynGl,
        "dblp" => Dataset::Dblp,
        "roadca" | "road" => Dataset::RoadCa,
        "uk" | "uk-2005" => Dataset::Uk2005,
        "twitter" => Dataset::Twitter,
        other => return Err(format!("unknown dataset {other}")),
    })
}

fn load_graph(opts: &Opts) -> Result<Graph, String> {
    match (&opts.input, &opts.dataset) {
        (Some(path), _) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            Graph::from_edge_list(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
        }
        (None, Some(name)) => Ok(dataset_by_name(name)?.generate(opts.scale, opts.seed)),
        (None, None) => Ok(Dataset::LJournal.generate(opts.scale, opts.seed)),
    }
}

fn ft_mode(opts: &Opts) -> Result<(FtMode, usize), String> {
    let recovery = match opts.recovery.as_str() {
        "rebirth" => RecoveryStrategy::Rebirth,
        "migration" => RecoveryStrategy::Migration,
        other => return Err(format!("unknown recovery {other}")),
    };
    Ok(match opts.ft.as_str() {
        "none" => (FtMode::None, 0),
        "rep" => (
            FtMode::Replication {
                tolerance: opts.tolerance,
                selfish_opt: true,
                recovery,
            },
            match recovery {
                RecoveryStrategy::Rebirth => opts.fails.len().max(opts.tolerance),
                RecoveryStrategy::Migration => 0,
            },
        ),
        "ckpt" => (
            FtMode::Checkpoint {
                interval: opts.interval,
                incremental: opts.incremental,
            },
            opts.fails.len().max(1),
        ),
        other => return Err(format!("unknown ft mode {other}")),
    })
}

fn report_common<V>(r: &RunReport<V>) {
    println!(
        "finished {} iterations in {:.3}s ({} sync records, {:.1} MiB cluster state)",
        r.iterations,
        r.elapsed.as_secs_f64(),
        r.comm.messages,
        r.total_mem_bytes() as f64 / (1024.0 * 1024.0)
    );
    if r.suppressed_syncs > 0 {
        println!(
            "suppressed {} redundant sync records across {} superstep(s)",
            r.suppressed_syncs,
            r.suppressed_timeline.len()
        );
    }
    println!("fabric: {}", r.fabric);
    if r.pool.jobs > 0 {
        println!(
            "pool: {} chunk jobs, peak {} busy worker(s), {} batch(es) shipped early, \
             {:.1} ms staging overlapped (pipeline {}, delta-sync {})",
            r.pool.jobs,
            r.pool.peak_busy,
            r.pool.early_batches,
            r.pool.overlap.as_secs_f64() * 1e3,
            if r.pipeline { "on" } else { "off" },
            if r.delta_sync { "on" } else { "off" },
        );
    }
    for rec in &r.recoveries {
        println!(
            "recovery: {} of {} node(s) in {:.1} ms (reload {:.1} / reconstruct {:.1} / replay {:.1})",
            rec.strategy,
            rec.failed_nodes,
            rec.total().as_secs_f64() * 1e3,
            rec.reload.as_secs_f64() * 1e3,
            rec.reconstruct.as_secs_f64() * 1e3,
            rec.replay.as_secs_f64() * 1e3,
        );
    }
    if !r.suspicion.is_empty() {
        println!("detector: {}", r.suspicion);
    }
}

fn print_top(label: &str, scored: Vec<(usize, f64)>, top: usize) {
    let mut scored = scored;
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top {top} by {label}:");
    for (vid, score) in scored.into_iter().take(top) {
        println!("  v{vid:<10} {score:.6}");
    }
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let g = load_graph(opts)?;
    println!("graph: {}", g.stats());
    let cut = match opts.cut.as_str() {
        "hash" => HashEdgeCut.partition(&g, opts.nodes),
        "fennel" => FennelEdgeCut::default().partition(&g, opts.nodes),
        other => return Err(format!("unknown cut {other}")),
    };
    println!(
        "partitioned over {} nodes, replication factor {:.2}",
        opts.nodes,
        cut.replication_factor()
    );
    let (ft, standbys) = ft_mode(opts)?;
    let cfg = RunConfig {
        num_nodes: opts.nodes,
        max_iters: opts.iters,
        ft,
        standbys,
        detector: opts.detector,
        detection_delay: Duration::from_millis(20),
        hb_interval: Duration::from_millis(opts.hb_interval_ms),
        hb_timeout: Duration::from_millis(opts.hb_timeout_ms),
        threads_per_node: opts.threads,
        sync_suppress: opts.sync_suppress,
        pipeline: opts.pipeline,
        delta_sync: opts.delta_sync,
        transport: opts.transport,
    };
    let failures: Vec<FailurePlan> = opts
        .fails
        .iter()
        .map(|&(node, iteration)| FailurePlan {
            node: NodeId::new(node),
            iteration,
            point: FailPoint::BeforeBarrier,
        })
        .collect();
    let dfs = Dfs::new(DfsConfig::hdfs_like());

    match opts.algo.as_str() {
        "pagerank" => {
            let r = run_edge_cut(
                &g,
                &cut,
                Arc::new(PageRank::new(0.85, 0.0)),
                cfg,
                failures,
                dfs,
            );
            report_common(&r);
            print_top(
                "rank",
                r.values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i, v.rank))
                    .collect(),
                opts.top,
            );
        }
        "sssp" => {
            let r = run_edge_cut(
                &g,
                &cut,
                Arc::new(Sssp::from_source(Vid::new(opts.source))),
                cfg,
                failures,
                dfs,
            );
            report_common(&r);
            let reached = r.values.iter().filter(|d| d.is_finite()).count();
            println!(
                "{reached}/{} vertices reachable from v{}",
                r.values.len(),
                opts.source
            );
        }
        "cd" => {
            let r = run_edge_cut(&g, &cut, Arc::new(CommunityDetection), cfg, failures, dfs);
            report_common(&r);
            let mut labels = r.values.clone();
            labels.sort_unstable();
            labels.dedup();
            println!(
                "{} communities over {} vertices",
                labels.len(),
                r.values.len()
            );
        }
        "als" => {
            // Assume the bipartite layout of the SYN-GL generator.
            let users = g.num_vertices() * 10 / 11;
            let r = run_edge_cut(
                &g,
                &cut,
                Arc::new(Als::for_bipartite(8, 0.05, 1e-3, users)),
                cfg,
                failures,
                dfs,
            );
            report_common(&r);
            println!(
                "rmse: {:.4}",
                imitator_repro::algos::als_rmse(&g, &r.values)
            );
        }
        other => return Err(format!("unknown algorithm {other}")),
    }
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let g = load_graph(opts)?;
    println!("graph: {}", g.stats());
    for (name, cut) in [
        ("hash", HashEdgeCut.partition(&g, opts.nodes)),
        ("fennel", FennelEdgeCut::default().partition(&g, opts.nodes)),
    ] {
        println!(
            "{name:>8}: replication factor {:.2}, {:.2}% vertices without replicas, sizes {:?}",
            cut.replication_factor(),
            100.0 * cut.fraction_without_replicas(),
            cut.part_sizes()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match opts.command.as_str() {
        "run" => cmd_run(&opts),
        "stats" => cmd_stats(&opts),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        parse_args(&v)
    }

    #[test]
    fn defaults_are_sensible() {
        let o = parse(&["run"]).unwrap();
        assert_eq!(o.algo, "pagerank");
        assert_eq!(o.nodes, 8);
        assert_eq!(o.ft, "rep");
        assert!(o.fails.is_empty());
        assert!(!o.incremental);
        assert!(o.pipeline, "pipelining defaults on");
        assert!(o.delta_sync, "delta sync defaults on");
    }

    #[test]
    fn perf_flags_disable_pipeline_and_delta() {
        let o = parse(&["run", "--no-pipeline"]).unwrap();
        assert!(!o.pipeline);
        assert!(o.delta_sync);
        let o = parse(&["run", "--no-delta-sync"]).unwrap();
        assert!(o.pipeline);
        assert!(!o.delta_sync);
        let o = parse(&["run", "--no-pipeline", "--no-delta-sync"]).unwrap();
        assert!(!o.pipeline && !o.delta_sync);
    }

    #[test]
    fn parses_full_command_line() {
        let o = parse(&[
            "run",
            "--algo",
            "sssp",
            "--dataset",
            "roadca",
            "--nodes",
            "4",
            "--ft",
            "ckpt",
            "--interval",
            "2",
            "--incremental",
            "--fail",
            "1@3",
            "--fail",
            "2@5",
            "--iters",
            "50",
            "--source",
            "7",
        ])
        .unwrap();
        assert_eq!(o.algo, "sssp");
        assert_eq!(o.interval, 2);
        assert!(o.incremental);
        assert_eq!(o.fails, vec![(1, 3), (2, 5)]);
        assert_eq!(o.source, 7);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["run", "--nodes"]).is_err()); // missing value
        assert!(parse(&["run", "--nodes", "abc"]).is_err());
        assert!(parse(&["run", "--fail", "3"]).is_err()); // no @
        assert!(parse(&["run", "--wat"]).is_err());
        assert!(parse(&["run", "--detector", "psychic"]).is_err());
        assert!(parse(&["run", "--hb-interval", "soon"]).is_err());
    }

    #[test]
    fn detector_flags_parse() {
        let o = parse(&["run"]).unwrap();
        assert_eq!(o.detector, DetectorKind::Oracle);
        assert_eq!((o.hb_interval_ms, o.hb_timeout_ms), (10, 60));
        let o = parse(&[
            "run",
            "--detector",
            "heartbeat",
            "--hb-interval",
            "5",
            "--hb-timeout",
            "25",
        ])
        .unwrap();
        assert_eq!(o.detector, DetectorKind::Heartbeat);
        assert_eq!((o.hb_interval_ms, o.hb_timeout_ms), (5, 25));
        let o = parse(&["run", "--detector", "hb"]).unwrap();
        assert_eq!(o.detector, DetectorKind::Heartbeat);
    }

    #[test]
    fn dataset_names_resolve() {
        for name in [
            "gweb", "LJOURNAL", "wiki", "syn-gl", "dblp", "roadca", "uk", "twitter",
        ] {
            assert!(dataset_by_name(name).is_ok(), "{name}");
        }
        assert!(dataset_by_name("nope").is_err());
    }

    #[test]
    fn ft_mode_resolution() {
        let mut o = parse(&["run", "--ft", "rep", "--recovery", "migration"]).unwrap();
        let (mode, standbys) = ft_mode(&o).unwrap();
        assert!(matches!(mode, FtMode::Replication { .. }));
        assert_eq!(standbys, 0);
        o.ft = "ckpt".into();
        o.incremental = true;
        let (mode, standbys) = ft_mode(&o).unwrap();
        assert!(matches!(
            mode,
            FtMode::Checkpoint {
                incremental: true,
                ..
            }
        ));
        assert_eq!(standbys, 1);
        o.ft = "bogus".into();
        assert!(ft_mode(&o).is_err());
    }
}

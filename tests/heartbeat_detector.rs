//! The heartbeat failure detector must be *invisible in the results*: a
//! run that notices crashes through missed heartbeats produces bit-identical
//! values, iteration counts and recovery episodes to a run told about the
//! same crashes by the injector oracle — on every engine, thread count and
//! transport. And it must be *false-positive-safe*: a node that merely goes
//! silent (stalls) is suspected, then retracted when its heartbeats resume,
//! with zero recovery machinery engaged; only a stall that outlives the
//! suspicion fence gets the node fenced out, idempotently, exactly like a
//! crash at the same protocol point.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::{
    run_edge_cut, run_vertex_cut, DetectorKind, FtMode, NetFaults, RecoveryStrategy, RunConfig,
    RunReport, TransportKind,
};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    graph: Graph,
    nodes: usize,
    strategy: RecoveryStrategy,
    threads: usize,
    /// `None` → in-process channels; `Some(seed)` → seeded lossy links.
    lossy_seed: Option<u64>,
    edge_cut: bool,
    // (victim, iteration, before_barrier) — victims distinct.
    failures: Vec<(usize, u64, bool)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..5,   // nodes
        30usize..90, // vertices
        proptest::collection::vec((any::<u32>(), any::<u32>()), 20..120),
        prop_oneof![
            Just(RecoveryStrategy::Rebirth),
            Just(RecoveryStrategy::Migration)
        ],
        prop_oneof![Just(1usize), Just(4usize)],
        proptest::option::of(any::<u64>()),
        any::<bool>(),
        proptest::collection::vec((0usize..5, 0u64..5, any::<bool>()), 1..3),
    )
        .prop_map(
            |(nodes, n, pairs, strategy, threads, lossy_seed, edge_cut, raw_failures)| {
                let pairs: Vec<(u32, u32)> = pairs
                    .into_iter()
                    .map(|(a, b)| (a % n as u32, b % n as u32))
                    .collect();
                let graph = gen::from_pairs(n, &pairs);
                let mut failures: Vec<(usize, u64, bool)> = Vec::new();
                for (v, iter, before) in raw_failures {
                    let victim = v % nodes;
                    if failures.iter().all(|&(w, _, _)| w != victim) && failures.len() + 1 < nodes {
                        failures.push((victim, iter, before));
                    }
                }
                Scenario {
                    graph,
                    nodes,
                    strategy,
                    threads,
                    lossy_seed,
                    edge_cut,
                    failures,
                }
            },
        )
        .prop_filter("need at least one failure", |s| !s.failures.is_empty())
}

fn plans(s: &Scenario) -> Vec<FailurePlan> {
    s.failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect()
}

fn config(s: &Scenario, detector: DetectorKind) -> RunConfig {
    RunConfig {
        num_nodes: s.nodes,
        max_iters: 20,
        ft: FtMode::Replication {
            tolerance: s.failures.len().max(1),
            selfish_opt: false,
            recovery: s.strategy,
        },
        standbys: match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len().max(1),
            RecoveryStrategy::Migration => 0,
        },
        threads_per_node: s.threads,
        transport: match s.lossy_seed {
            Some(seed) => TransportKind::Lossy(NetFaults::from_seed(seed)),
            None => TransportKind::Channel,
        },
        detector,
        // Short enough that a run pays ~tens of milliseconds per crash
        // waiting for suspicion to mature, long enough for real scheduling
        // noise: period 1 ms, suspect after 6 ms of silence.
        hb_interval: Duration::from_millis(1),
        hb_timeout: Duration::from_millis(6),
        ..RunConfig::default()
    }
}

fn run(s: &Scenario, detector: DetectorKind, failures: Vec<FailurePlan>) -> RunReport<u32> {
    if s.edge_cut {
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(s, detector),
            failures,
            Dfs::new(DfsConfig::instant()),
        )
    } else {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(s, detector),
            failures,
            Dfs::new(DfsConfig::instant()),
        )
    }
}

/// `PROPTEST_CASES` (used by the non-blocking deep-fuzz CI job) scales the
/// case count; the explicit default would otherwise shadow the env var.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// The tentpole property: swapping the injector oracle for the
    /// heartbeat/suspicion subsystem changes *when the wall-clock notices*
    /// a crash but nothing about the computation — same values, same
    /// committed iterations, same number of recovery episodes, on both
    /// engines, serial and parallel, over reliable and lossy links.
    #[test]
    fn heartbeat_detection_bit_identical(s in arb_scenario()) {
        let oracle = run(&s, DetectorKind::Oracle, plans(&s));
        let heartbeat = run(&s, DetectorKind::Heartbeat, plans(&s));
        prop_assert_eq!(&heartbeat.values, &oracle.values);
        prop_assert_eq!(heartbeat.iterations, oracle.iterations);
        prop_assert_eq!(heartbeat.recoveries.len(), oracle.recoveries.len());
        // The oracle never suspects; the heartbeat detector must have
        // genuinely inferred every episode it recovered from.
        prop_assert!(oracle.suspicion.is_empty());
        if !heartbeat.recoveries.is_empty() {
            prop_assert!(heartbeat.suspicion.confirmed > 0);
            prop_assert!(heartbeat.suspicion.detect_ticks > 0);
        }
        for r in &heartbeat.recoveries {
            prop_assert_eq!(r.counters.attempts, r.counters.aborts + 1);
        }
    }
}

fn stall_scenario(graph_seed: u64) -> Scenario {
    let pairs: Vec<(u32, u32)> = (0..150u64)
        .map(|i| {
            let x = (graph_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i * 2654435761))
                % 60;
            let y = (i * 31) % 60;
            (x as u32, y as u32)
        })
        .collect();
    Scenario {
        graph: gen::from_pairs(60, &pairs),
        nodes: 4,
        strategy: RecoveryStrategy::Rebirth,
        threads: 2,
        lossy_seed: None,
        edge_cut: true,
        failures: Vec::new(),
    }
}

/// A node that goes silent for longer than the suspicion timeout but less
/// than the fence is suspected and then *retracted* the moment its
/// heartbeats resume: the run completes with clean results, no recovery
/// machinery engaged, and the false positive visible only in the stats.
#[test]
fn stall_is_suspected_then_retracted_without_recovery() {
    let s = stall_scenario(7);
    let clean = run(&s, DetectorKind::Oracle, vec![]);
    // timeout 6 ms = 30 detector ticks; fence = 40x timeout = 1200 ticks.
    // Stalling 90 ticks (~18 ms) sails past suspicion, never near the fence.
    let stalled = run(
        &s,
        DetectorKind::Heartbeat,
        vec![FailurePlan {
            node: NodeId::new(2),
            iteration: 3,
            point: FailPoint::Stall(90),
        }],
    );
    assert_eq!(stalled.values, clean.values);
    assert_eq!(stalled.iterations, clean.iterations);
    assert!(
        stalled.recoveries.is_empty(),
        "a retracted suspicion must not start recovery"
    );
    assert_eq!(stalled.suspicion.confirmed, 0, "nobody actually died");
    assert!(
        stalled.suspicion.retracted >= 1,
        "the stalled node must have been suspected and retracted, got {:?}",
        stalled.suspicion
    );
}

/// The same stall under the oracle detector is a no-op: nobody watches
/// silence, so nothing is suspected and nothing changes.
#[test]
fn stall_under_oracle_is_invisible() {
    let s = stall_scenario(11);
    let clean = run(&s, DetectorKind::Oracle, vec![]);
    let stalled = run(
        &s,
        DetectorKind::Oracle,
        vec![FailurePlan {
            node: NodeId::new(1),
            iteration: 2,
            point: FailPoint::Stall(90),
        }],
    );
    assert_eq!(stalled.values, clean.values);
    assert!(stalled.recoveries.is_empty());
    assert!(stalled.suspicion.is_empty());
}

/// A stall that outlives the suspicion fence gets the node *fenced*: the
/// cluster confirms it dead and recovers exactly as if it had crashed at
/// the same protocol point, and the fenced node exits instead of fighting
/// its way back in. The stall sits before any compute or send of that
/// iteration, so the surviving protocol is identical to a BeforeBarrier
/// crash at the same (node, iteration).
#[test]
fn stall_past_fence_is_confirmed_and_fenced_like_a_crash() {
    let s = stall_scenario(13);
    let mut cfg = config(&s, DetectorKind::Heartbeat);
    // Tighten so the test doesn't sleep for seconds: timeout 2 ms = 10
    // ticks, fence = 400 ticks (~80 ms); a 600-tick stall must be fenced.
    cfg.hb_interval = Duration::from_millis(1);
    cfg.hb_timeout = Duration::from_millis(2);
    let cut = HashEdgeCut.partition(&s.graph, s.nodes);
    let crashed = run_edge_cut(
        &s.graph,
        &cut,
        Arc::new(MinLabel),
        config(&s, DetectorKind::Oracle),
        vec![FailurePlan {
            node: NodeId::new(2),
            iteration: 3,
            point: FailPoint::BeforeBarrier,
        }],
        Dfs::new(DfsConfig::instant()),
    );
    let fenced = run_edge_cut(
        &s.graph,
        &cut,
        Arc::new(MinLabel),
        cfg,
        vec![FailurePlan {
            node: NodeId::new(2),
            iteration: 3,
            point: FailPoint::Stall(600),
        }],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(fenced.values, crashed.values);
    assert_eq!(fenced.iterations, crashed.iterations);
    assert_eq!(fenced.recoveries.len(), crashed.recoveries.len());
    assert!(fenced.suspicion.confirmed >= 1, "{:?}", fenced.suspicion);
    for r in &fenced.recoveries {
        assert_eq!(
            r.counters.attempts,
            r.counters.aborts + 1,
            "restartable-recovery invariant must survive fencing"
        );
    }
}

//! Every dataset stand-in runs its Table-1 workload end-to-end on both
//! engines, with replication fault tolerance on and a failure injected —
//! the full paper pipeline at miniature scale.

use std::sync::Arc;

use imitator_repro::algos::{Als, CommunityDetection, PageRank, Sssp};
use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::ft::{run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_repro::graph::gen::Dataset;
use imitator_repro::graph::{Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, HybridVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

const NODES: usize = 4;

fn cfg(max_iters: u64) -> RunConfig {
    RunConfig {
        num_nodes: NODES,
        max_iters,
        ft: FtMode::Replication {
            tolerance: 1,
            selfish_opt: true,
            recovery: RecoveryStrategy::Migration,
        },
        ..RunConfig::default()
    }
}

fn one_failure() -> Vec<FailurePlan> {
    vec![FailurePlan {
        node: NodeId::new(1),
        iteration: 2,
        point: FailPoint::BeforeBarrier,
    }]
}

fn graph_for(d: Dataset) -> Graph {
    d.generate(0.002, 7)
}

#[test]
fn pagerank_datasets_run_on_both_engines() {
    for d in [Dataset::GWeb, Dataset::LJournal, Dataset::Wiki] {
        let g = graph_for(d);
        let prog = Arc::new(PageRank::new(0.85, 0.0));
        let ecut = HashEdgeCut.partition(&g, NODES);
        let r = run_edge_cut(
            &g,
            &ecut,
            Arc::clone(&prog),
            cfg(10),
            one_failure(),
            Dfs::new(DfsConfig::instant()),
        );
        assert_eq!(r.iterations, 10, "{d} edge-cut");
        assert!(r.values.iter().all(|v| v.rank.is_finite()));

        let vcut = HybridVertexCut::with_threshold(30).partition(&g, NODES);
        let r = run_vertex_cut(
            &g,
            &vcut,
            prog.clone(),
            cfg(10),
            one_failure(),
            Dfs::new(DfsConfig::instant()),
        );
        assert_eq!(r.iterations, 10, "{d} vertex-cut");
    }
}

#[test]
fn uk_and_twitter_standins_run_vertex_cut() {
    for d in [Dataset::Uk2005, Dataset::Twitter] {
        let g = d.generate(0.0002, 7);
        let cut = HybridVertexCut::with_threshold(30).partition(&g, NODES);
        let r = run_vertex_cut(
            &g,
            &cut,
            Arc::new(PageRank::new(0.85, 0.0)),
            cfg(8),
            one_failure(),
            Dfs::new(DfsConfig::instant()),
        );
        assert_eq!(r.iterations, 8, "{d}");
        assert_eq!(r.recoveries.len(), 1);
    }
}

#[test]
fn syn_gl_runs_als() {
    let g = graph_for(Dataset::SynGl);
    let users = g.num_vertices() * 10 / 11;
    let cut = HashEdgeCut.partition(&g, NODES);
    let r = run_edge_cut(
        &g,
        &cut,
        Arc::new(Als::for_bipartite(4, 0.1, 1e-4, users)),
        cfg(8),
        one_failure(),
        Dfs::new(DfsConfig::instant()),
    );
    assert!(r.iterations > 0);
    assert!(r.values.iter().all(|v| v.0.iter().all(|x| x.is_finite())));
}

#[test]
fn dblp_runs_community_detection() {
    let g = graph_for(Dataset::Dblp);
    let cut = HashEdgeCut.partition(&g, NODES);
    let r = run_edge_cut(
        &g,
        &cut,
        Arc::new(CommunityDetection),
        cfg(30),
        one_failure(),
        Dfs::new(DfsConfig::instant()),
    );
    // Communities form: far fewer labels than vertices.
    let mut labels = r.values.clone();
    labels.sort_unstable();
    labels.dedup();
    assert!(
        labels.len() * 2 < r.values.len(),
        "{} labels over {} vertices — no communities formed",
        labels.len(),
        r.values.len()
    );
}

#[test]
fn roadca_runs_sssp() {
    let g = graph_for(Dataset::RoadCa);
    let cut = HashEdgeCut.partition(&g, NODES);
    let r = run_edge_cut(
        &g,
        &cut,
        Arc::new(Sssp::from_source(Vid::new(0))),
        cfg(5_000),
        one_failure(),
        Dfs::new(DfsConfig::instant()),
    );
    let reference = imitator_repro::algos::sssp_reference(&g, Vid::new(0));
    assert_eq!(r.values, reference);
}

//! Driver conformance: both compute models run through the *same* generic
//! superstep driver and recovery state machine, so when they are given the
//! same replica placement they must make identical recovery *decisions* —
//! same strategy, same mirrors promoted, same nodes contacted — for the
//! same failure schedule.
//!
//! The placement is made identical by constructing a vertex-cut that
//! mirrors an edge-cut: every edge is owned by the part owning its target
//! (so each part's copy-set is exactly the edge-cut's masters + replicas)
//! and masters are forced to the edge-cut owners. The fault-tolerance plan
//! is computed from the copy-sets, so both models see the same mirrors and
//! the shared recovery machine must promote the same vertices.

use std::sync::Arc;

use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::{
    run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig, RunReport,
};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{EdgeCut, EdgeCutPartitioner, HashEdgeCut, VertexCut};
use imitator_repro::storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven, identical
/// results under both engines.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

fn lcg_graph(n: u32, m: usize, seed: u64) -> Graph {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut pairs = Vec::with_capacity(m);
    for _ in 0..m {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % u64::from(n)) as u32;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((x >> 33) % u64::from(n)) as u32;
        pairs.push((a, b));
    }
    gen::from_pairs(n as usize, &pairs)
}

/// A vertex-cut with exactly the edge-cut's copy-sets: each edge lives on
/// the part owning its target, each master on the edge-cut owner.
fn mirrored_vertex_cut(g: &Graph, cut: &EdgeCut) -> VertexCut {
    let edge_owner: Vec<u32> = g.edges().iter().map(|e| cut.owner(e.dst) as u32).collect();
    VertexCut::from_edge_owner(g, cut.num_parts(), edge_owner, Some(&|v| cut.owner(v)))
}

fn plans(failures: &[(usize, u64, bool)]) -> Vec<FailurePlan> {
    failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect()
}

fn assert_same_recovery_decisions(ec: &RunReport<u32>, vc: &RunReport<u32>, label: &str) {
    assert_eq!(
        ec.recoveries.len(),
        vc.recoveries.len(),
        "{label}: episode count"
    );
    for (i, (e, v)) in ec.recoveries.iter().zip(&vc.recoveries).enumerate() {
        assert_eq!(e.strategy, v.strategy, "{label}: episode {i} strategy");
        assert_eq!(
            e.failed_nodes, v.failed_nodes,
            "{label}: episode {i} failed nodes"
        );
        assert_eq!(e.promoted, v.promoted, "{label}: episode {i} promotions");
        assert_eq!(e.contacted, v.contacted, "{label}: episode {i} contacted");
    }
    // Same program, same graph: the fixpoint must agree too.
    assert_eq!(ec.values, vc.values, "{label}: final values");
}

fn conformance_case(
    strategy: RecoveryStrategy,
    nodes: usize,
    tolerance: usize,
    failures: &[(usize, u64, bool)],
    seed: u64,
) {
    let g = lcg_graph(160, 550, seed);
    let ec_cut = HashEdgeCut.partition(&g, nodes);
    let vc_cut = mirrored_vertex_cut(&g, &ec_cut);
    let standbys = match strategy {
        RecoveryStrategy::Rebirth => failures.len(),
        RecoveryStrategy::Migration => 0,
    };
    let cfg = RunConfig {
        num_nodes: nodes,
        max_iters: 30,
        ft: FtMode::Replication {
            tolerance,
            selfish_opt: false,
            recovery: strategy,
        },
        standbys,
        ..RunConfig::default()
    };
    let ec = run_edge_cut(
        &g,
        &ec_cut,
        Arc::new(MinLabel),
        cfg,
        plans(failures),
        Dfs::new(DfsConfig::instant()),
    );
    let vc = run_vertex_cut(
        &g,
        &vc_cut,
        Arc::new(MinLabel),
        cfg,
        plans(failures),
        Dfs::new(DfsConfig::instant()),
    );
    assert!(!ec.recoveries.is_empty(), "scenario must exercise recovery");
    assert_same_recovery_decisions(&ec, &vc, &format!("{strategy:?}"));
}

#[test]
fn rebirth_decisions_match_across_models() {
    conformance_case(RecoveryStrategy::Rebirth, 4, 1, &[(1, 2, true)], 7);
}

#[test]
fn rebirth_double_failure_decisions_match_across_models() {
    conformance_case(
        RecoveryStrategy::Rebirth,
        5,
        2,
        &[(0, 1, true), (3, 3, false)],
        8,
    );
}

#[test]
fn migration_decisions_match_across_models() {
    conformance_case(RecoveryStrategy::Migration, 4, 1, &[(2, 2, true)], 9);
}

#[test]
fn migration_double_failure_decisions_match_across_models() {
    conformance_case(
        RecoveryStrategy::Migration,
        5,
        2,
        &[(1, 1, false), (4, 3, true)],
        10,
    );
}

//! Loopback-TCP smoke: a small run on each engine over
//! [`TransportKind::Tcp`] — real sockets, length-prefixed frames, the
//! columnar wire codec end-to-end — must reproduce the in-process channel
//! run bit-for-bit, logical byte accounting included. CI runs this file as
//! its own (non-blocking) job so a sandbox without loopback sockets cannot
//! mask an engine regression, but it is deliberately cheap enough to live
//! in the default test sweep too.

use std::sync::Arc;

use imitator_repro::algos::PageRank;
use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::{
    run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig, TransportKind,
};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

fn smoke_graph(n: u32, m: usize, seed: u64) -> Graph {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut pairs = Vec::with_capacity(m);
    for _ in 0..m {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % u64::from(n)) as u32;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((x >> 33) % u64::from(n)) as u32;
        pairs.push((a, b));
    }
    gen::from_pairs(n as usize, &pairs)
}

fn cfg(transport: TransportKind, ft: FtMode, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: 3,
        max_iters: 12,
        ft,
        standbys,
        threads_per_node: 2,
        transport,
        ..RunConfig::default()
    }
}

#[test]
fn tcp_edge_cut_matches_channel() {
    let g = smoke_graph(80, 260, 11);
    let cut = HashEdgeCut.partition(&g, 3);
    let run = |transport| {
        run_edge_cut(
            &g,
            &cut,
            Arc::new(PageRank::new(0.85, 0.0)),
            cfg(transport, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        )
    };
    let channel = run(TransportKind::Channel);
    let tcp = run(TransportKind::Tcp);
    assert_eq!(tcp.values, channel.values);
    assert_eq!(tcp.iterations, channel.iterations);
    assert_eq!(tcp.comm.messages, channel.comm.messages);
    assert_eq!(tcp.comm.bytes, channel.comm.bytes);
    assert_eq!(tcp.fabric.redelivered, 0, "TCP links never duplicate");
}

#[test]
fn tcp_vertex_cut_recovery_matches_channel() {
    let g = smoke_graph(80, 260, 12);
    let cut = RandomVertexCut.partition(&g, 3);
    let ft = FtMode::Replication {
        tolerance: 1,
        selfish_opt: false,
        recovery: RecoveryStrategy::Rebirth,
    };
    let plan = vec![FailurePlan {
        node: NodeId::from_index(1),
        iteration: 2,
        point: FailPoint::BeforeBarrier,
    }];
    let run = |transport| {
        run_vertex_cut(
            &g,
            &cut,
            Arc::new(MinLabel),
            cfg(transport, ft, 1),
            plan.clone(),
            Dfs::new(DfsConfig::instant()),
        )
    };
    let channel = run(TransportKind::Channel);
    let tcp = run(TransportKind::Tcp);
    assert_eq!(tcp.values, channel.values);
    assert_eq!(tcp.iterations, channel.iterations);
    assert_eq!(tcp.comm.messages, channel.comm.messages);
    assert_eq!(tcp.comm.bytes, channel.comm.bytes);
    assert_eq!(tcp.recoveries.len(), channel.recoveries.len());
    assert_eq!(
        tcp.recoveries[0].comm.bytes,
        channel.recoveries[0].comm.bytes
    );
}

//! The reproduction's central property, tested over *random* graphs,
//! cluster sizes, failure schedules and recovery strategies:
//!
//! > A run that loses machines and recovers produces exactly the results of
//! > a run that never failed.
//!
//! This is the paper's implicit correctness contract for Imitator (§5): the
//! replicas plus the replayed activation state reconstruct the crashed
//! machines' state precisely.

use std::sync::Arc;

use proptest::prelude::*;

use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::{
    run_edge_cut, run_vertex_cut, FtMode, LinkFaults, NetFaults, RecoveryStrategy, RunConfig,
    RunReport, TransportKind,
};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    graph: Graph,
    nodes: usize,
    strategy: RecoveryStrategy,
    tolerance: usize,
    // (victim, iteration, before_barrier) — victims distinct, within range.
    failures: Vec<(usize, u64, bool)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..5,    // nodes
        30usize..200, // vertices
        proptest::collection::vec((any::<u32>(), any::<u32>()), 20..300),
        prop_oneof![
            Just(RecoveryStrategy::Rebirth),
            Just(RecoveryStrategy::Migration)
        ],
        1usize..3, // tolerance K
        proptest::collection::vec((0usize..5, 0u64..6, any::<bool>()), 1..3),
    )
        .prop_map(|(nodes, n, pairs, strategy, tolerance, raw_failures)| {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let graph = gen::from_pairs(n, &pairs);
            // Distinct victims, at most `tolerance` per iteration, never the
            // whole cluster at once.
            let mut failures: Vec<(usize, u64, bool)> = Vec::new();
            for (v, iter, before) in raw_failures {
                let victim = v % nodes;
                if failures.iter().all(|&(w, _, _)| w != victim)
                    && failures.len() < tolerance
                    && failures.len() + 1 < nodes
                {
                    failures.push((victim, iter, before));
                }
            }
            Scenario {
                graph,
                nodes,
                strategy,
                tolerance: tolerance.min(nodes - 1),
                failures,
            }
        })
        .prop_filter("need at least one failure", |s| !s.failures.is_empty())
}

fn plans(s: &Scenario) -> Vec<FailurePlan> {
    s.failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect()
}

fn config(s: &Scenario, ft: FtMode, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: s.nodes,
        max_iters: 30,
        ft,
        standbys,
        ..RunConfig::default()
    }
}

/// `PROPTEST_CASES` (used by the non-blocking deep-fuzz CI job) scales the
/// case count; the explicit default would otherwise shadow the env var.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    #[test]
    fn edge_cut_recovery_is_equivalent(s in arb_scenario()) {
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, ft, standbys),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn vertex_cut_recovery_is_equivalent(s in arb_scenario()) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, ft, standbys),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn vertex_cut_checkpoint_recovery_is_equivalent(
        (s, incremental) in (arb_scenario(), any::<bool>())
    ) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(
                &s,
                FtMode::Checkpoint { interval: 2, incremental },
                s.failures.len(),
            ),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn edge_cut_parallel_matches_serial((s, threads) in (arb_scenario(), 1usize..=8)) {
        // The intra-node compute pool must be invisible in the output: any
        // threads_per_node produces bit-identical values to a single-threaded
        // run, even across injected failures and Rebirth/Migration recovery.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: 1, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let parallel = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(parallel.values, serial.values);
        prop_assert_eq!(parallel.iterations, serial.iterations);
    }

    #[test]
    fn vertex_cut_parallel_matches_serial((s, threads) in (arb_scenario(), 1usize..=8)) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: 1, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let parallel = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(parallel.values, serial.values);
        prop_assert_eq!(parallel.iterations, serial.iterations);
    }

    #[test]
    fn edge_cut_pipelining_is_invisible(
        (s, threads, pipeline, delta_sync) in
            (arb_scenario(), 1usize..=8, any::<bool>(), any::<bool>())
    ) {
        // Pipelined supersteps (chunks shipped as they complete, with only
        // the tail fenced by the barrier) must be invisible: every
        // (pipeline, threads) combination is bit-identical to the strict
        // serial run — values, iterations, and the exact logical comm
        // accounting — across injected failures, including crashes landing
        // mid-pipeline before the tail fence (`FailPoint::BeforeBarrier`
        // fires after chunk batches have already shipped). Both sides run
        // with the same delta_sync: varint span frames genuinely shrink u32
        // traffic, so delta is a byte-changing axis (`delta_sync_shrinks_
        // wide_value_traffic` proves it downward-only); threading and
        // pipelining must not move a byte on either setting.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig {
                threads_per_node: 1,
                pipeline: false,
                delta_sync,
                ..config(&s, ft, standbys)
            },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let piped = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig {
                threads_per_node: threads,
                pipeline,
                delta_sync,
                ..config(&s, ft, standbys)
            },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(piped.values, serial.values);
        prop_assert_eq!(piped.iterations, serial.iterations);
        prop_assert_eq!(piped.comm, serial.comm);
        prop_assert_eq!(piped.suppressed_syncs, serial.suppressed_syncs);
    }

    #[test]
    fn vertex_cut_pipelining_is_invisible(
        (s, threads, pipeline, delta_sync) in
            (arb_scenario(), 1usize..=8, any::<bool>(), any::<bool>())
    ) {
        // Vertex-cut twin of `edge_cut_pipelining_is_invisible`: the dense
        // engine additionally pipelines mirror->master gather shipping, so
        // this also proves per-chunk Gather envelopes reassociate to the
        // same accumulator folds.
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig {
                threads_per_node: 1,
                pipeline: false,
                delta_sync,
                ..config(&s, ft, standbys)
            },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let piped = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig {
                threads_per_node: threads,
                pipeline,
                delta_sync,
                ..config(&s, ft, standbys)
            },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(piped.values, serial.values);
        prop_assert_eq!(piped.iterations, serial.iterations);
        prop_assert_eq!(piped.comm, serial.comm);
        prop_assert_eq!(piped.suppressed_syncs, serial.suppressed_syncs);
    }

    #[test]
    fn edge_cut_suppression_is_invisible((s, threads) in (arb_scenario(), 1usize..=8)) {
        // Redundant-sync suppression must be a pure wire optimisation: with
        // it on or off, any thread count, and injected failures recovered by
        // Rebirth or Migration, the output is bit-identical.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let on = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: true, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let off = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: false, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(off.suppressed_syncs, 0);
        prop_assert_eq!(on.values, off.values);
        prop_assert_eq!(on.iterations, off.iterations);
    }

    #[test]
    fn vertex_cut_suppression_is_invisible((s, threads) in (arb_scenario(), 1usize..=8)) {
        // The dense vertex-cut engine re-syncs every master each iteration,
        // so the filter skips real traffic here; results must not move.
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let on = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: true, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let off = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: false, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(off.suppressed_syncs, 0);
        prop_assert_eq!(on.values, off.values);
        prop_assert_eq!(on.iterations, off.iterations);
    }

    #[test]
    fn checkpoint_suppression_is_invisible(
        (s, incremental, threads) in (arb_scenario(), any::<bool>(), 1usize..=8)
    ) {
        // Checkpoint recovery resets masters from snapshots and re-ships
        // state in a full-sync round — the filter's invalidation rules
        // (clear on reset/chain, per-destination invalidation on full
        // snapshots) must keep the skipped records provably redundant.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Checkpoint { interval: 2, incremental };
        let on = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: true, ..config(&s, ft, s.failures.len()) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let off = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: false, ..config(&s, ft, s.failures.len()) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(off.suppressed_syncs, 0);
        prop_assert_eq!(on.values, off.values);
        prop_assert_eq!(on.iterations, off.iterations);
    }

    #[test]
    fn incremental_checkpoint_matches_full_across_threads(
        (s, threads) in (arb_scenario(), 1usize..=8)
    ) {
        // Delta epochs must be a pure storage optimisation: a run recovering
        // from base+delta chains is bit-identical to one recovering from
        // full snapshots only, at any thread count, across injected
        // failures on both engines.
        let ft = |incremental| FtMode::Checkpoint { interval: 2, incremental };
        for edge_cut in [true, false] {
            let run = |incremental, threads_per_node| {
                let cfg = RunConfig {
                    threads_per_node,
                    ..config(&s, ft(incremental), s.failures.len())
                };
                if edge_cut {
                    let cut = HashEdgeCut.partition(&s.graph, s.nodes);
                    run_edge_cut(
                        &s.graph,
                        &cut,
                        Arc::new(MinLabel),
                        cfg,
                        plans(&s),
                        Dfs::new(DfsConfig::instant()),
                    )
                } else {
                    let cut = RandomVertexCut.partition(&s.graph, s.nodes);
                    run_vertex_cut(
                        &s.graph,
                        &cut,
                        Arc::new(MinLabel),
                        cfg,
                        plans(&s),
                        Dfs::new(DfsConfig::instant()),
                    )
                }
            };
            let full = run(false, 1);
            let inc = run(true, threads);
            prop_assert_eq!(inc.values, full.values);
            prop_assert_eq!(inc.iterations, full.iterations);
        }
    }

    #[test]
    fn checkpoint_recovery_is_equivalent((s, incremental) in (arb_scenario(), any::<bool>())) {
        // Checkpointing tolerates any number of sequential failures; both
        // full and incremental (§2.3) snapshots must recover exactly.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::Checkpoint { interval: 2, incremental }, s.failures.len()),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }
}

/// NaN-flood: the adversarial workload for the redundant-sync filter. A NaN
/// value compares unequal to itself, so a NaN-stuck master emits a
/// bit-identical update *every* superstep — the only steady-state case where
/// suppression fires on the sparse edge-cut engine — while `scatter`
/// (unconditionally `true`) keeps `activate = true` on every suppressed
/// record. Recovery must still reconstruct each replica's exact
/// `(value, last_activate)` pair.
struct NanFlood;

impl VertexProgram for NanFlood {
    type Value = f32;
    type Accum = f32;

    fn init(&self, vid: Vid, _d: &Degrees) -> f32 {
        if vid.raw() == 0 {
            f32::NAN
        } else {
            1.0
        }
    }

    fn gather(&self, _w: f32, src: &f32) -> f32 {
        *src
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _v: Vid, old: &f32, acc: Option<f32>, _d: &Degrees) -> f32 {
        // NaN contributions poison the sum, so NaN spreads along edges; a
        // NaN-stuck vertex keeps recomputing the same NaN bit pattern.
        acc.map_or(*old, |a| *old + a)
    }

    fn scatter(&self, _v: Vid, _old: &f32, _new: &f32) -> bool {
        true
    }
}

/// Cycle plus chords: strongly connected, so the NaN at v0 floods every
/// vertex within a few supersteps and every vertex stays active.
fn nan_flood_graph(n: u32) -> Graph {
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i * 7 + 3) % n)])
        .collect();
    gen::from_pairs(n as usize, &pairs)
}

fn f32_bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Runs NaN-flood with one mid-run failure under `strategy` and checks the
/// recovered output is bit-identical to a clean, unsuppressed run — i.e.
/// replicas of continuously-suppressed masters carried the exact
/// `(value, last_activate)` state recovery rebuilt from.
fn nan_flood_recovery_case(strategy: RecoveryStrategy) {
    let g = nan_flood_graph(60);
    let nodes = 4;
    let cut = HashEdgeCut.partition(&g, nodes);
    let cfg = |ft, standbys, sync_suppress| RunConfig {
        num_nodes: nodes,
        max_iters: 12,
        ft,
        standbys,
        sync_suppress,
        ..RunConfig::default()
    };
    let clean = run_edge_cut(
        &g,
        &cut,
        Arc::new(NanFlood),
        cfg(FtMode::None, 0, false),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let ft = FtMode::Replication {
        tolerance: 1,
        selfish_opt: false,
        recovery: strategy,
    };
    let standbys = match strategy {
        RecoveryStrategy::Rebirth => 1,
        RecoveryStrategy::Migration => 0,
    };
    let failures = vec![FailurePlan {
        node: NodeId::from_index(1),
        iteration: 6,
        point: FailPoint::BeforeBarrier,
    }];
    let recovered = run_edge_cut(
        &g,
        &cut,
        Arc::new(NanFlood),
        cfg(ft, standbys, true),
        failures,
        Dfs::new(DfsConfig::instant()),
    );
    assert!(
        recovered.suppressed_syncs > 0,
        "NaN-stuck masters must exercise the filter"
    );
    assert_eq!(f32_bits(&recovered.values), f32_bits(&clean.values));
    assert_eq!(recovered.iterations, clean.iterations);
}

#[test]
fn nan_stuck_vertices_suppress_yet_rebirth_recovers_exactly() {
    nan_flood_recovery_case(RecoveryStrategy::Rebirth);
}

#[test]
fn nan_stuck_vertices_suppress_yet_migration_recovers_exactly() {
    nan_flood_recovery_case(RecoveryStrategy::Migration);
}

/// Wide-value drift: every master's u64 value grows by one each superstep,
/// so successive values differ only in the low byte (two across a carry).
/// A full u64 sync frame costs 13 bytes on the wire; a delta frame costs
/// 9 + span, so the drifting span of 1-2 bytes undercuts it — the workload
/// where delta-encoded sync pays.
struct Drift;

impl VertexProgram for Drift {
    type Value = u64;
    type Accum = u64;

    fn init(&self, vid: Vid, _d: &Degrees) -> u64 {
        u64::from(vid.raw()) << 8
    }

    fn gather(&self, _w: f32, src: &u64) -> u64 {
        *src
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }

    fn apply(&self, _v: Vid, old: &u64, _acc: Option<u64>, _d: &Degrees) -> u64 {
        old.wrapping_add(1)
    }

    fn scatter(&self, _v: Vid, _old: &u64, _new: &u64) -> bool {
        true
    }
}

/// Delta-encoded sync must be a pure wire-size optimisation: identical
/// values, iterations, and record counts, strictly fewer bytes than full
/// frames on a wide-value drifting workload (satellite proof that the
/// encoding actually engages — u32 programs are size-neutral by design).
#[test]
fn delta_sync_shrinks_wide_value_traffic() {
    let g = nan_flood_graph(80);
    let cfg = |delta_sync| RunConfig {
        num_nodes: 4,
        max_iters: 6,
        threads_per_node: 2,
        delta_sync,
        ..RunConfig::default()
    };
    for edge_cut in [true, false] {
        let run = |delta_sync| {
            if edge_cut {
                let cut = HashEdgeCut.partition(&g, 4);
                run_edge_cut(
                    &g,
                    &cut,
                    Arc::new(Drift),
                    cfg(delta_sync),
                    vec![],
                    Dfs::new(DfsConfig::instant()),
                )
            } else {
                let cut = RandomVertexCut.partition(&g, 4);
                run_vertex_cut(
                    &g,
                    &cut,
                    Arc::new(Drift),
                    cfg(delta_sync),
                    vec![],
                    Dfs::new(DfsConfig::instant()),
                )
            }
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.values, off.values);
        assert_eq!(on.iterations, off.iterations);
        assert_eq!(on.comm.messages, off.comm.messages);
        assert!(
            on.comm.bytes < off.comm.bytes,
            "delta frames must shrink drifting u64 sync traffic \
             (edge_cut={edge_cut}: {} !< {})",
            on.comm.bytes,
            off.comm.bytes
        );
    }
}

// ---------------------------------------------------------------------------
// Refactor goldens, split into semantics and bytes. The *semantic* hashes pin
// iterations, message counts, suppression counts, extra replicas, every
// recovery episode's strategy/size/message-traffic, and every final vertex
// value — across both models, all three recovery strategies, and four
// thread/suppression variants. They were captured at the commit before the
// ComputeModel refactor and have survived every accounting change since: a
// semantic mismatch is a behavior change, not a refactor. The *byte* totals
// (normal/FT/recovery communication plus DFS checkpoint payloads) are pinned
// separately, alongside the pre-columnar-codec totals, with the invariant
// that the columnar wire format may only shrink them: sync/gather traffic
// strictly, checkpoint payloads strictly wherever a checkpoint is written,
// migration recovery strictly (its mirror-update rounds ride the frame
// codec), and rebirth recovery not at all (its entry batches stay scalar).
// ---------------------------------------------------------------------------

/// Deterministic scenario graph (avoids depending on proptest seeding).
fn lcg_graph(n: u32, m: usize, seed: u64) -> Graph {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut pairs = Vec::with_capacity(m);
    for _ in 0..m {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % u64::from(n)) as u32;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((x >> 33) % u64::from(n)) as u32;
        pairs.push((a, b));
    }
    gen::from_pairs(n as usize, &pairs)
}

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Byte totals summed over the four thread/suppression variants of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GoldenBytes {
    /// Normal compute communication (`comm.bytes`).
    comm: u64,
    /// Fault-tolerance upkeep communication (`ft_comm.bytes`).
    ft: u64,
    /// Recovery-episode communication (sum of `rec.comm.bytes`).
    rec: u64,
    /// DFS checkpoint payload bytes actually written.
    ckpt: u64,
}

fn golden_run(
    g: &Graph,
    nodes: usize,
    ft: FtMode,
    standbys: usize,
    failures: &[(usize, u64, bool)],
    edge_cut: bool,
) -> (u64, GoldenBytes) {
    let plans: Vec<FailurePlan> = failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut bytes = GoldenBytes {
        comm: 0,
        ft: 0,
        rec: 0,
        ckpt: 0,
    };
    let mut first: Option<Vec<u32>> = None;
    for (threads, suppress) in [(1, true), (4, true), (1, false), (4, false)] {
        // The golden constants were captured before superstep pipelining and
        // delta-encoded syncs existed, so the hashed runs pin both off: the
        // hashes anchor the pre-refactor accounting regardless of what the
        // defaults grow into. (`*_pipelining_is_invisible` holds the
        // pipelined axes to the same outputs.)
        let cfg = RunConfig {
            num_nodes: nodes,
            max_iters: 30,
            ft,
            standbys,
            threads_per_node: threads,
            sync_suppress: suppress,
            pipeline: false,
            delta_sync: false,
            ..RunConfig::default()
        };
        let dfs = Dfs::new(DfsConfig::instant());
        let r = if edge_cut {
            let cut = HashEdgeCut.partition(g, nodes);
            run_edge_cut(g, &cut, Arc::new(MinLabel), cfg, plans.clone(), dfs.clone())
        } else {
            let cut = RandomVertexCut.partition(g, nodes);
            run_vertex_cut(g, &cut, Arc::new(MinLabel), cfg, plans.clone(), dfs.clone())
        };
        hash = fnv(hash, &r.iterations.to_le_bytes());
        hash = fnv(hash, &r.comm.messages.to_le_bytes());
        hash = fnv(hash, &r.ft_comm.messages.to_le_bytes());
        hash = fnv(hash, &r.suppressed_syncs.to_le_bytes());
        hash = fnv(hash, &(r.extra_replicas as u64).to_le_bytes());
        for rec in &r.recoveries {
            hash = fnv(hash, rec.strategy.as_bytes());
            hash = fnv(hash, &(rec.failed_nodes as u64).to_le_bytes());
            hash = fnv(hash, &rec.vertices_recovered.to_le_bytes());
            hash = fnv(hash, &rec.edges_recovered.to_le_bytes());
            hash = fnv(hash, &rec.comm.messages.to_le_bytes());
            bytes.rec += rec.comm.bytes;
        }
        for v in &r.values {
            hash = fnv(hash, &v.to_le_bytes());
        }
        bytes.comm += r.comm.bytes;
        bytes.ft += r.ft_comm.bytes;
        bytes.ckpt += dfs.stats().writes.bytes;
        match &first {
            None => first = Some(r.values),
            Some(f) => assert_eq!(&r.values, f, "threads/suppress variant diverged"),
        }
    }
    (hash, bytes)
}

#[test]
fn refactor_goldens_are_bit_identical() {
    let g1 = lcg_graph(120, 400, 1);
    let g2 = lcg_graph(200, 700, 2);
    let s1_failures = vec![(1usize, 2u64, true)];
    let s2_failures = vec![(0usize, 1u64, true), (3, 3, false)];
    struct Case<'a> {
        name: &'a str,
        graph: &'a Graph,
        nodes: usize,
        ft: FtMode,
        standbys: usize,
        failures: &'a [(usize, u64, bool)],
        edge_cut: bool,
        /// Pre-ComputeModel-refactor semantic hash; never allowed to move.
        sem: u64,
        /// Byte totals under the pre-columnar scalar accounting.
        old: GoldenBytes,
        /// Byte totals under the columnar wire codec; pinned exactly.
        new: GoldenBytes,
    }
    let repl = |tol, recovery| FtMode::Replication {
        tolerance: tol,
        selfish_opt: false,
        recovery,
    };
    let ckpt = |incremental| FtMode::Checkpoint {
        interval: 2,
        incremental,
    };
    let gb = |comm, ft, rec, ckpt| GoldenBytes {
        comm,
        ft,
        rec,
        ckpt,
    };
    let cases = [
        Case {
            name: "s1_rebirth_ec",
            graph: &g1,
            nodes: 4,
            ft: repl(1, RecoveryStrategy::Rebirth),
            standbys: 1,
            failures: &s1_failures,
            edge_cut: true,
            sem: 0xCDAD83957359282D,
            old: gb(22896, 324, 16368, 0),
            new: gb(14052, 180, 16368, 0),
        },
        Case {
            name: "s1_rebirth_vc",
            graph: &g1,
            nodes: 4,
            ft: repl(1, RecoveryStrategy::Rebirth),
            standbys: 1,
            failures: &s1_failures,
            edge_cut: false,
            sem: 0x89D503F6F06CD989,
            old: gb(68960, 0, 7128, 19392),
            new: gb(43432, 0, 7128, 10260),
        },
        Case {
            name: "s1_migration_ec",
            graph: &g1,
            nodes: 4,
            ft: repl(1, RecoveryStrategy::Migration),
            standbys: 0,
            failures: &s1_failures,
            edge_cut: true,
            sem: 0x2335D791956AA589,
            old: gb(21024, 216, 58624, 0),
            new: gb(12920, 120, 54884, 0),
        },
        Case {
            name: "s1_migration_vc",
            graph: &g1,
            nodes: 4,
            ft: repl(1, RecoveryStrategy::Migration),
            standbys: 0,
            failures: &s1_failures,
            edge_cut: false,
            sem: 0x391724293AEFE45D,
            old: gb(55532, 0, 48608, 38688),
            new: gb(34828, 0, 44168, 20508),
        },
        Case {
            name: "s1_ckpt_ec",
            graph: &g1,
            nodes: 4,
            ft: ckpt(false),
            standbys: 1,
            failures: &s1_failures[..1],
            edge_cut: true,
            sem: 0xB2490C13F3538AC5,
            old: gb(22572, 0, 0, 128156),
            new: gb(13872, 0, 0, 48640),
        },
        Case {
            name: "s1_ckpt_vc",
            graph: &g1,
            nodes: 4,
            ft: ckpt(false),
            standbys: 1,
            failures: &s1_failures[..1],
            edge_cut: false,
            sem: 0xE1D0B2035874C9ED,
            old: gb(68960, 0, 0, 69180),
            new: gb(43432, 0, 0, 33076),
        },
        Case {
            name: "s1_ckpt_inc_ec",
            graph: &g1,
            nodes: 4,
            ft: ckpt(true),
            standbys: 1,
            failures: &s1_failures[..1],
            edge_cut: true,
            sem: 0xB2490C13F3538AC5,
            old: gb(22572, 0, 0, 127036),
            new: gb(13872, 0, 0, 47052),
        },
        Case {
            name: "s1_ckpt_inc_vc",
            graph: &g1,
            nodes: 4,
            ft: ckpt(true),
            standbys: 1,
            failures: &s1_failures[..1],
            edge_cut: false,
            sem: 0xE1D0B2035874C9ED,
            old: gb(68960, 0, 0, 65052),
            new: gb(43432, 0, 0, 30500),
        },
        Case {
            name: "s2_rebirth_ec",
            graph: &g2,
            nodes: 5,
            ft: repl(2, RecoveryStrategy::Rebirth),
            standbys: 2,
            failures: &s2_failures,
            edge_cut: true,
            sem: 0x4A211DE51DB6B0DD,
            old: gb(71100, 11628, 54528, 0),
            new: gb(43116, 6868, 54528, 0),
        },
        Case {
            name: "s2_rebirth_vc",
            graph: &g2,
            nodes: 5,
            ft: repl(2, RecoveryStrategy::Rebirth),
            standbys: 2,
            failures: &s2_failures,
            edge_cut: false,
            sem: 0x0522124F16F0CE65,
            old: gb(190188, 2808, 21888, 33920),
            new: gb(119128, 1628, 21888, 19504),
        },
        Case {
            name: "s2_migration_ec",
            graph: &g2,
            nodes: 5,
            ft: repl(2, RecoveryStrategy::Migration),
            standbys: 0,
            failures: &s2_failures,
            edge_cut: true,
            sem: 0x6DF80C08CDF4009D,
            old: gb(64980, 10908, 365280, 0),
            new: gb(40004, 6524, 340864, 0),
        },
        Case {
            name: "s2_migration_vc",
            graph: &g2,
            nodes: 5,
            ft: repl(2, RecoveryStrategy::Migration),
            standbys: 0,
            failures: &s2_failures,
            edge_cut: false,
            sem: 0xB83390ACA60B3B9D,
            old: gb(136000, 2124, 256896, 101408),
            new: gb(85024, 1224, 231800, 58388),
        },
        Case {
            name: "s2_ckpt_ec",
            graph: &g2,
            nodes: 5,
            ft: ckpt(false),
            standbys: 1,
            failures: &s2_failures[..1],
            edge_cut: true,
            sem: 0x7BFA561A019A6BC5,
            old: gb(66132, 0, 0, 232992),
            new: gb(40240, 0, 0, 91404),
        },
        Case {
            name: "s2_ckpt_vc",
            graph: &g2,
            nodes: 5,
            ft: ckpt(false),
            standbys: 1,
            failures: &s2_failures[..1],
            edge_cut: false,
            sem: 0x8E2CDBB620D59F95,
            old: gb(204860, 0, 0, 131216),
            new: gb(127996, 0, 0, 64784),
        },
        Case {
            name: "s2_ckpt_inc_ec",
            graph: &g2,
            nodes: 5,
            ft: ckpt(true),
            standbys: 1,
            failures: &s2_failures[..1],
            edge_cut: true,
            sem: 0x7BFA561A019A6BC5,
            old: gb(66132, 0, 0, 229840),
            new: gb(40240, 0, 0, 87248),
        },
        Case {
            name: "s2_ckpt_inc_vc",
            graph: &g2,
            nodes: 5,
            ft: ckpt(true),
            standbys: 1,
            failures: &s2_failures[..1],
            edge_cut: false,
            sem: 0x8E2CDBB620D59F95,
            old: gb(204860, 0, 0, 120624),
            new: gb(127996, 0, 0, 58172),
        },
    ];
    for c in &cases {
        let (sem, bytes) = golden_run(c.graph, c.nodes, c.ft, c.standbys, c.failures, c.edge_cut);
        assert_eq!(
            sem, c.sem,
            "{}: semantic hash 0x{sem:016X} != pinned 0x{:016X}",
            c.name, c.sem
        );
        assert_eq!(
            bytes, c.new,
            "{}: byte totals moved off the pinned values",
            c.name
        );
        // The columnar codec is only allowed to *shrink* traffic.
        assert!(
            bytes.comm < c.old.comm,
            "{}: comm bytes {} must be strictly below scalar {}",
            c.name,
            bytes.comm,
            c.old.comm
        );
        assert!(
            bytes.ft <= c.old.ft,
            "{}: ft bytes {} regressed past scalar {}",
            c.name,
            bytes.ft,
            c.old.ft
        );
        let migration = matches!(
            c.ft,
            FtMode::Replication {
                recovery: RecoveryStrategy::Migration,
                ..
            }
        );
        if migration {
            assert!(
                bytes.rec < c.old.rec,
                "{}: migration recovery bytes {} must be strictly below scalar {}",
                c.name,
                bytes.rec,
                c.old.rec
            );
        } else {
            assert!(
                bytes.rec <= c.old.rec,
                "{}: recovery bytes {} regressed past scalar {}",
                c.name,
                bytes.rec,
                c.old.rec
            );
        }
        if c.old.ckpt > 0 {
            assert!(
                bytes.ckpt < c.old.ckpt,
                "{}: ckpt payload {} must be strictly below fixed-width {}",
                c.name,
                bytes.ckpt,
                c.old.ckpt
            );
        } else {
            assert_eq!(bytes.ckpt, 0, "{}: unexpected checkpoint writes", c.name);
        }
    }
}

// ---------------------------------------------------------------------------
// Cascading failures (§5.3): a second crash strikes while recovery from the
// first is still in flight. Survivors must abort the in-flight attempt,
// enlarge the failure set, restart idempotently — and the run must still
// converge bit-identically to a failure-free execution.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct NestedScenario {
    graph: Graph,
    nodes: usize,
    strategy: RecoveryStrategy,
    /// The initial crash: (victim, iteration, before_barrier).
    primary: (usize, u64, bool),
    /// A node (never the primary victim) that crashes mid-recovery.
    second: usize,
    /// Selects which recovery-phase fail point the second crash hits.
    point_sel: u8,
    standbys: usize,
    threads: usize,
}

/// The iteration a recovery episode triggered by `primary` resumes from: a
/// pre-barrier crash is detected at the same iteration's barrier, a
/// post-barrier crash at the next one. Recovery-phase fail plans key their
/// `iteration` by this value.
fn resume_iter(primary: (usize, u64, bool)) -> u64 {
    if primary.2 {
        primary.1
    } else {
        primary.1 + 1
    }
}

fn arb_nested() -> impl Strategy<Value = NestedScenario> {
    (
        4usize..6,
        40usize..160,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 30..250),
        prop_oneof![
            Just(RecoveryStrategy::Rebirth),
            Just(RecoveryStrategy::Migration)
        ],
        (0usize..6, 0u64..5, any::<bool>()),
        0usize..6,
        any::<u8>(),
        (0usize..4, 1usize..=8),
    )
        .prop_map(
            |(
                nodes,
                n,
                pairs,
                strategy,
                raw_primary,
                raw_second,
                point_sel,
                (standbys, threads),
            )| {
                let pairs: Vec<(u32, u32)> = pairs
                    .into_iter()
                    .map(|(a, b)| (a % n as u32, b % n as u32))
                    .collect();
                let victim = raw_primary.0 % nodes;
                let mut second = raw_second % nodes;
                if second == victim {
                    second = (second + 1) % nodes;
                }
                NestedScenario {
                    graph: gen::from_pairs(n, &pairs),
                    nodes,
                    strategy,
                    primary: (victim, raw_primary.1, raw_primary.2),
                    second,
                    point_sel,
                    standbys,
                    threads,
                }
            },
        )
}

/// The primary crash plus a second crash inside the recovery episode it
/// triggers. For Rebirth the second crash may also target the *reborn* node
/// itself (the standby inherits the dead node's identity), covering newbie
/// death during reload, reconstruction and replay. If the primary never
/// fires (the run converges first), the nested plan stays dormant and the
/// property degenerates to plain equivalence — still a valid assertion.
fn nested_plans(s: &NestedScenario) -> Vec<FailurePlan> {
    let (victim, iter, before) = s.primary;
    let resume = resume_iter(s.primary);
    let mut out = vec![FailurePlan {
        node: NodeId::from_index(victim),
        iteration: iter,
        point: if before {
            FailPoint::BeforeBarrier
        } else {
            FailPoint::AfterBarrier
        },
    }];
    let (point, node) = match s.strategy {
        RecoveryStrategy::Migration => (FailPoint::MigrationRound(1 + s.point_sel % 8), s.second),
        RecoveryStrategy::Rebirth => match s.point_sel % 4 {
            0 => (FailPoint::RebirthReload, s.second),
            1 => (FailPoint::RebirthReload, victim),
            2 => (FailPoint::RebirthReconstruct, victim),
            _ => (FailPoint::RebirthReplay, victim),
        },
    };
    out.push(FailurePlan {
        node: NodeId::from_index(node),
        iteration: resume,
        point,
    });
    out
}

fn nested_config(s: &NestedScenario, ft: FtMode) -> RunConfig {
    RunConfig {
        num_nodes: s.nodes,
        max_iters: 30,
        threads_per_node: s.threads,
        ft,
        standbys: s.standbys,
        ..RunConfig::default()
    }
}

/// Every successful episode took exactly one more attempt than it aborted;
/// the reborn newbie's `{1, 0}` view never outweighs the survivors' under
/// the max-merge.
fn check_counters<V>(report: &RunReport<V>) -> Result<(), TestCaseError> {
    for ep in &report.recoveries {
        prop_assert_eq!(
            ep.counters.attempts,
            ep.counters.aborts + 1,
            "episode {:?}: attempts must be aborts + 1",
            ep.counters
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    #[test]
    fn edge_cut_cascading_failure_is_equivalent(s in arb_nested()) {
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { ft: FtMode::None, standbys: 0, ..nested_config(&s, FtMode::None) },
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: 2,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            nested_config(&s, ft),
            nested_plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(&recovered.values, &clean.values);
        check_counters(&recovered)?;
    }

    #[test]
    fn vertex_cut_cascading_failure_is_equivalent(s in arb_nested()) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { ft: FtMode::None, standbys: 0, ..nested_config(&s, FtMode::None) },
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: 2,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            nested_config(&s, ft),
            nested_plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(&recovered.values, &clean.values);
        check_counters(&recovered)?;
    }

    #[test]
    fn checkpoint_cascading_failure_is_equivalent(
        (s, incremental) in (arb_nested(), any::<bool>())
    ) {
        // Checkpoint recovery reuses RebirthReload for the post-decision
        // crash and MigrationRound(1..=3) for the fallback rounds; torn
        // snapshot writes (CkptWrite) are driven by the primary selector.
        let (victim, iter, _) = s.primary;
        let resume = resume_iter(s.primary);
        let mut plans_v = vec![FailurePlan {
            node: NodeId::from_index(victim),
            iteration: iter,
            point: if s.point_sel % 3 == 2 {
                // Only fires when (iter + 1) is an epoch boundary; dormant
                // otherwise, which still asserts plain equivalence.
                FailPoint::CkptWrite
            } else if s.primary.2 {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        }];
        plans_v.push(FailurePlan {
            node: NodeId::from_index(s.second),
            iteration: resume,
            point: if s.point_sel % 2 == 0 {
                FailPoint::RebirthReload
            } else {
                FailPoint::MigrationRound(1 + s.point_sel % 3)
            },
        });
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { ft: FtMode::None, standbys: 0, ..nested_config(&s, FtMode::None) },
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Checkpoint { interval: 2, incremental };
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            nested_config(&s, ft),
            plans_v,
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(&recovered.values, &clean.values);
        check_counters(&recovered)?;
    }
}

// ---------------------------------------------------------------------------
// Deterministic cascading-failure and degradation cases. Unlike the fuzzed
// properties above these pin the exact recovery path taken: every
// MigrationRound is aborted at least once, crashed newbies are
// re-dispatched, standby exhaustion degrades (never panics), and a torn
// checkpoint epoch is never loaded.
// ---------------------------------------------------------------------------

/// Runs MinLabel on a fixed 120-vertex graph over 4 nodes, failure-free and
/// with `plans` under `ft`; returns the clean values and the faulty run's
/// report.
fn nested_run(
    edge_cut: bool,
    ft: FtMode,
    standbys: usize,
    plans: Vec<FailurePlan>,
) -> (Vec<u32>, RunReport<u32>) {
    let graph = lcg_graph(120, 400, 1);
    let nodes = 4;
    let cfg = |ft, standbys| RunConfig {
        num_nodes: nodes,
        max_iters: 30,
        ft,
        standbys,
        ..RunConfig::default()
    };
    if edge_cut {
        let cut = HashEdgeCut.partition(&graph, nodes);
        let clean = run_edge_cut(
            &graph,
            &cut,
            Arc::new(MinLabel),
            cfg(FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let rec = run_edge_cut(
            &graph,
            &cut,
            Arc::new(MinLabel),
            cfg(ft, standbys),
            plans,
            Dfs::new(DfsConfig::instant()),
        );
        (clean.values, rec)
    } else {
        let cut = RandomVertexCut.partition(&graph, nodes);
        let clean = run_vertex_cut(
            &graph,
            &cut,
            Arc::new(MinLabel),
            cfg(FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let rec = run_vertex_cut(
            &graph,
            &cut,
            Arc::new(MinLabel),
            cfg(ft, standbys),
            plans,
            Dfs::new(DfsConfig::instant()),
        );
        (clean.values, rec)
    }
}

fn crash(node: usize, iteration: u64, point: FailPoint) -> FailurePlan {
    FailurePlan {
        node: NodeId::from_index(node),
        iteration,
        point,
    }
}

fn repl2(recovery: RecoveryStrategy) -> FtMode {
    FtMode::Replication {
        tolerance: 2,
        selfish_opt: false,
        recovery,
    }
}

/// A crash at the start of every Migration round aborts the attempt; the
/// restarted episode absorbs the second victim and still converges exactly.
#[test]
fn migration_restarts_after_mid_round_crash() {
    for edge_cut in [true, false] {
        for round in 1..=8u8 {
            let plans = vec![
                crash(1, 2, FailPoint::BeforeBarrier),
                crash(2, 2, FailPoint::MigrationRound(round)),
            ];
            let (clean, rec) = nested_run(edge_cut, repl2(RecoveryStrategy::Migration), 0, plans);
            assert_eq!(rec.values, clean, "edge_cut={edge_cut} round={round}");
            assert_eq!(rec.recoveries.len(), 1, "one episode absorbs both crashes");
            let ep = &rec.recoveries[0];
            assert_eq!(ep.strategy, "migration");
            assert_eq!(ep.failed_nodes, 2, "edge_cut={edge_cut} round={round}");
            assert_eq!(
                (ep.counters.attempts, ep.counters.aborts),
                (2, 1),
                "edge_cut={edge_cut} round={round}"
            );
        }
    }
}

/// A survivor dying right after the standby-dispatch decision aborts the
/// Rebirth attempt; with standbys to spare the retry re-dispatches for the
/// enlarged failure set.
#[test]
fn rebirth_restarts_when_survivor_crashes_mid_reload() {
    for edge_cut in [true, false] {
        let plans = vec![
            crash(1, 2, FailPoint::BeforeBarrier),
            crash(2, 2, FailPoint::RebirthReload),
        ];
        let (clean, rec) = nested_run(edge_cut, repl2(RecoveryStrategy::Rebirth), 3, plans);
        assert_eq!(rec.values, clean, "edge_cut={edge_cut}");
        assert_eq!(rec.recoveries.len(), 1);
        let ep = &rec.recoveries[0];
        assert_eq!(ep.strategy, "rebirth", "edge_cut={edge_cut}");
        assert_eq!(ep.failed_nodes, 2);
        assert_eq!((ep.counters.attempts, ep.counters.aborts), (2, 1));
    }
}

/// The reborn node itself dying mid-recovery (at any of its three phases)
/// aborts the attempt; the retry dispatches a fresh standby for the same
/// identity.
#[test]
fn rebirth_redispatches_after_newbie_crash() {
    for edge_cut in [true, false] {
        for point in [
            FailPoint::RebirthReload,
            FailPoint::RebirthReconstruct,
            FailPoint::RebirthReplay,
        ] {
            let plans = vec![crash(1, 2, FailPoint::BeforeBarrier), crash(1, 2, point)];
            let (clean, rec) = nested_run(edge_cut, repl2(RecoveryStrategy::Rebirth), 3, plans);
            assert_eq!(rec.values, clean, "edge_cut={edge_cut} point={point:?}");
            assert_eq!(rec.recoveries.len(), 1);
            let ep = &rec.recoveries[0];
            assert_eq!(
                ep.strategy, "rebirth",
                "edge_cut={edge_cut} point={point:?}"
            );
            assert_eq!(
                ep.failed_nodes, 1,
                "the newbie's crash re-fails the same identity"
            );
            assert_eq!((ep.counters.attempts, ep.counters.aborts), (2, 1));
        }
    }
}

/// With no standbys at all, Rebirth degrades to Migration instead of
/// asserting; the report records the executed path.
#[test]
fn rebirth_degrades_to_migration_when_standbys_exhausted() {
    for edge_cut in [true, false] {
        let plans = vec![crash(1, 2, FailPoint::BeforeBarrier)];
        let (clean, rec) = nested_run(edge_cut, repl2(RecoveryStrategy::Rebirth), 0, plans);
        assert_eq!(rec.values, clean, "edge_cut={edge_cut}");
        assert_eq!(rec.recoveries.len(), 1);
        let ep = &rec.recoveries[0];
        assert_eq!(
            ep.strategy, "rebirth\u{2192}migration",
            "edge_cut={edge_cut}"
        );
        assert_eq!((ep.counters.attempts, ep.counters.aborts), (1, 0));
    }
}

/// An aborted attempt consumes its dispatched standby (the newbie suicides
/// to rejoin the barrier protocol); when the retry's enlarged failure set
/// outnumbers the remaining pool, Rebirth degrades mid-episode.
#[test]
fn rebirth_degrades_after_abort_consumes_standbys() {
    for edge_cut in [true, false] {
        let plans = vec![
            crash(1, 2, FailPoint::BeforeBarrier),
            crash(2, 2, FailPoint::RebirthReload),
        ];
        let (clean, rec) = nested_run(edge_cut, repl2(RecoveryStrategy::Rebirth), 1, plans);
        assert_eq!(rec.values, clean, "edge_cut={edge_cut}");
        assert_eq!(rec.recoveries.len(), 1);
        let ep = &rec.recoveries[0];
        assert_eq!(
            ep.strategy, "rebirth\u{2192}migration",
            "edge_cut={edge_cut}"
        );
        assert_eq!(ep.failed_nodes, 2);
        assert_eq!((ep.counters.attempts, ep.counters.aborts), (2, 1));
    }
}

/// Checkpoint recovery without standbys falls back to replica-free
/// migration: survivors adopt the dead partitions straight from the
/// snapshot chain.
#[test]
fn checkpoint_degrades_to_migration_when_standbys_exhausted() {
    for edge_cut in [true, false] {
        for incremental in [false, true] {
            let plans = vec![crash(1, 2, FailPoint::BeforeBarrier)];
            let ft = FtMode::Checkpoint {
                interval: 2,
                incremental,
            };
            let (clean, rec) = nested_run(edge_cut, ft, 0, plans);
            assert_eq!(
                rec.values, clean,
                "edge_cut={edge_cut} incremental={incremental}"
            );
            assert_eq!(rec.recoveries.len(), 1);
            let ep = &rec.recoveries[0];
            assert_eq!(
                ep.strategy, "checkpoint\u{2192}migration",
                "edge_cut={edge_cut} incremental={incremental}"
            );
        }
    }
}

/// Two machines lost at once with an empty standby pool: the fallback must
/// adopt both partitions and resolve replicas whose master died alongside
/// them (orphans).
#[test]
fn checkpoint_fallback_handles_double_failure() {
    for edge_cut in [true, false] {
        for incremental in [false, true] {
            let plans = vec![
                crash(1, 2, FailPoint::BeforeBarrier),
                crash(2, 2, FailPoint::BeforeBarrier),
            ];
            let ft = FtMode::Checkpoint {
                interval: 2,
                incremental,
            };
            let (clean, rec) = nested_run(edge_cut, ft, 0, plans);
            assert_eq!(
                rec.values, clean,
                "edge_cut={edge_cut} incremental={incremental}"
            );
            assert_eq!(rec.recoveries.len(), 1);
            let ep = &rec.recoveries[0];
            assert_eq!(ep.strategy, "checkpoint\u{2192}migration");
            assert_eq!(
                ep.failed_nodes, 2,
                "edge_cut={edge_cut} incremental={incremental}"
            );
        }
    }
}

/// A second crash during checkpoint recovery: with spare standbys the
/// restarted episode stays on the standby path; with a drained pool it
/// degrades to the migration fallback.
#[test]
fn checkpoint_cascade_restarts_or_degrades() {
    for edge_cut in [true, false] {
        for (standbys, want) in [(3, "checkpoint"), (2, "checkpoint\u{2192}migration")] {
            let plans = vec![
                crash(1, 2, FailPoint::BeforeBarrier),
                crash(2, 2, FailPoint::RebirthReload),
            ];
            let ft = FtMode::Checkpoint {
                interval: 2,
                incremental: false,
            };
            let (clean, rec) = nested_run(edge_cut, ft, standbys, plans);
            assert_eq!(rec.values, clean, "edge_cut={edge_cut} standbys={standbys}");
            assert_eq!(rec.recoveries.len(), 1);
            let ep = &rec.recoveries[0];
            assert_eq!(ep.strategy, want, "edge_cut={edge_cut} standbys={standbys}");
            assert_eq!(ep.failed_nodes, 2);
            assert_eq!((ep.counters.attempts, ep.counters.aborts), (2, 1));
        }
    }
}

/// A delta chain that spans two recovery episodes of different shapes. With
/// `interval: 2, incremental: true` the epoch cadence is 2=Full, 4=Delta,
/// 6=Delta… The first crash (iteration 2) is handled on the standby path
/// (the rebirth-style "checkpoint" strategy) from the bare full epoch 2;
/// delta epoch 4 is then written by the post-recovery membership onto that
/// same base; the second crash (iteration 4) finds the standby pool drained
/// and degrades to the migration fallback, which must ground itself on the
/// full epoch written *before* the first episode plus the delta written
/// *after* it — and still converge bit-identically.
#[test]
fn delta_chain_crosses_rebirth_and_migration_recoveries() {
    use imitator_repro::storage::{epoch, EpochKind};
    let graph = lcg_graph(120, 400, 1);
    let nodes = 4;
    let ft = FtMode::Checkpoint {
        interval: 2,
        incremental: true,
    };
    let cfg = |ft, standbys| RunConfig {
        num_nodes: nodes,
        max_iters: 30,
        ft,
        standbys,
        ..RunConfig::default()
    };
    for edge_cut in [true, false] {
        let plans = vec![
            crash(1, 2, FailPoint::BeforeBarrier),
            crash(2, 4, FailPoint::BeforeBarrier),
        ];
        let dfs = Dfs::new(DfsConfig::instant());
        let (clean, rec, prefix) = if edge_cut {
            let cut = HashEdgeCut.partition(&graph, nodes);
            let clean = run_edge_cut(
                &graph,
                &cut,
                Arc::new(MinLabel),
                cfg(FtMode::None, 0),
                vec![],
                Dfs::new(DfsConfig::instant()),
            );
            let rec = run_edge_cut(
                &graph,
                &cut,
                Arc::new(MinLabel),
                cfg(ft, 1),
                plans,
                dfs.clone(),
            );
            (clean.values, rec, "ec")
        } else {
            let cut = RandomVertexCut.partition(&graph, nodes);
            let clean = run_vertex_cut(
                &graph,
                &cut,
                Arc::new(MinLabel),
                cfg(FtMode::None, 0),
                vec![],
                Dfs::new(DfsConfig::instant()),
            );
            let rec = run_vertex_cut(
                &graph,
                &cut,
                Arc::new(MinLabel),
                cfg(ft, 1),
                plans,
                dfs.clone(),
            );
            (clean.values, rec, "vc")
        };
        assert_eq!(rec.values, clean, "edge_cut={edge_cut}");
        assert_eq!(rec.recoveries.len(), 2, "edge_cut={edge_cut}");
        assert_eq!(
            rec.recoveries[0].strategy, "checkpoint",
            "edge_cut={edge_cut}"
        );
        assert_eq!(
            rec.recoveries[1].strategy, "checkpoint\u{2192}migration",
            "edge_cut={edge_cut}"
        );
        // Pin the chain shape the fallback loaded: epoch 2 is the complete
        // full base, epoch 4 the complete delta on top, and both rosters
        // cover the dead node whose partition the survivors reconstructed.
        let (kind2, roster2) = epoch::read_roster(&dfs, prefix, 2).expect("epoch 2 complete");
        let (kind4, roster4) = epoch::read_roster(&dfs, prefix, 4).expect("epoch 4 complete");
        assert_eq!(kind2, EpochKind::Full, "edge_cut={edge_cut}");
        assert_eq!(kind4, EpochKind::Delta, "edge_cut={edge_cut}");
        assert!(
            roster2.contains(&2) && roster4.contains(&2),
            "edge_cut={edge_cut}"
        );
    }
}

/// A node dying mid-snapshot-write leaves a torn part behind; the epoch it
/// belongs to must never be loaded. Recovery rolls back to the previous
/// complete epoch and still converges exactly — with or without a standby.
#[test]
fn torn_checkpoint_epoch_is_never_loaded() {
    for edge_cut in [true, false] {
        for (standbys, want) in [(1, "checkpoint"), (0, "checkpoint\u{2192}migration")] {
            // interval 2 ⇒ epoch 4 is written during iteration 3; node 1
            // dies mid-write, torn part ⇒ roster check keeps epoch 4
            // incomplete forever.
            let plans = vec![crash(1, 3, FailPoint::CkptWrite)];
            let ft = FtMode::Checkpoint {
                interval: 2,
                incremental: false,
            };
            let (clean, rec) = nested_run(edge_cut, ft, standbys, plans);
            assert_eq!(rec.values, clean, "edge_cut={edge_cut} standbys={standbys}");
            assert_eq!(rec.recoveries.len(), 1);
            assert_eq!(
                rec.recoveries[0].strategy, want,
                "edge_cut={edge_cut} standbys={standbys}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar wire format: end-to-end invisibility. The frame codec sits under
// every execution axis that reorders or re-batches records — worker threads,
// superstep pipelining, delta-encoded syncs — and under failures in both
// models. None of those axes may move a single vertex value, iteration,
// message count, or recovery decision; byte totals may differ only along the
// delta_sync axis (and then only downward). The non-delta totals must come
// in strictly below the scalar per-record accounting this codec replaced
// (reference constants captured at the parent commit on this scenario).
// ---------------------------------------------------------------------------

/// Everything one run variant must agree on: final values, iterations,
/// comm messages, ckpt bytes, and per-episode recovery observables.
type E2eObservables = (Vec<u32>, u64, u64, u64, Vec<(String, u64, u64)>);

#[test]
fn wire_format_invisible_e2e() {
    let g = lcg_graph(200, 700, 2);
    let failures = [(0usize, 1u64, true), (3usize, 3u64, false)];
    let plans: Vec<FailurePlan> = failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect();
    let rebirth = FtMode::Replication {
        tolerance: 2,
        selfish_opt: false,
        recovery: RecoveryStrategy::Rebirth,
    };
    let ckpt = FtMode::Checkpoint {
        interval: 2,
        incremental: true,
    };
    // (name, ft, standbys, plans, edge_cut, scalar comm bytes, scalar ckpt bytes)
    let scenarios = [
        (
            "rebirth_ec",
            rebirth,
            2,
            plans.clone(),
            true,
            17775u64,
            0u64,
        ),
        ("rebirth_vc", rebirth, 2, plans.clone(), false, 47547, 8480),
        ("ckpt_ec", ckpt, 1, plans[..1].to_vec(), true, 16533, 57460),
        ("ckpt_vc", ckpt, 1, plans[..1].to_vec(), false, 51215, 30156),
    ];
    for (name, ft, standbys, plans, edge_cut, scalar_comm, scalar_ckpt) in scenarios {
        // Baseline: single-threaded, unpipelined, full-value syncs.
        let mut baseline: Option<E2eObservables> = None;
        let mut full_comm = None;
        for threads in [1usize, 2, 4, 8] {
            for pipeline in [false, true] {
                for delta_sync in [false, true] {
                    let cfg = RunConfig {
                        num_nodes: 5,
                        max_iters: 30,
                        ft,
                        standbys,
                        threads_per_node: threads,
                        sync_suppress: true,
                        pipeline,
                        delta_sync,
                        ..RunConfig::default()
                    };
                    let dfs = Dfs::new(DfsConfig::instant());
                    let r = if edge_cut {
                        let cut = HashEdgeCut.partition(&g, 5);
                        run_edge_cut(
                            &g,
                            &cut,
                            Arc::new(MinLabel),
                            cfg,
                            plans.clone(),
                            dfs.clone(),
                        )
                    } else {
                        let cut = RandomVertexCut.partition(&g, 5);
                        run_vertex_cut(
                            &g,
                            &cut,
                            Arc::new(MinLabel),
                            cfg,
                            plans.clone(),
                            dfs.clone(),
                        )
                    };
                    let ckpt_bytes = dfs.stats().writes.bytes;
                    let recs: Vec<(String, u64, u64)> = r
                        .recoveries
                        .iter()
                        .map(|rec| (rec.strategy.to_string(), rec.comm.messages, rec.comm.bytes))
                        .collect();
                    let tag = format!("{name} t={threads} pipe={pipeline} delta={delta_sync}");
                    match &baseline {
                        None => {
                            baseline = Some((
                                r.values.clone(),
                                r.iterations,
                                r.comm.messages,
                                ckpt_bytes,
                                recs,
                            ));
                        }
                        Some((values, iters, msgs, ckpt0, recs0)) => {
                            assert_eq!(&r.values, values, "{tag}: values moved");
                            assert_eq!(r.iterations, *iters, "{tag}: iterations moved");
                            assert_eq!(r.comm.messages, *msgs, "{tag}: message count moved");
                            assert_eq!(ckpt_bytes, *ckpt0, "{tag}: ckpt payload moved");
                            assert_eq!(&recs, recs0, "{tag}: recovery episodes moved");
                        }
                    }
                    if delta_sync {
                        assert!(
                            r.comm.bytes <= full_comm.unwrap(),
                            "{tag}: delta frames grew traffic"
                        );
                    } else {
                        // Threading and pipelining re-chunk batches but must
                        // not move a byte of the frame accounting.
                        let full = *full_comm.get_or_insert(r.comm.bytes);
                        assert_eq!(r.comm.bytes, full, "{tag}: comm bytes moved");
                    }
                }
            }
        }
        let (_, _, _, ckpt_bytes, _) = baseline.unwrap();
        assert!(
            full_comm.unwrap() < scalar_comm,
            "{name}: columnar comm {} must be strictly below scalar {scalar_comm}",
            full_comm.unwrap()
        );
        if scalar_ckpt > 0 {
            assert!(
                ckpt_bytes < scalar_ckpt,
                "{name}: varint ckpt payload {ckpt_bytes} must be strictly below \
                 fixed-width {scalar_ckpt}"
            );
        } else {
            assert_eq!(ckpt_bytes, 0, "{name}: unexpected checkpoint writes");
        }
    }
}

// ---------------------------------------------------------------------------
// Transport equivalence (the wire seam). The backend a run communicates over
// — reliable in-process channels, seeded-lossy links, loopback TCP — must be
// invisible in every logical observable: sequence-numbered idempotent
// redelivery plus the pre-barrier retransmission fence restore exactly the
// delivery guarantee the protocol was written against, and logical
// accounting is recorded before a frame reaches the wire, so message and
// byte tallies are bit-identical too. Only the *physical* retries and
// redelivered counters may move — and under a fault schedule they must, or
// the schedule never fired.
// ---------------------------------------------------------------------------

/// Severe-but-survivable uniform faults for the equivalence sweeps: heavy
/// enough that even the smallest generated scenario trips several faults.
fn heavy_faults(seed: u64) -> NetFaults {
    NetFaults::uniform(
        seed,
        LinkFaults {
            drop_pm: 150,
            dup_pm: 120,
            reorder_pm: 100,
            delay_pm: 80,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(10)))]

    /// Both engines × threads {1,4} × seeded drop/dup/reorder/delay
    /// schedules, with machine crashes layered on top of the link faults:
    /// the run converges to the failure-free golden values, every logical
    /// tally matches the reliable-channel run of the same schedule, and the
    /// physical retry counters are nonzero (the faults really fired).
    #[test]
    fn lossy_transport_bit_identical(
        (s, threads, net_seed) in (
            arb_scenario(),
            prop_oneof![Just(1usize), Just(4usize)],
            any::<u64>(),
        )
    ) {
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let lossy = TransportKind::Lossy(heavy_faults(net_seed));
        for edge_cut in [true, false] {
            let run = |transport, ft, standbys, failures: Vec<FailurePlan>| {
                let cfg = RunConfig {
                    threads_per_node: threads,
                    transport,
                    ..config(&s, ft, standbys)
                };
                let dfs = Dfs::new(DfsConfig::instant());
                if edge_cut {
                    let cut = HashEdgeCut.partition(&s.graph, s.nodes);
                    run_edge_cut(&s.graph, &cut, Arc::new(MinLabel), cfg, failures, dfs)
                } else {
                    let cut = RandomVertexCut.partition(&s.graph, s.nodes);
                    run_vertex_cut(&s.graph, &cut, Arc::new(MinLabel), cfg, failures, dfs)
                }
            };
            let clean = run(TransportKind::Channel, FtMode::None, 0, vec![]);
            let reliable = run(TransportKind::Channel, ft, standbys, plans(&s));
            let faulted = run(lossy, ft, standbys, plans(&s));
            prop_assert_eq!(&faulted.values, &clean.values);
            prop_assert_eq!(&faulted.values, &reliable.values);
            prop_assert_eq!(faulted.iterations, reliable.iterations);
            prop_assert_eq!(faulted.comm.messages, reliable.comm.messages);
            prop_assert_eq!(faulted.comm.bytes, reliable.comm.bytes);
            prop_assert_eq!(faulted.ft_comm.messages, reliable.ft_comm.messages);
            prop_assert_eq!(faulted.ft_comm.bytes, reliable.ft_comm.bytes);
            prop_assert_eq!(faulted.recoveries.len(), reliable.recoveries.len());
            prop_assert_eq!(reliable.fabric.retries, 0);
            prop_assert_eq!(reliable.fabric.redelivered, 0);
            prop_assert!(
                faulted.fabric.retries + faulted.fabric.redelivered > 0,
                "fault schedule never fired (edge_cut={})",
                edge_cut
            );
        }
    }
}

/// The acceptance schedule: a Migration recovery whose protocol rounds lose
/// frames (drop on `Recovery` traffic only) while the normal supersteps see
/// duplicated sync frames (dup on `Sync` traffic only). The run must end
/// bit-identical to the reliable-channel run, with the retransmission
/// counter proving at least one Migration-round message was dropped and the
/// redelivery counter proving at least one sync frame was duplicated and
/// suppressed.
#[test]
fn lossy_migration_round_drop_and_sync_dup_recover() {
    let g = lcg_graph(120, 400, 5);
    let faults = NetFaults {
        seed: 0xD5A1,
        sync: LinkFaults {
            dup_pm: 250,
            ..LinkFaults::NONE
        },
        gather: LinkFaults::NONE,
        recovery: LinkFaults {
            drop_pm: 250,
            ..LinkFaults::NONE
        },
        control: LinkFaults::NONE,
        heartbeat: LinkFaults::NONE,
    };
    let ft = FtMode::Replication {
        tolerance: 1,
        selfish_opt: false,
        recovery: RecoveryStrategy::Migration,
    };
    let plan = vec![FailurePlan {
        node: NodeId::from_index(1),
        iteration: 2,
        point: FailPoint::BeforeBarrier,
    }];
    for edge_cut in [true, false] {
        let run = |transport| {
            let cfg = RunConfig {
                num_nodes: 4,
                max_iters: 30,
                ft,
                standbys: 0,
                transport,
                ..RunConfig::default()
            };
            let dfs = Dfs::new(DfsConfig::instant());
            if edge_cut {
                let cut = HashEdgeCut.partition(&g, 4);
                run_edge_cut(&g, &cut, Arc::new(MinLabel), cfg, plan.clone(), dfs)
            } else {
                let cut = RandomVertexCut.partition(&g, 4);
                run_vertex_cut(&g, &cut, Arc::new(MinLabel), cfg, plan.clone(), dfs)
            }
        };
        let reliable = run(TransportKind::Channel);
        let faulted = run(TransportKind::Lossy(faults));
        assert_eq!(faulted.values, reliable.values, "edge_cut={edge_cut}");
        assert_eq!(faulted.iterations, reliable.iterations);
        assert_eq!(faulted.comm.bytes, reliable.comm.bytes);
        assert_eq!(faulted.recoveries.len(), 1, "edge_cut={edge_cut}");
        assert!(
            faulted.fabric.retries >= 1,
            "no Migration-round frame was dropped+retransmitted (edge_cut={edge_cut})"
        );
        assert!(
            faulted.fabric.redelivered >= 1,
            "no sync frame was duplicated+suppressed (edge_cut={edge_cut})"
        );
    }
}

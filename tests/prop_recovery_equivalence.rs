//! The reproduction's central property, tested over *random* graphs,
//! cluster sizes, failure schedules and recovery strategies:
//!
//! > A run that loses machines and recovers produces exactly the results of
//! > a run that never failed.
//!
//! This is the paper's implicit correctness contract for Imitator (§5): the
//! replicas plus the replayed activation state reconstruct the crashed
//! machines' state precisely.

use std::sync::Arc;

use proptest::prelude::*;

use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::{run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    graph: Graph,
    nodes: usize,
    strategy: RecoveryStrategy,
    tolerance: usize,
    // (victim, iteration, before_barrier) — victims distinct, within range.
    failures: Vec<(usize, u64, bool)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..5,    // nodes
        30usize..200, // vertices
        proptest::collection::vec((any::<u32>(), any::<u32>()), 20..300),
        prop_oneof![
            Just(RecoveryStrategy::Rebirth),
            Just(RecoveryStrategy::Migration)
        ],
        1usize..3, // tolerance K
        proptest::collection::vec((0usize..5, 0u64..6, any::<bool>()), 1..3),
    )
        .prop_map(|(nodes, n, pairs, strategy, tolerance, raw_failures)| {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let graph = gen::from_pairs(n, &pairs);
            // Distinct victims, at most `tolerance` per iteration, never the
            // whole cluster at once.
            let mut failures: Vec<(usize, u64, bool)> = Vec::new();
            for (v, iter, before) in raw_failures {
                let victim = v % nodes;
                if failures.iter().all(|&(w, _, _)| w != victim)
                    && failures.len() < tolerance
                    && failures.len() + 1 < nodes
                {
                    failures.push((victim, iter, before));
                }
            }
            Scenario {
                graph,
                nodes,
                strategy,
                tolerance: tolerance.min(nodes - 1),
                failures,
            }
        })
        .prop_filter("need at least one failure", |s| !s.failures.is_empty())
}

fn plans(s: &Scenario) -> Vec<FailurePlan> {
    s.failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect()
}

fn config(s: &Scenario, ft: FtMode, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: s.nodes,
        max_iters: 30,
        ft,
        standbys,
        ..RunConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edge_cut_recovery_is_equivalent(s in arb_scenario()) {
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, ft, standbys),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn vertex_cut_recovery_is_equivalent(s in arb_scenario()) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, ft, standbys),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn vertex_cut_checkpoint_recovery_is_equivalent(
        (s, incremental) in (arb_scenario(), any::<bool>())
    ) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(
                &s,
                FtMode::Checkpoint { interval: 2, incremental },
                s.failures.len(),
            ),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn edge_cut_parallel_matches_serial((s, threads) in (arb_scenario(), 1usize..=8)) {
        // The intra-node compute pool must be invisible in the output: any
        // threads_per_node produces bit-identical values to a single-threaded
        // run, even across injected failures and Rebirth/Migration recovery.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: 1, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let parallel = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(parallel.values, serial.values);
        prop_assert_eq!(parallel.iterations, serial.iterations);
    }

    #[test]
    fn vertex_cut_parallel_matches_serial((s, threads) in (arb_scenario(), 1usize..=8)) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: 1, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let parallel = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(parallel.values, serial.values);
        prop_assert_eq!(parallel.iterations, serial.iterations);
    }

    #[test]
    fn checkpoint_recovery_is_equivalent((s, incremental) in (arb_scenario(), any::<bool>())) {
        // Checkpointing tolerates any number of sequential failures; both
        // full and incremental (§2.3) snapshots must recover exactly.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::Checkpoint { interval: 2, incremental }, s.failures.len()),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }
}

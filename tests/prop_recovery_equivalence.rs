//! The reproduction's central property, tested over *random* graphs,
//! cluster sizes, failure schedules and recovery strategies:
//!
//! > A run that loses machines and recovers produces exactly the results of
//! > a run that never failed.
//!
//! This is the paper's implicit correctness contract for Imitator (§5): the
//! replicas plus the replayed activation state reconstruct the crashed
//! machines' state precisely.

use std::sync::Arc;

use proptest::prelude::*;

use imitator_repro::cluster::{FailPoint, FailurePlan, NodeId};
use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::{run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    graph: Graph,
    nodes: usize,
    strategy: RecoveryStrategy,
    tolerance: usize,
    // (victim, iteration, before_barrier) — victims distinct, within range.
    failures: Vec<(usize, u64, bool)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..5,    // nodes
        30usize..200, // vertices
        proptest::collection::vec((any::<u32>(), any::<u32>()), 20..300),
        prop_oneof![
            Just(RecoveryStrategy::Rebirth),
            Just(RecoveryStrategy::Migration)
        ],
        1usize..3, // tolerance K
        proptest::collection::vec((0usize..5, 0u64..6, any::<bool>()), 1..3),
    )
        .prop_map(|(nodes, n, pairs, strategy, tolerance, raw_failures)| {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let graph = gen::from_pairs(n, &pairs);
            // Distinct victims, at most `tolerance` per iteration, never the
            // whole cluster at once.
            let mut failures: Vec<(usize, u64, bool)> = Vec::new();
            for (v, iter, before) in raw_failures {
                let victim = v % nodes;
                if failures.iter().all(|&(w, _, _)| w != victim)
                    && failures.len() < tolerance
                    && failures.len() + 1 < nodes
                {
                    failures.push((victim, iter, before));
                }
            }
            Scenario {
                graph,
                nodes,
                strategy,
                tolerance: tolerance.min(nodes - 1),
                failures,
            }
        })
        .prop_filter("need at least one failure", |s| !s.failures.is_empty())
}

fn plans(s: &Scenario) -> Vec<FailurePlan> {
    s.failures
        .iter()
        .map(|&(node, iteration, before)| FailurePlan {
            node: NodeId::from_index(node),
            iteration,
            point: if before {
                FailPoint::BeforeBarrier
            } else {
                FailPoint::AfterBarrier
            },
        })
        .collect()
}

fn config(s: &Scenario, ft: FtMode, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: s.nodes,
        max_iters: 30,
        ft,
        standbys,
        ..RunConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edge_cut_recovery_is_equivalent(s in arb_scenario()) {
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, ft, standbys),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn vertex_cut_recovery_is_equivalent(s in arb_scenario()) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, ft, standbys),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn vertex_cut_checkpoint_recovery_is_equivalent(
        (s, incremental) in (arb_scenario(), any::<bool>())
    ) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let clean = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let recovered = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(
                &s,
                FtMode::Checkpoint { interval: 2, incremental },
                s.failures.len(),
            ),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }

    #[test]
    fn edge_cut_parallel_matches_serial((s, threads) in (arb_scenario(), 1usize..=8)) {
        // The intra-node compute pool must be invisible in the output: any
        // threads_per_node produces bit-identical values to a single-threaded
        // run, even across injected failures and Rebirth/Migration recovery.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: 1, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let parallel = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(parallel.values, serial.values);
        prop_assert_eq!(parallel.iterations, serial.iterations);
    }

    #[test]
    fn vertex_cut_parallel_matches_serial((s, threads) in (arb_scenario(), 1usize..=8)) {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let serial = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: 1, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let parallel = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(parallel.values, serial.values);
        prop_assert_eq!(parallel.iterations, serial.iterations);
    }

    #[test]
    fn edge_cut_suppression_is_invisible((s, threads) in (arb_scenario(), 1usize..=8)) {
        // Redundant-sync suppression must be a pure wire optimisation: with
        // it on or off, any thread count, and injected failures recovered by
        // Rebirth or Migration, the output is bit-identical.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let on = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: true, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let off = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: false, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(off.suppressed_syncs, 0);
        prop_assert_eq!(on.values, off.values);
        prop_assert_eq!(on.iterations, off.iterations);
    }

    #[test]
    fn vertex_cut_suppression_is_invisible((s, threads) in (arb_scenario(), 1usize..=8)) {
        // The dense vertex-cut engine re-syncs every master each iteration,
        // so the filter skips real traffic here; results must not move.
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Replication {
            tolerance: s.tolerance,
            selfish_opt: false,
            recovery: s.strategy,
        };
        let standbys = match s.strategy {
            RecoveryStrategy::Rebirth => s.failures.len(),
            RecoveryStrategy::Migration => 0,
        };
        let on = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: true, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let off = run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: false, ..config(&s, ft, standbys) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(off.suppressed_syncs, 0);
        prop_assert_eq!(on.values, off.values);
        prop_assert_eq!(on.iterations, off.iterations);
    }

    #[test]
    fn checkpoint_suppression_is_invisible(
        (s, incremental, threads) in (arb_scenario(), any::<bool>(), 1usize..=8)
    ) {
        // Checkpoint recovery resets masters from snapshots and re-ships
        // state in a full-sync round — the filter's invalidation rules
        // (clear on reset/chain, per-destination invalidation on full
        // snapshots) must keep the skipped records provably redundant.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let ft = FtMode::Checkpoint { interval: 2, incremental };
        let on = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: true, ..config(&s, ft, s.failures.len()) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        let off = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            RunConfig { threads_per_node: threads, sync_suppress: false, ..config(&s, ft, s.failures.len()) },
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(off.suppressed_syncs, 0);
        prop_assert_eq!(on.values, off.values);
        prop_assert_eq!(on.iterations, off.iterations);
    }

    #[test]
    fn checkpoint_recovery_is_equivalent((s, incremental) in (arb_scenario(), any::<bool>())) {
        // Checkpointing tolerates any number of sequential failures; both
        // full and incremental (§2.3) snapshots must recover exactly.
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        let clean = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::None, 0),
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let recovered = run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(&s, FtMode::Checkpoint { interval: 2, incremental }, s.failures.len()),
            plans(&s),
            Dfs::new(DfsConfig::instant()),
        );
        prop_assert_eq!(recovered.values, clean.values);
    }
}

/// NaN-flood: the adversarial workload for the redundant-sync filter. A NaN
/// value compares unequal to itself, so a NaN-stuck master emits a
/// bit-identical update *every* superstep — the only steady-state case where
/// suppression fires on the sparse edge-cut engine — while `scatter`
/// (unconditionally `true`) keeps `activate = true` on every suppressed
/// record. Recovery must still reconstruct each replica's exact
/// `(value, last_activate)` pair.
struct NanFlood;

impl VertexProgram for NanFlood {
    type Value = f32;
    type Accum = f32;

    fn init(&self, vid: Vid, _d: &Degrees) -> f32 {
        if vid.raw() == 0 {
            f32::NAN
        } else {
            1.0
        }
    }

    fn gather(&self, _w: f32, src: &f32) -> f32 {
        *src
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _v: Vid, old: &f32, acc: Option<f32>, _d: &Degrees) -> f32 {
        // NaN contributions poison the sum, so NaN spreads along edges; a
        // NaN-stuck vertex keeps recomputing the same NaN bit pattern.
        acc.map_or(*old, |a| *old + a)
    }

    fn scatter(&self, _v: Vid, _old: &f32, _new: &f32) -> bool {
        true
    }
}

/// Cycle plus chords: strongly connected, so the NaN at v0 floods every
/// vertex within a few supersteps and every vertex stays active.
fn nan_flood_graph(n: u32) -> Graph {
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i * 7 + 3) % n)])
        .collect();
    gen::from_pairs(n as usize, &pairs)
}

fn f32_bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Runs NaN-flood with one mid-run failure under `strategy` and checks the
/// recovered output is bit-identical to a clean, unsuppressed run — i.e.
/// replicas of continuously-suppressed masters carried the exact
/// `(value, last_activate)` state recovery rebuilt from.
fn nan_flood_recovery_case(strategy: RecoveryStrategy) {
    let g = nan_flood_graph(60);
    let nodes = 4;
    let cut = HashEdgeCut.partition(&g, nodes);
    let cfg = |ft, standbys, sync_suppress| RunConfig {
        num_nodes: nodes,
        max_iters: 12,
        ft,
        standbys,
        sync_suppress,
        ..RunConfig::default()
    };
    let clean = run_edge_cut(
        &g,
        &cut,
        Arc::new(NanFlood),
        cfg(FtMode::None, 0, false),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let ft = FtMode::Replication {
        tolerance: 1,
        selfish_opt: false,
        recovery: strategy,
    };
    let standbys = match strategy {
        RecoveryStrategy::Rebirth => 1,
        RecoveryStrategy::Migration => 0,
    };
    let failures = vec![FailurePlan {
        node: NodeId::from_index(1),
        iteration: 6,
        point: FailPoint::BeforeBarrier,
    }];
    let recovered = run_edge_cut(
        &g,
        &cut,
        Arc::new(NanFlood),
        cfg(ft, standbys, true),
        failures,
        Dfs::new(DfsConfig::instant()),
    );
    assert!(
        recovered.suppressed_syncs > 0,
        "NaN-stuck masters must exercise the filter"
    );
    assert_eq!(f32_bits(&recovered.values), f32_bits(&clean.values));
    assert_eq!(recovered.iterations, clean.iterations);
}

#[test]
fn nan_stuck_vertices_suppress_yet_rebirth_recovers_exactly() {
    nan_flood_recovery_case(RecoveryStrategy::Rebirth);
}

#[test]
fn nan_stuck_vertices_suppress_yet_migration_recovers_exactly() {
    nan_flood_recovery_case(RecoveryStrategy::Migration);
}

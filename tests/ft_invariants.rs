//! Cross-crate invariants of the fault-tolerance machinery: FT-plan
//! guarantees over arbitrary graphs and partitionings, and run-report
//! accounting consistency.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use imitator_repro::engine::{Degrees, VertexProgram};
use imitator_repro::ft::plan::compute_ft_plan;
use imitator_repro::ft::{run_edge_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_repro::graph::{gen, Graph, Vid};
use imitator_repro::partition::{
    EdgeCutPartitioner, HashEdgeCut, HybridVertexCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_repro::storage::{Dfs, DfsConfig};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        5usize..80,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..250),
    )
        .prop_map(|(n, pairs)| {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            gen::from_pairs(n, &pairs)
        })
}

/// `PROPTEST_CASES` (used by the non-blocking deep-fuzz CI job) scales the
/// case count; the explicit default would otherwise shadow the env var.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// §4's contract: K distinct mirrors per vertex, never on the owner,
    /// each backed by a copy (existing replica or planned extra).
    #[test]
    fn ft_plan_guarantees_k_mirrors(
        (g, parts, k) in (arb_graph(), 2usize..7, 1usize..3)
    ) {
        prop_assume!(k < parts);
        let cut = HashEdgeCut.partition(&g, parts);
        let plan = compute_ft_plan(&g, &cut, k, true, true, 11);
        for v in g.vertices() {
            let mirrors = plan.mirrors(v);
            prop_assert_eq!(mirrors.len(), k, "vertex {} mirror count", v);
            let distinct: HashSet<_> = mirrors.iter().collect();
            prop_assert_eq!(distinct.len(), k, "vertex {} duplicate mirrors", v);
            for m in mirrors {
                prop_assert_ne!(m.index(), cut.owner(v));
                let has_copy = cut.replica_parts(v).contains(&(m.raw()))
                    || plan.extra_replicas[v.index()].contains(m);
                prop_assert!(has_copy, "mirror of {} on {} has no copy", v, m);
            }
        }
    }

    /// Same contract over vertex-cut placements (random and hybrid).
    #[test]
    fn ft_plan_guarantees_hold_on_vertex_cut(
        (g, parts, theta) in (arb_graph(), 2usize..7, 0usize..20)
    ) {
        for cut in [
            RandomVertexCut.partition(&g, parts),
            HybridVertexCut::with_threshold(theta).partition(&g, parts),
        ] {
            let plan = compute_ft_plan(&g, &cut, 1, false, false, 3);
            for v in g.vertices() {
                let mirrors = plan.mirrors(v);
                prop_assert_eq!(mirrors.len(), 1);
                prop_assert_ne!(mirrors[0].index(), cut.master(v));
            }
        }
    }
}

/// Dense always-true program used for accounting checks.
struct CountUp;

impl VertexProgram for CountUp {
    type Value = u64;
    type Accum = u64;

    fn init(&self, _v: Vid, _d: &Degrees) -> u64 {
        1
    }

    fn gather(&self, _w: f32, s: &u64) -> u64 {
        *s
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }

    fn apply(&self, _v: Vid, old: &u64, acc: Option<u64>, _d: &Degrees) -> u64 {
        match acc {
            Some(a) => (1 + a).min(1 << 40),
            None => *old,
        }
    }

    fn scatter(&self, _v: Vid, old: &u64, new: &u64) -> bool {
        old != new
    }
}

#[test]
fn report_accounting_is_consistent() {
    let g = gen::power_law(1_000, 2.0, 6, 5);
    let cut = HashEdgeCut.partition(&g, 4);
    let r = run_edge_cut(
        &g,
        &cut,
        Arc::new(CountUp),
        RunConfig {
            num_nodes: 4,
            max_iters: 8,
            ft: FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            ..RunConfig::default()
        },
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    // FT traffic is a subset of total traffic.
    assert!(r.ft_comm.messages <= r.comm.messages);
    assert!(r.ft_comm.bytes <= r.comm.bytes);
    // Timeline is monotone in both coordinates and one entry per iteration.
    assert_eq!(r.timeline.len() as u64, r.iterations);
    for w in r.timeline.windows(2) {
        assert!(w[0].0 < w[1].0);
        assert!(w[0].1 <= w[1].1);
    }
    // Memory accounting covers every node.
    assert_eq!(r.mem_bytes.len(), 4);
    assert!(r.mem_bytes.iter().all(|&b| b > 0));
    // The phase breakdown names the protocol's phases.
    for phase in ["compute", "send", "barrier", "commit"] {
        assert!(
            r.phases.get(phase).is_some(),
            "missing phase {phase} in {:?}",
            r.phases
        );
    }
}

#[test]
fn replication_memory_grows_with_tolerance() {
    let g = gen::power_law(2_000, 2.0, 6, 9);
    let cut = HashEdgeCut.partition(&g, 5);
    let mut previous = 0usize;
    for k in 1usize..=3 {
        let r = run_edge_cut(
            &g,
            &cut,
            Arc::new(CountUp),
            RunConfig {
                num_nodes: 5,
                max_iters: 1,
                ft: FtMode::Replication {
                    tolerance: k,
                    selfish_opt: false,
                    recovery: RecoveryStrategy::Migration,
                },
                ..RunConfig::default()
            },
            vec![],
            Dfs::new(DfsConfig::instant()),
        );
        let total: usize = r.mem_bytes.iter().sum();
        assert!(
            total > previous,
            "memory should grow with tolerance: K={k} gave {total} <= {previous}"
        );
        previous = total;
    }
}

#[test]
fn dfs_sees_checkpoints_and_edge_ckpt_files() {
    let g = gen::power_law(500, 2.0, 5, 13);
    let dfs = Dfs::new(DfsConfig::instant());
    let cut = HashEdgeCut.partition(&g, 3);
    run_edge_cut(
        &g,
        &cut,
        Arc::new(CountUp),
        RunConfig {
            num_nodes: 3,
            max_iters: 6,
            ft: FtMode::Checkpoint {
                interval: 2,
                incremental: false,
            },
            ..RunConfig::default()
        },
        vec![],
        dfs.clone(),
    );
    assert_eq!(
        dfs.list("ec/meta/").len(),
        3,
        "one metadata snapshot per node"
    );
    assert!(
        dfs.list("ec/ckpt/").len() >= 9,
        "three checkpoints x three nodes"
    );

    let vdfs = Dfs::new(DfsConfig::instant());
    let vcut = RandomVertexCut.partition(&g, 3);
    imitator_repro::ft::run_vertex_cut(
        &g,
        &vcut,
        Arc::new(CountUp),
        RunConfig {
            num_nodes: 3,
            max_iters: 4,
            ft: FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            ..RunConfig::default()
        },
        vec![],
        vdfs.clone(),
    );
    assert!(
        !vdfs.list("vc/eckpt/").is_empty(),
        "edge-ckpt files written at load"
    );
}

//! Property tests: the binary codec round-trips arbitrary nested values and
//! rejects corruption; the DFS behaves like a shared store under
//! concurrent use.

use proptest::prelude::*;

use imitator_storage::codec::{decode, Decode, DecodeError, Encode};
use imitator_storage::{Dfs, DfsConfig};

fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    let back: T = decode(&bytes).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn ints_roundtrip(a in any::<u64>(), b in any::<i32>(), c in any::<u16>()) {
        roundtrip(&a)?;
        roundtrip(&b)?;
        roundtrip(&c)?;
        roundtrip(&(a, b, c))?;
    }

    #[test]
    fn floats_roundtrip_bitwise(x in any::<f64>(), y in any::<f32>()) {
        // NaNs break PartialEq; compare bit patterns instead.
        let back: f64 = decode(&x.to_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), x.to_bits());
        let back: f32 = decode(&y.to_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), y.to_bits());
    }

    #[test]
    fn nested_containers_roundtrip(
        v in proptest::collection::vec(
            (any::<u32>(), proptest::option::of(any::<bool>()), ".*"),
            0..50
        )
    ) {
        roundtrip(&v)?;
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        v in proptest::collection::vec(any::<u64>(), 1..50),
        cut_frac in 0.0f64..1.0
    ) {
        let bytes = v.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let result = decode::<Vec<u64>>(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncated decode must fail");
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any of these may error; none may panic.
        let _ = decode::<Vec<(u32, f32)>>(&bytes);
        let _ = decode::<String>(&bytes);
        let _ = decode::<Vec<Option<u64>>>(&bytes);
    }

    #[test]
    fn dfs_stores_what_was_written(
        files in proptest::collection::hash_map("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..100), 0..20)
    ) {
        let dfs = Dfs::new(DfsConfig::instant());
        for (k, v) in &files {
            dfs.write(k, v.clone());
        }
        for (k, v) in &files {
            let content = dfs.read(k).unwrap();
            prop_assert_eq!(content.as_ref(), v);
        }
        prop_assert_eq!(dfs.list("").len(), files.len());
        prop_assert_eq!(dfs.used_bytes(), files.values().map(Vec::len).sum::<usize>());
    }
}

#[test]
fn concurrent_writers_to_distinct_paths() {
    let dfs = Dfs::new(DfsConfig::instant());
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let dfs = dfs.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    dfs.write(&format!("t{t}/f{i}"), vec![t as u8; i]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(dfs.list("").len(), 400);
    for t in 0..8 {
        assert_eq!(dfs.list(&format!("t{t}/")).len(), 50);
    }
}

#[test]
fn decode_error_classification() {
    // Wrong discriminants are Corrupt, short buffers are UnexpectedEof.
    assert!(matches!(decode::<bool>(&[7]), Err(DecodeError::Corrupt(_))));
    assert!(matches!(
        decode::<u32>(&[1, 2]),
        Err(DecodeError::UnexpectedEof { .. })
    ));
}

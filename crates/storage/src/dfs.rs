//! The simulated distributed file system.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use imitator_metrics::{AtomicCommStats, CommStats};
use parking_lot::RwLock;

/// Cost model for the simulated DFS.
///
/// The defaults model an HDFS-like store on a 1 GigE cluster, scaled to the
/// repository's graph sizes: every operation pays a fixed latency, and bytes
/// move at a finite bandwidth with writes amplified by the replication
/// factor (HDFS default 3). The paper's observation that "HDFS is more
/// friendly to writing large data" (§2.3.1) falls out of the fixed latency
/// dominating small writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Fixed cost per operation (open + metadata + commit round trips).
    pub latency: Duration,
    /// Sustained transfer rate in bytes/second for a single stream.
    pub bandwidth_bytes_per_sec: f64,
    /// Write amplification: each byte written is stored this many times.
    pub replication: u32,
}

impl DfsConfig {
    /// A cost-free configuration for unit tests.
    pub fn instant() -> Self {
        DfsConfig {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            replication: 3,
        }
    }

    /// The default "HDFS on 1 GigE" model used by the experiment harnesses.
    ///
    /// 5 ms per operation, 120 MB/s streams, 3-way replication. At the
    /// repository's scaled-down graph sizes this keeps DFS traffic orders of
    /// magnitude slower than in-memory channels — the same ratio the paper's
    /// testbed exhibits between HDFS and RAM.
    pub fn hdfs_like() -> Self {
        DfsConfig {
            latency: Duration::from_millis(5),
            bandwidth_bytes_per_sec: 120.0 * 1024.0 * 1024.0,
            replication: 3,
        }
    }

    fn write_cost(&self, len: usize) -> Duration {
        self.latency + self.transfer(len.saturating_mul(self.replication as usize))
    }

    fn read_cost(&self, len: usize) -> Duration {
        self.latency + self.transfer(len)
    }

    fn transfer(&self, bytes: usize) -> Duration {
        if self.bandwidth_bytes_per_sec.is_infinite() || bytes == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        }
    }
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self::hdfs_like()
    }
}

/// Byte/operation counters for a [`Dfs`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfsStats {
    /// Completed write operations and bytes (pre-amplification).
    pub writes: CommStats,
    /// Completed read operations and bytes.
    pub reads: CommStats,
}

/// A shared, cost-modelled key→bytes store standing in for HDFS.
///
/// Cloning a `Dfs` yields another handle on the same store, like mounting
/// the same file system from another machine. All handles observe writes
/// immediately after the writing call returns (single-writer-per-path is the
/// usage pattern; last write wins).
///
/// # Examples
///
/// ```
/// use imitator_storage::{Dfs, DfsConfig};
///
/// let dfs = Dfs::new(DfsConfig::instant());
/// dfs.write("a/b", vec![9]);
/// assert!(dfs.exists("a/b"));
/// assert_eq!(dfs.list("a/").len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dfs {
    config: DfsConfig,
    files: Arc<RwLock<BTreeMap<String, Arc<Vec<u8>>>>>,
    stats: Arc<AtomicCommStats>,
    read_stats: Arc<AtomicCommStats>,
}

impl Dfs {
    /// Creates an empty store with the given cost model.
    pub fn new(config: DfsConfig) -> Self {
        Dfs {
            config,
            files: Arc::default(),
            stats: Arc::default(),
            read_stats: Arc::default(),
        }
    }

    /// The active cost model.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// Writes `bytes` to `path`, replacing any existing content. Blocks for
    /// the modelled write cost (latency + amplified transfer time).
    pub fn write(&self, path: &str, bytes: Vec<u8>) {
        let cost = self.config.write_cost(bytes.len());
        self.stats.record(1, bytes.len() as u64);
        std::thread::sleep(cost);
        self.files.write().insert(path.to_owned(), Arc::new(bytes));
    }

    /// Reads the content at `path`, or `None` if absent. Blocks for the
    /// modelled read cost when the file exists.
    pub fn read(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let content = self.files.read().get(path).cloned()?;
        self.read_stats.record(1, content.len() as u64);
        std::thread::sleep(self.config.read_cost(content.len()));
        Some(content)
    }

    /// Whether `path` exists. Free (metadata is cached client-side).
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Removes `path`, returning whether it existed. Pays one latency unit.
    pub fn delete(&self, path: &str) -> bool {
        std::thread::sleep(self.config.latency);
        self.files.write().remove(path).is_some()
    }

    /// All paths starting with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Total bytes currently stored (pre-amplification).
    pub fn used_bytes(&self) -> usize {
        self.files.read().values().map(|v| v.len()).sum()
    }

    /// Operation counters since creation.
    pub fn stats(&self) -> DfsStats {
        DfsStats {
            writes: self.stats.snapshot(),
            reads: self.read_stats.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let dfs = Dfs::new(DfsConfig::instant());
        dfs.write("x", vec![1, 2, 3]);
        assert_eq!(dfs.read("x").unwrap().as_ref(), &[1, 2, 3]);
        assert!(dfs.read("y").is_none());
    }

    #[test]
    fn handles_share_state() {
        let a = Dfs::new(DfsConfig::instant());
        let b = a.clone();
        a.write("k", vec![7]);
        assert!(b.exists("k"));
        assert!(b.delete("k"));
        assert!(!a.exists("k"));
    }

    #[test]
    fn last_write_wins() {
        let dfs = Dfs::new(DfsConfig::instant());
        dfs.write("k", vec![1]);
        dfs.write("k", vec![2]);
        assert_eq!(dfs.read("k").unwrap().as_ref(), &[2]);
    }

    #[test]
    fn list_respects_prefix_and_order() {
        let dfs = Dfs::new(DfsConfig::instant());
        dfs.write("ckpt/2/n1", vec![]);
        dfs.write("ckpt/10/n0", vec![]);
        dfs.write("meta/n0", vec![]);
        assert_eq!(dfs.list("ckpt/"), vec!["ckpt/10/n0", "ckpt/2/n1"]);
        assert_eq!(dfs.list("zzz").len(), 0);
    }

    #[test]
    fn stats_count_operations() {
        let dfs = Dfs::new(DfsConfig::instant());
        dfs.write("a", vec![0; 100]);
        dfs.read("a");
        dfs.read("a");
        let s = dfs.stats();
        assert_eq!(s.writes, CommStats::new(1, 100));
        assert_eq!(s.reads, CommStats::new(2, 200));
    }

    #[test]
    fn used_bytes_tracks_contents() {
        let dfs = Dfs::new(DfsConfig::instant());
        dfs.write("a", vec![0; 10]);
        dfs.write("b", vec![0; 5]);
        assert_eq!(dfs.used_bytes(), 15);
        dfs.delete("a");
        assert_eq!(dfs.used_bytes(), 5);
    }

    #[test]
    fn cost_model_charges_writes_more_than_reads() {
        let cfg = DfsConfig {
            latency: Duration::from_micros(10),
            bandwidth_bytes_per_sec: 1e6,
            replication: 3,
        };
        assert!(cfg.write_cost(1_000_000) > cfg.read_cost(1_000_000));
        assert_eq!(DfsConfig::instant().write_cost(1 << 30), Duration::ZERO);
    }

    #[test]
    fn write_cost_is_measurable() {
        let cfg = DfsConfig {
            latency: Duration::from_millis(3),
            bandwidth_bytes_per_sec: f64::INFINITY,
            replication: 3,
        };
        let dfs = Dfs::new(cfg);
        let t = std::time::Instant::now();
        dfs.write("slow", vec![1]);
        assert!(t.elapsed() >= Duration::from_millis(3));
    }
}

//! Simulated distributed persistent storage (the paper's HDFS role).
//!
//! Checkpoint-based fault tolerance is slow in the paper *because* snapshots
//! cross a globally visible, replicated, disk-backed file system while
//! replication-based fault tolerance stays in cluster memory. [`Dfs`]
//! reproduces exactly that asymmetry: a shared key→bytes store whose reads
//! and writes pay a configurable latency + bandwidth cost (with an HDFS-like
//! write amplification for 3-way replication), while remaining a real store —
//! contents round-trip byte-for-byte, so recovery genuinely reloads state.
//!
//! The [`codec`] module provides the hand-rolled binary encoding used for
//! snapshot and edge-ckpt files (deterministic, versioned, no external
//! serialization dependency).
//!
//! # Examples
//!
//! ```
//! use imitator_storage::{Dfs, DfsConfig};
//!
//! let dfs = Dfs::new(DfsConfig::instant());
//! dfs.write("ckpt/iter3/node0", vec![1, 2, 3]);
//! assert_eq!(dfs.read("ckpt/iter3/node0").unwrap().as_ref(), &[1u8, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod dfs;
pub mod epoch;

pub use dfs::{Dfs, DfsConfig, DfsStats};
pub use epoch::{EpochChain, EpochError, EpochKind};

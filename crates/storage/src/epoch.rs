//! Atomic checkpoint epochs: sealed parts, torn-epoch detection.
//!
//! A checkpoint epoch is a directory `{prefix}/ckpt/{epoch}/` holding one
//! snapshot part per node. A bare part write is *not* atomic with respect to
//! fail-stop crashes: a node dying mid-checkpoint leaves a part that decodes
//! (the simulated DFS never tears bytes) but does not represent a committed
//! epoch — loading it would resurrect state from a superstep the cluster
//! never collectively passed.
//!
//! This module makes the commit explicit. Each part is accompanied by a tiny
//! manifest record (the *seal*, at `{part}.ok`) written **last**, recording
//! the part's length and an FNV-1a checksum. A crash between the part write
//! and the seal write leaves the epoch detectably torn: the seal is missing
//! (or, for a corrupted store, fails verification), so loaders skip the
//! epoch and fall back to the most recent complete one.
//!
//! An epoch is *complete* when every node's part verifies against its seal.

use std::fmt;
use std::sync::Arc;

use crate::Dfs;

/// Suffix appended to a part path to form its seal path.
pub const SEAL_SUFFIX: &str = ".ok";

const SEAL_MAGIC: u32 = 0x5345_414C; // "SEAL"
const SEAL_LEN: usize = 4 + 8 + 8;

/// Why a verified epoch read could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// No epoch under the prefix has a full set of verified parts.
    NoCompleteEpoch {
        /// The `{prefix}/ckpt/` namespace that was searched.
        prefix: String,
    },
    /// A specific part is missing, unsealed, or fails its checksum.
    TornPart {
        /// Path of the offending part.
        path: String,
    },
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochError::NoCompleteEpoch { prefix } => write!(
                f,
                "no complete checkpoint epoch under {prefix}/ckpt/ \
                 (zero sealed epochs — nothing to recover from)"
            ),
            EpochError::TornPart { path } => {
                write!(f, "checkpoint part {path} is torn (missing or bad seal)")
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// 64-bit FNV-1a over `bytes` — the per-part checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Path of node `node`'s part in `epoch` under `prefix`.
pub fn part_path(prefix: &str, epoch: u64, node: u32) -> String {
    format!("{prefix}/ckpt/{epoch}/{node}")
}

/// Path of the seal (per-part manifest record) for `part`.
pub fn seal_path(part: &str) -> String {
    format!("{part}{SEAL_SUFFIX}")
}

fn encode_seal(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEAL_LEN);
    out.extend_from_slice(&SEAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(bytes).to_le_bytes());
    out
}

fn seal_matches(seal: &[u8], part: &[u8]) -> bool {
    if seal.len() != SEAL_LEN {
        return false;
    }
    let magic = u32::from_le_bytes(seal[0..4].try_into().expect("sliced"));
    let len = u64::from_le_bytes(seal[4..12].try_into().expect("sliced"));
    let sum = u64::from_le_bytes(seal[12..20].try_into().expect("sliced"));
    magic == SEAL_MAGIC && len == part.len() as u64 && sum == checksum(part)
}

/// Writes `bytes` at `path` and then commits them by writing the seal
/// **last** — the generic sealed-write primitive behind parts and rosters.
pub fn write_sealed(dfs: &Dfs, path: &str, bytes: Vec<u8>) {
    let seal = encode_seal(&bytes);
    dfs.write(path, bytes);
    dfs.write(&seal_path(path), seal);
}

/// Reads `path` and verifies it against its seal.
pub fn read_sealed(dfs: &Dfs, path: &str) -> Result<Arc<Vec<u8>>, EpochError> {
    let torn = || EpochError::TornPart {
        path: path.to_string(),
    };
    let bytes = dfs.read(path).ok_or_else(torn)?;
    let seal = dfs.read(&seal_path(path)).ok_or_else(torn)?;
    if seal_matches(&seal, &bytes) {
        Ok(bytes)
    } else {
        Err(torn())
    }
}

/// Writes a part and then commits it by writing its seal **last**.
pub fn write_part(dfs: &Dfs, prefix: &str, epoch: u64, node: u32, bytes: Vec<u8>) {
    write_sealed(dfs, &part_path(prefix, epoch, node), bytes);
}

/// Writes a part **without** its seal — the on-disk state left behind by a
/// node crashing between the data write and the manifest commit. Used by the
/// failure injector; loaders must treat the epoch as torn.
pub fn write_part_torn(dfs: &Dfs, prefix: &str, epoch: u64, node: u32, bytes: Vec<u8>) {
    dfs.write(&part_path(prefix, epoch, node), bytes);
}

/// Reads a part and verifies it against its seal.
pub fn read_verified(
    dfs: &Dfs,
    prefix: &str,
    epoch: u64,
    node: u32,
) -> Result<Arc<Vec<u8>>, EpochError> {
    read_sealed(dfs, &part_path(prefix, epoch, node))
}

/// Path of `epoch`'s roster record under `prefix`.
pub fn roster_path(prefix: &str, epoch: u64) -> String {
    format!("{prefix}/ckpt/{epoch}/roster")
}

/// Seals the membership roster of `epoch`: the node IDs whose parts
/// constitute the epoch.
///
/// Cluster membership shrinks across recovery episodes (migration leaves the
/// dead node's state on the survivors), so "every node's part verifies"
/// cannot be judged against a fixed node count. The leader of each epoch
/// records who participated; an epoch is then complete exactly when its
/// roster verifies **and** every rostered part verifies. The roster is
/// written with the same seal-last discipline as parts, so a leader dying
/// mid-roster leaves the epoch detectably torn rather than ambiguous.
pub fn write_roster(dfs: &Dfs, prefix: &str, epoch: u64, nodes: &[u32]) {
    let mut bytes = Vec::with_capacity(4 + nodes.len() * 4);
    bytes.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for &n in nodes {
        bytes.extend_from_slice(&n.to_le_bytes());
    }
    write_sealed(dfs, &roster_path(prefix, epoch), bytes);
}

/// Reads and verifies `epoch`'s roster.
pub fn read_roster(dfs: &Dfs, prefix: &str, epoch: u64) -> Result<Vec<u32>, EpochError> {
    let path = roster_path(prefix, epoch);
    let bytes = read_sealed(dfs, &path)?;
    let torn = || EpochError::TornPart { path: path.clone() };
    if bytes.len() < 4 {
        return Err(torn());
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced")) as usize;
    if bytes.len() != 4 + count * 4 {
        return Err(torn());
    }
    Ok(bytes[4..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunked")))
        .collect())
}

/// Whether `epoch` is complete by its own roster: the roster verifies and
/// every rostered node's part verifies.
pub fn epoch_complete_rostered(dfs: &Dfs, prefix: &str, epoch: u64) -> bool {
    match read_roster(dfs, prefix, epoch) {
        Ok(nodes) => epoch_complete_for(dfs, prefix, epoch, &nodes),
        Err(_) => false,
    }
}

/// All roster-complete epochs under `prefix`, ascending.
pub fn complete_epochs_rostered(dfs: &Dfs, prefix: &str) -> Vec<u64> {
    listed_epochs(dfs, prefix)
        .into_iter()
        .filter(|&e| epoch_complete_rostered(dfs, prefix, e))
        .collect()
}

/// The newest roster-complete epoch, or a clear error when none exists.
pub fn latest_complete_rostered(dfs: &Dfs, prefix: &str) -> Result<u64, EpochError> {
    complete_epochs_rostered(dfs, prefix)
        .last()
        .copied()
        .ok_or_else(|| EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        })
}

/// Whether every node's part in `epoch` verifies against its seal.
pub fn epoch_complete(dfs: &Dfs, prefix: &str, epoch: u64, num_nodes: u32) -> bool {
    (0..num_nodes).all(|n| read_verified(dfs, prefix, epoch, n).is_ok())
}

/// Like [`epoch_complete`], but judged against an explicit node set.
///
/// After a recovery episode shrinks the cluster (migration onto survivors),
/// completeness can no longer be judged against `0..num_nodes`: dead nodes
/// will never seal another part, yet older epochs they did seal remain
/// loadable. Callers pass the set of nodes whose parts the *load* actually
/// needs.
pub fn epoch_complete_for(dfs: &Dfs, prefix: &str, epoch: u64, nodes: &[u32]) -> bool {
    nodes
        .iter()
        .all(|&n| read_verified(dfs, prefix, epoch, n).is_ok())
}

fn listed_epochs(dfs: &Dfs, prefix: &str) -> Vec<u64> {
    let dir = format!("{prefix}/ckpt/");
    let mut epochs: Vec<u64> = dfs
        .list(&dir)
        .iter()
        .filter_map(|p| p[dir.len()..].split('/').next()?.parse::<u64>().ok())
        .collect();
    epochs.sort_unstable();
    epochs.dedup();
    epochs
}

/// All complete epochs under `prefix`, ascending.
pub fn complete_epochs(dfs: &Dfs, prefix: &str, num_nodes: u32) -> Vec<u64> {
    listed_epochs(dfs, prefix)
        .into_iter()
        .filter(|&e| epoch_complete(dfs, prefix, e, num_nodes))
        .collect()
}

/// All epochs whose parts verify for every node in `nodes`, ascending.
pub fn complete_epochs_for(dfs: &Dfs, prefix: &str, nodes: &[u32]) -> Vec<u64> {
    listed_epochs(dfs, prefix)
        .into_iter()
        .filter(|&e| epoch_complete_for(dfs, prefix, e, nodes))
        .collect()
}

/// The newest complete epoch, or a clear error when none exists.
pub fn latest_complete(dfs: &Dfs, prefix: &str, num_nodes: u32) -> Result<u64, EpochError> {
    complete_epochs(dfs, prefix, num_nodes)
        .last()
        .copied()
        .ok_or_else(|| EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        })
}

/// The newest epoch complete for `nodes`, or a clear error when none exists.
pub fn latest_complete_for(dfs: &Dfs, prefix: &str, nodes: &[u32]) -> Result<u64, EpochError> {
    complete_epochs_for(dfs, prefix, nodes)
        .last()
        .copied()
        .ok_or_else(|| EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig::instant())
    }

    #[test]
    fn sealed_epoch_round_trips() {
        let d = dfs();
        for n in 0..3 {
            write_part(&d, "ec", 4, n, vec![n as u8; 10]);
        }
        assert!(epoch_complete(&d, "ec", 4, 3));
        assert_eq!(read_verified(&d, "ec", 4, 1).unwrap().as_ref(), &[1u8; 10]);
        assert_eq!(latest_complete(&d, "ec", 3), Ok(4));
    }

    #[test]
    fn missing_seal_marks_epoch_torn() {
        let d = dfs();
        write_part(&d, "ec", 4, 0, vec![7; 4]);
        write_part(&d, "ec", 4, 1, vec![7; 4]);
        write_part_torn(&d, "ec", 4, 2, vec![7; 4]);
        assert!(!epoch_complete(&d, "ec", 4, 3));
        assert!(matches!(
            read_verified(&d, "ec", 4, 2),
            Err(EpochError::TornPart { .. })
        ));
    }

    #[test]
    fn corrupted_part_fails_checksum() {
        let d = dfs();
        write_part(&d, "ec", 2, 0, vec![1, 2, 3, 4]);
        // Overwrite the data after the seal committed — a bit-rot model.
        d.write(&part_path("ec", 2, 0), vec![1, 2, 3, 5]);
        assert!(matches!(
            read_verified(&d, "ec", 2, 0),
            Err(EpochError::TornPart { .. })
        ));
        // Truncation is likewise caught (length recorded in the seal).
        d.write(&part_path("ec", 2, 0), vec![1, 2, 3]);
        assert!(read_verified(&d, "ec", 2, 0).is_err());
    }

    #[test]
    fn loader_falls_back_to_newest_complete_epoch() {
        let d = dfs();
        for n in 0..2 {
            write_part(&d, "vc", 3, n, vec![3; 8]);
        }
        for n in 0..2 {
            write_part(&d, "vc", 6, n, vec![6; 8]);
        }
        // Epoch 9 is torn: node 1 died before sealing its part.
        write_part(&d, "vc", 9, 0, vec![9; 8]);
        write_part_torn(&d, "vc", 9, 1, vec![9; 8]);
        assert_eq!(complete_epochs(&d, "vc", 2), vec![3, 6]);
        assert_eq!(latest_complete(&d, "vc", 2), Ok(6));
    }

    #[test]
    fn zero_complete_epochs_is_a_clear_error() {
        let d = dfs();
        let err = latest_complete(&d, "ec", 3).unwrap_err();
        assert!(matches!(err, EpochError::NoCompleteEpoch { .. }));
        assert!(err.to_string().contains("no complete checkpoint epoch"));

        // A lone torn epoch still yields the same clear error, not a decode
        // attempt on the torn bytes.
        write_part_torn(&d, "ec", 5, 0, vec![0xFF; 16]);
        assert!(matches!(
            latest_complete(&d, "ec", 3),
            Err(EpochError::NoCompleteEpoch { .. })
        ));
    }

    #[test]
    fn node_set_variants_ignore_dead_nodes() {
        let d = dfs();
        // Epoch 3 was sealed by all of {0, 1, 2}; then node 2 died and the
        // shrunken cluster {0, 1} sealed epoch 6 alone.
        for n in 0..3 {
            write_part(&d, "ec", 3, n, vec![3; 8]);
        }
        for n in 0..2 {
            write_part(&d, "ec", 6, n, vec![6; 8]);
        }
        // Against the full roster, epoch 6 looks torn; against the survivor
        // set it is the newest complete epoch.
        assert_eq!(latest_complete(&d, "ec", 3), Ok(3));
        assert!(!epoch_complete(&d, "ec", 6, 3));
        assert!(epoch_complete_for(&d, "ec", 6, &[0, 1]));
        assert_eq!(complete_epochs_for(&d, "ec", &[0, 1]), vec![3, 6]);
        assert_eq!(latest_complete_for(&d, "ec", &[0, 1]), Ok(6));
        // A loader that still needs the dead node's part must fall back.
        assert_eq!(latest_complete_for(&d, "ec", &[0, 1, 2]), Ok(3));
    }

    #[test]
    fn roster_round_trips_and_gates_completeness() {
        let d = dfs();
        for n in 0..3 {
            write_part(&d, "ec", 5, n, vec![5; 8]);
        }
        // Parts sealed but no roster yet: not rostered-complete.
        assert!(!epoch_complete_rostered(&d, "ec", 5));
        write_roster(&d, "ec", 5, &[0, 1, 2]);
        assert_eq!(read_roster(&d, "ec", 5), Ok(vec![0, 1, 2]));
        assert!(epoch_complete_rostered(&d, "ec", 5));
        assert_eq!(latest_complete_rostered(&d, "ec"), Ok(5));
    }

    #[test]
    fn rostered_epoch_with_missing_part_is_torn() {
        let d = dfs();
        write_part(&d, "ec", 2, 0, vec![2; 8]);
        write_part_torn(&d, "ec", 2, 1, vec![2; 8]);
        write_roster(&d, "ec", 2, &[0, 1]);
        assert!(!epoch_complete_rostered(&d, "ec", 2));
        assert!(matches!(
            latest_complete_rostered(&d, "ec"),
            Err(EpochError::NoCompleteEpoch { .. })
        ));
    }

    #[test]
    fn shrinking_roster_tracks_membership() {
        let d = dfs();
        // Epoch 3 written by {0, 1, 2}; node 2 then dies and {0, 1} write
        // epoch 6 with a two-node roster.
        for n in 0..3 {
            write_part(&d, "ec", 3, n, vec![3; 8]);
        }
        write_roster(&d, "ec", 3, &[0, 1, 2]);
        for n in 0..2 {
            write_part(&d, "ec", 6, n, vec![6; 8]);
        }
        write_roster(&d, "ec", 6, &[0, 1]);
        assert_eq!(complete_epochs_rostered(&d, "ec"), vec![3, 6]);
        assert_eq!(latest_complete_rostered(&d, "ec"), Ok(6));
    }

    #[test]
    fn truncated_roster_bytes_are_torn() {
        let d = dfs();
        write_roster(&d, "ec", 1, &[0, 1]);
        // Corrupt the roster body after sealing: count says 2, one id.
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        write_sealed(&d, &roster_path("ec", 1), bad);
        assert!(matches!(
            read_roster(&d, "ec", 1),
            Err(EpochError::TornPart { .. })
        ));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[3, 2, 1]));
        assert_ne!(checksum(&[]), checksum(&[0]));
    }
}

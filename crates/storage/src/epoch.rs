//! Atomic checkpoint epochs: sealed parts, torn-epoch detection.
//!
//! A checkpoint epoch is a directory `{prefix}/ckpt/{epoch}/` holding one
//! snapshot part per node. A bare part write is *not* atomic with respect to
//! fail-stop crashes: a node dying mid-checkpoint leaves a part that decodes
//! (the simulated DFS never tears bytes) but does not represent a committed
//! epoch — loading it would resurrect state from a superstep the cluster
//! never collectively passed.
//!
//! This module makes the commit explicit. Each part is accompanied by a tiny
//! manifest record (the *seal*, at `{part}.ok`) written **last**, recording
//! the part's length and an FNV-1a checksum. A crash between the part write
//! and the seal write leaves the epoch detectably torn: the seal is missing
//! (or, for a corrupted store, fails verification), so loaders skip the
//! epoch and fall back to the most recent complete one.
//!
//! An epoch is *complete* when every node's part verifies against its seal.
//!
//! Epochs come in two kinds. A **full** epoch's parts carry every master's
//! state; a **delta** epoch's parts carry only the vertices dirtied since
//! the previous epoch. The kind is recorded durably in the epoch's roster,
//! and [`recovery_chain`] selects what a loader must apply: the newest
//! complete full epoch (the *base*) plus every complete delta after it. A
//! torn delta part keeps its epoch permanently incomplete — exactly like a
//! torn full part — and a chain whose base epochs are all torn is reported
//! as *ungrounded* so the loader knows it must reconstruct the base from
//! initial state instead of trusting the deltas alone.

use std::fmt;
use std::sync::Arc;

use crate::Dfs;

/// Suffix appended to a part path to form its seal path.
pub const SEAL_SUFFIX: &str = ".ok";

const SEAL_MAGIC: u32 = 0x5345_414C; // "SEAL"
const SEAL_LEN: usize = 4 + 8 + 8;

/// Why a verified epoch read could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// No epoch under the prefix has a full set of verified parts.
    NoCompleteEpoch {
        /// The `{prefix}/ckpt/` namespace that was searched.
        prefix: String,
    },
    /// A specific part is missing, unsealed, or fails its checksum.
    TornPart {
        /// Path of the offending part.
        path: String,
    },
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochError::NoCompleteEpoch { prefix } => write!(
                f,
                "no complete checkpoint epoch under {prefix}/ckpt/ \
                 (zero sealed epochs — nothing to recover from)"
            ),
            EpochError::TornPart { path } => {
                write!(f, "checkpoint part {path} is torn (missing or bad seal)")
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// What an epoch's parts carry, recorded durably in its roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// Every master's state — a self-contained recovery point.
    Full,
    /// Only the vertices dirtied since the previous epoch — must be applied
    /// on top of a base.
    Delta,
}

impl EpochKind {
    fn to_u8(self) -> u8 {
        match self {
            EpochKind::Full => 0,
            EpochKind::Delta => 1,
        }
    }

    fn from_u8(b: u8) -> Option<EpochKind> {
        match b {
            0 => Some(EpochKind::Full),
            1 => Some(EpochKind::Delta),
            _ => None,
        }
    }
}

/// The epoch sequence a loader must apply, ascending.
///
/// `grounded` is true when the chain starts at a complete full epoch; when
/// false, every listed epoch is a delta and the loader must reconstruct the
/// base itself (initial state) — applying an ungrounded chain as if it were
/// self-contained is a refusal case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochChain {
    /// `(epoch, kind)` pairs to apply in order.
    pub epochs: Vec<(u64, EpochKind)>,
    /// Whether `epochs` starts at a complete full (base) epoch.
    pub grounded: bool,
}

/// 64-bit FNV-1a over `bytes` — the per-part checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Path of node `node`'s part in `epoch` under `prefix`.
pub fn part_path(prefix: &str, epoch: u64, node: u32) -> String {
    format!("{prefix}/ckpt/{epoch}/{node}")
}

/// Path of the seal (per-part manifest record) for `part`.
pub fn seal_path(part: &str) -> String {
    format!("{part}{SEAL_SUFFIX}")
}

fn encode_seal(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEAL_LEN);
    out.extend_from_slice(&SEAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(bytes).to_le_bytes());
    out
}

fn seal_matches(seal: &[u8], part: &[u8]) -> bool {
    if seal.len() != SEAL_LEN {
        return false;
    }
    let magic = u32::from_le_bytes(seal[0..4].try_into().expect("sliced"));
    let len = u64::from_le_bytes(seal[4..12].try_into().expect("sliced"));
    let sum = u64::from_le_bytes(seal[12..20].try_into().expect("sliced"));
    magic == SEAL_MAGIC && len == part.len() as u64 && sum == checksum(part)
}

/// Writes `bytes` at `path` and then commits them by writing the seal
/// **last** — the generic sealed-write primitive behind parts and rosters.
pub fn write_sealed(dfs: &Dfs, path: &str, bytes: Vec<u8>) {
    let seal = encode_seal(&bytes);
    dfs.write(path, bytes);
    dfs.write(&seal_path(path), seal);
}

/// Reads `path` and verifies it against its seal.
pub fn read_sealed(dfs: &Dfs, path: &str) -> Result<Arc<Vec<u8>>, EpochError> {
    let torn = || EpochError::TornPart {
        path: path.to_string(),
    };
    let bytes = dfs.read(path).ok_or_else(torn)?;
    let seal = dfs.read(&seal_path(path)).ok_or_else(torn)?;
    if seal_matches(&seal, &bytes) {
        Ok(bytes)
    } else {
        Err(torn())
    }
}

/// Writes a part and then commits it by writing its seal **last**.
pub fn write_part(dfs: &Dfs, prefix: &str, epoch: u64, node: u32, bytes: Vec<u8>) {
    write_sealed(dfs, &part_path(prefix, epoch, node), bytes);
}

/// Writes a part **without** its seal — the on-disk state left behind by a
/// node crashing between the data write and the manifest commit. Used by the
/// failure injector; loaders must treat the epoch as torn.
pub fn write_part_torn(dfs: &Dfs, prefix: &str, epoch: u64, node: u32, bytes: Vec<u8>) {
    dfs.write(&part_path(prefix, epoch, node), bytes);
}

/// Reads a part and verifies it against its seal.
pub fn read_verified(
    dfs: &Dfs,
    prefix: &str,
    epoch: u64,
    node: u32,
) -> Result<Arc<Vec<u8>>, EpochError> {
    read_sealed(dfs, &part_path(prefix, epoch, node))
}

/// Path of `epoch`'s roster record under `prefix`.
pub fn roster_path(prefix: &str, epoch: u64) -> String {
    format!("{prefix}/ckpt/{epoch}/roster")
}

/// Seals the membership roster of `epoch`: the node IDs whose parts
/// constitute the epoch.
///
/// Cluster membership shrinks across recovery episodes (migration leaves the
/// dead node's state on the survivors), so "every node's part verifies"
/// cannot be judged against a fixed node count. The leader of each epoch
/// records who participated; an epoch is then complete exactly when its
/// roster verifies **and** every rostered part verifies. The roster is
/// written with the same seal-last discipline as parts, so a leader dying
/// mid-roster leaves the epoch detectably torn rather than ambiguous.
///
/// The roster also records the epoch's [`EpochKind`], making full-vs-delta a
/// durable property of the epoch rather than something a loader must guess.
pub fn write_roster(dfs: &Dfs, prefix: &str, epoch: u64, kind: EpochKind, nodes: &[u32]) {
    let mut bytes = Vec::with_capacity(2 + nodes.len());
    bytes.push(kind.to_u8());
    crate::codec::write_uvarint(&mut bytes, nodes.len() as u64);
    for &n in nodes {
        crate::codec::write_uvarint(&mut bytes, u64::from(n));
    }
    write_sealed(dfs, &roster_path(prefix, epoch), bytes);
}

/// Reads and verifies `epoch`'s roster, returning its kind and node set.
pub fn read_roster(
    dfs: &Dfs,
    prefix: &str,
    epoch: u64,
) -> Result<(EpochKind, Vec<u32>), EpochError> {
    let path = roster_path(prefix, epoch);
    let bytes = read_sealed(dfs, &path)?;
    let torn = || EpochError::TornPart { path: path.clone() };
    // Strict decode: [kind:u8][uvarint count][uvarint node...]; any varint
    // error, count mismatch, overflow, or trailing byte is a torn roster.
    let mut r = crate::codec::Reader::new(&bytes);
    let kind = EpochKind::from_u8(r.take(1).map_err(|_| torn())?[0]).ok_or_else(torn)?;
    let count = crate::codec::read_uvarint(&mut r).map_err(|_| torn())?;
    if count > r.remaining() as u64 {
        return Err(torn());
    }
    let mut nodes = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let n = crate::codec::read_uvarint(&mut r).map_err(|_| torn())?;
        nodes.push(u32::try_from(n).map_err(|_| torn())?);
    }
    if r.remaining() > 0 {
        return Err(torn());
    }
    Ok((kind, nodes))
}

/// Whether `epoch` is complete by its own roster: the roster verifies and
/// every rostered node's part verifies.
pub fn epoch_complete_rostered(dfs: &Dfs, prefix: &str, epoch: u64) -> bool {
    match read_roster(dfs, prefix, epoch) {
        Ok((_, nodes)) => epoch_complete_for(dfs, prefix, epoch, &nodes),
        Err(_) => false,
    }
}

/// All roster-complete epochs under `prefix`, ascending.
pub fn complete_epochs_rostered(dfs: &Dfs, prefix: &str) -> Vec<u64> {
    listed_epochs(dfs, prefix)
        .into_iter()
        .filter(|&e| epoch_complete_rostered(dfs, prefix, e))
        .collect()
}

/// The newest roster-complete epoch, or a clear error when none exists.
pub fn latest_complete_rostered(dfs: &Dfs, prefix: &str) -> Result<u64, EpochError> {
    complete_epochs_rostered(dfs, prefix)
        .last()
        .copied()
        .ok_or_else(|| EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        })
}

/// The base+delta chain node `node` should load: the newest complete full
/// epoch whose roster contains `node`, plus every complete later epoch
/// (deltas) in order. Incomplete epochs — torn parts, missing seals, stale
/// rosters listing nodes that never sealed a part — never appear in the
/// chain.
///
/// When deltas exist but every full epoch they could ground on is torn, the
/// chain is returned with `grounded == false`: the loader must rebuild the
/// base from initial state, never apply the deltas as if self-contained.
/// (That case is safe here because an epoch only ends up incomplete when
/// its writer crashed mid-write, which forces a recovery that rewinds every
/// survivor to the last complete epoch — so the next delta's dirty set
/// covers everything since that epoch.)
pub fn recovery_chain(dfs: &Dfs, prefix: &str, node: u32) -> Result<EpochChain, EpochError> {
    let complete: Vec<(u64, EpochKind)> = listed_epochs(dfs, prefix)
        .into_iter()
        .filter_map(|e| {
            let (kind, nodes) = read_roster(dfs, prefix, e).ok()?;
            (nodes.contains(&node) && epoch_complete_for(dfs, prefix, e, &nodes))
                .then_some((e, kind))
        })
        .collect();
    if complete.is_empty() {
        return Err(EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        });
    }
    let base = complete
        .iter()
        .rposition(|&(_, kind)| kind == EpochKind::Full);
    Ok(match base {
        Some(i) => EpochChain {
            epochs: complete[i..].to_vec(),
            grounded: true,
        },
        None => EpochChain {
            epochs: complete,
            grounded: false,
        },
    })
}

/// Whether every node's part in `epoch` verifies against its seal.
pub fn epoch_complete(dfs: &Dfs, prefix: &str, epoch: u64, num_nodes: u32) -> bool {
    (0..num_nodes).all(|n| read_verified(dfs, prefix, epoch, n).is_ok())
}

/// Like [`epoch_complete`], but judged against an explicit node set.
///
/// After a recovery episode shrinks the cluster (migration onto survivors),
/// completeness can no longer be judged against `0..num_nodes`: dead nodes
/// will never seal another part, yet older epochs they did seal remain
/// loadable. Callers pass the set of nodes whose parts the *load* actually
/// needs.
pub fn epoch_complete_for(dfs: &Dfs, prefix: &str, epoch: u64, nodes: &[u32]) -> bool {
    nodes
        .iter()
        .all(|&n| read_verified(dfs, prefix, epoch, n).is_ok())
}

fn listed_epochs(dfs: &Dfs, prefix: &str) -> Vec<u64> {
    let dir = format!("{prefix}/ckpt/");
    let mut epochs: Vec<u64> = dfs
        .list(&dir)
        .iter()
        .filter_map(|p| p[dir.len()..].split('/').next()?.parse::<u64>().ok())
        .collect();
    epochs.sort_unstable();
    epochs.dedup();
    epochs
}

/// All complete epochs under `prefix`, ascending.
pub fn complete_epochs(dfs: &Dfs, prefix: &str, num_nodes: u32) -> Vec<u64> {
    listed_epochs(dfs, prefix)
        .into_iter()
        .filter(|&e| epoch_complete(dfs, prefix, e, num_nodes))
        .collect()
}

/// All epochs whose parts verify for every node in `nodes`, ascending.
pub fn complete_epochs_for(dfs: &Dfs, prefix: &str, nodes: &[u32]) -> Vec<u64> {
    listed_epochs(dfs, prefix)
        .into_iter()
        .filter(|&e| epoch_complete_for(dfs, prefix, e, nodes))
        .collect()
}

/// The newest complete epoch, or a clear error when none exists.
pub fn latest_complete(dfs: &Dfs, prefix: &str, num_nodes: u32) -> Result<u64, EpochError> {
    complete_epochs(dfs, prefix, num_nodes)
        .last()
        .copied()
        .ok_or_else(|| EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        })
}

/// The newest epoch complete for `nodes`, or a clear error when none exists.
pub fn latest_complete_for(dfs: &Dfs, prefix: &str, nodes: &[u32]) -> Result<u64, EpochError> {
    complete_epochs_for(dfs, prefix, nodes)
        .last()
        .copied()
        .ok_or_else(|| EpochError::NoCompleteEpoch {
            prefix: prefix.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig::instant())
    }

    #[test]
    fn sealed_epoch_round_trips() {
        let d = dfs();
        for n in 0..3 {
            write_part(&d, "ec", 4, n, vec![n as u8; 10]);
        }
        assert!(epoch_complete(&d, "ec", 4, 3));
        assert_eq!(read_verified(&d, "ec", 4, 1).unwrap().as_ref(), &[1u8; 10]);
        assert_eq!(latest_complete(&d, "ec", 3), Ok(4));
    }

    #[test]
    fn missing_seal_marks_epoch_torn() {
        let d = dfs();
        write_part(&d, "ec", 4, 0, vec![7; 4]);
        write_part(&d, "ec", 4, 1, vec![7; 4]);
        write_part_torn(&d, "ec", 4, 2, vec![7; 4]);
        assert!(!epoch_complete(&d, "ec", 4, 3));
        assert!(matches!(
            read_verified(&d, "ec", 4, 2),
            Err(EpochError::TornPart { .. })
        ));
    }

    #[test]
    fn corrupted_part_fails_checksum() {
        let d = dfs();
        write_part(&d, "ec", 2, 0, vec![1, 2, 3, 4]);
        // Overwrite the data after the seal committed — a bit-rot model.
        d.write(&part_path("ec", 2, 0), vec![1, 2, 3, 5]);
        assert!(matches!(
            read_verified(&d, "ec", 2, 0),
            Err(EpochError::TornPart { .. })
        ));
        // Truncation is likewise caught (length recorded in the seal).
        d.write(&part_path("ec", 2, 0), vec![1, 2, 3]);
        assert!(read_verified(&d, "ec", 2, 0).is_err());
    }

    #[test]
    fn loader_falls_back_to_newest_complete_epoch() {
        let d = dfs();
        for n in 0..2 {
            write_part(&d, "vc", 3, n, vec![3; 8]);
        }
        for n in 0..2 {
            write_part(&d, "vc", 6, n, vec![6; 8]);
        }
        // Epoch 9 is torn: node 1 died before sealing its part.
        write_part(&d, "vc", 9, 0, vec![9; 8]);
        write_part_torn(&d, "vc", 9, 1, vec![9; 8]);
        assert_eq!(complete_epochs(&d, "vc", 2), vec![3, 6]);
        assert_eq!(latest_complete(&d, "vc", 2), Ok(6));
    }

    #[test]
    fn zero_complete_epochs_is_a_clear_error() {
        let d = dfs();
        let err = latest_complete(&d, "ec", 3).unwrap_err();
        assert!(matches!(err, EpochError::NoCompleteEpoch { .. }));
        assert!(err.to_string().contains("no complete checkpoint epoch"));

        // A lone torn epoch still yields the same clear error, not a decode
        // attempt on the torn bytes.
        write_part_torn(&d, "ec", 5, 0, vec![0xFF; 16]);
        assert!(matches!(
            latest_complete(&d, "ec", 3),
            Err(EpochError::NoCompleteEpoch { .. })
        ));
    }

    #[test]
    fn node_set_variants_ignore_dead_nodes() {
        let d = dfs();
        // Epoch 3 was sealed by all of {0, 1, 2}; then node 2 died and the
        // shrunken cluster {0, 1} sealed epoch 6 alone.
        for n in 0..3 {
            write_part(&d, "ec", 3, n, vec![3; 8]);
        }
        for n in 0..2 {
            write_part(&d, "ec", 6, n, vec![6; 8]);
        }
        // Against the full roster, epoch 6 looks torn; against the survivor
        // set it is the newest complete epoch.
        assert_eq!(latest_complete(&d, "ec", 3), Ok(3));
        assert!(!epoch_complete(&d, "ec", 6, 3));
        assert!(epoch_complete_for(&d, "ec", 6, &[0, 1]));
        assert_eq!(complete_epochs_for(&d, "ec", &[0, 1]), vec![3, 6]);
        assert_eq!(latest_complete_for(&d, "ec", &[0, 1]), Ok(6));
        // A loader that still needs the dead node's part must fall back.
        assert_eq!(latest_complete_for(&d, "ec", &[0, 1, 2]), Ok(3));
    }

    #[test]
    fn roster_round_trips_and_gates_completeness() {
        let d = dfs();
        for n in 0..3 {
            write_part(&d, "ec", 5, n, vec![5; 8]);
        }
        // Parts sealed but no roster yet: not rostered-complete.
        assert!(!epoch_complete_rostered(&d, "ec", 5));
        write_roster(&d, "ec", 5, EpochKind::Full, &[0, 1, 2]);
        assert_eq!(
            read_roster(&d, "ec", 5),
            Ok((EpochKind::Full, vec![0, 1, 2]))
        );
        assert!(epoch_complete_rostered(&d, "ec", 5));
        assert_eq!(latest_complete_rostered(&d, "ec"), Ok(5));
    }

    #[test]
    fn rostered_epoch_with_missing_part_is_torn() {
        let d = dfs();
        write_part(&d, "ec", 2, 0, vec![2; 8]);
        write_part_torn(&d, "ec", 2, 1, vec![2; 8]);
        write_roster(&d, "ec", 2, EpochKind::Full, &[0, 1]);
        assert!(!epoch_complete_rostered(&d, "ec", 2));
        assert!(matches!(
            latest_complete_rostered(&d, "ec"),
            Err(EpochError::NoCompleteEpoch { .. })
        ));
    }

    #[test]
    fn shrinking_roster_tracks_membership() {
        let d = dfs();
        // Epoch 3 written by {0, 1, 2}; node 2 then dies and {0, 1} write
        // epoch 6 with a two-node roster.
        for n in 0..3 {
            write_part(&d, "ec", 3, n, vec![3; 8]);
        }
        write_roster(&d, "ec", 3, EpochKind::Full, &[0, 1, 2]);
        for n in 0..2 {
            write_part(&d, "ec", 6, n, vec![6; 8]);
        }
        write_roster(&d, "ec", 6, EpochKind::Full, &[0, 1]);
        assert_eq!(complete_epochs_rostered(&d, "ec"), vec![3, 6]);
        assert_eq!(latest_complete_rostered(&d, "ec"), Ok(6));
    }

    #[test]
    fn truncated_roster_bytes_are_torn() {
        let d = dfs();
        write_roster(&d, "ec", 1, EpochKind::Full, &[0, 1]);
        // Corrupt the roster body after sealing: count says 2, one id.
        write_sealed(&d, &roster_path("ec", 1), vec![0u8, 2, 0]);
        assert!(matches!(
            read_roster(&d, "ec", 1),
            Err(EpochError::TornPart { .. })
        ));
        // An unknown kind byte is equally torn, not silently defaulted.
        write_sealed(&d, &roster_path("ec", 1), vec![9u8, 1, 0]);
        assert!(read_roster(&d, "ec", 1).is_err());
        // Trailing bytes after the rostered ids are torn too.
        write_sealed(&d, &roster_path("ec", 1), vec![0u8, 1, 0, 5]);
        assert!(read_roster(&d, "ec", 1).is_err());
        // A node id that overflows u32 is torn, not truncated.
        let mut wide = vec![0u8, 1];
        crate::codec::write_uvarint(&mut wide, u64::from(u32::MAX) + 1);
        write_sealed(&d, &roster_path("ec", 1), wide);
        assert!(read_roster(&d, "ec", 1).is_err());
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[3, 2, 1]));
        assert_ne!(checksum(&[]), checksum(&[0]));
    }

    /// Writes a complete epoch: every node's part plus a sealed roster.
    fn complete_epoch(d: &Dfs, prefix: &str, epoch: u64, kind: EpochKind, nodes: &[u32]) {
        for &n in nodes {
            write_part(d, prefix, epoch, n, vec![epoch as u8; 8]);
        }
        write_roster(d, prefix, epoch, kind, nodes);
    }

    #[test]
    fn chain_is_base_plus_deltas() {
        let d = dfs();
        complete_epoch(&d, "ec", 2, EpochKind::Full, &[0, 1]);
        complete_epoch(&d, "ec", 4, EpochKind::Delta, &[0, 1]);
        complete_epoch(&d, "ec", 6, EpochKind::Delta, &[0, 1]);
        let chain = recovery_chain(&d, "ec", 0).unwrap();
        assert!(chain.grounded);
        assert_eq!(
            chain.epochs,
            vec![
                (2, EpochKind::Full),
                (4, EpochKind::Delta),
                (6, EpochKind::Delta)
            ]
        );
    }

    #[test]
    fn periodic_full_epoch_bounds_the_chain() {
        let d = dfs();
        complete_epoch(&d, "ec", 2, EpochKind::Full, &[0, 1]);
        complete_epoch(&d, "ec", 4, EpochKind::Delta, &[0, 1]);
        complete_epoch(&d, "ec", 10, EpochKind::Full, &[0, 1]);
        complete_epoch(&d, "ec", 12, EpochKind::Delta, &[0, 1]);
        let chain = recovery_chain(&d, "ec", 0).unwrap();
        assert!(chain.grounded);
        // The newest full epoch grounds the chain; older history is dead
        // weight the loader never touches.
        assert_eq!(
            chain.epochs,
            vec![(10, EpochKind::Full), (12, EpochKind::Delta)]
        );
    }

    #[test]
    fn torn_delta_part_keeps_epoch_out_of_the_chain() {
        let d = dfs();
        complete_epoch(&d, "ec", 2, EpochKind::Full, &[0, 1]);
        // Node 1 died between its delta part write and the seal.
        write_part(&d, "ec", 4, 0, vec![4; 8]);
        write_part_torn(&d, "ec", 4, 1, vec![4; 8]);
        write_roster(&d, "ec", 4, EpochKind::Delta, &[0, 1]);
        complete_epoch(&d, "ec", 6, EpochKind::Delta, &[0, 1]);
        assert!(!epoch_complete_rostered(&d, "ec", 4));
        let chain = recovery_chain(&d, "ec", 0).unwrap();
        assert_eq!(
            chain.epochs,
            vec![(2, EpochKind::Full), (6, EpochKind::Delta)]
        );
    }

    #[test]
    fn delta_chain_with_torn_base_is_ungrounded() {
        let d = dfs();
        // The only full epoch tore mid-write; later deltas sealed fine.
        write_part_torn(&d, "ec", 2, 0, vec![2; 8]);
        write_roster(&d, "ec", 2, EpochKind::Full, &[0]);
        complete_epoch(&d, "ec", 4, EpochKind::Delta, &[0]);
        complete_epoch(&d, "ec", 6, EpochKind::Delta, &[0]);
        let chain = recovery_chain(&d, "ec", 0).unwrap();
        // The loader must NOT treat the deltas as self-contained: the chain
        // says so explicitly, and the torn base never appears in it.
        assert!(!chain.grounded);
        assert_eq!(
            chain.epochs,
            vec![(4, EpochKind::Delta), (6, EpochKind::Delta)]
        );
    }

    #[test]
    fn stale_roster_refuses_to_serve_the_epoch() {
        let d = dfs();
        complete_epoch(&d, "ec", 2, EpochKind::Full, &[0, 1, 2]);
        // Epoch 4's roster still lists node 2 (stale membership), but node
        // 2 died and never sealed a part: the epoch must never load.
        write_part(&d, "ec", 4, 0, vec![4; 8]);
        write_part(&d, "ec", 4, 1, vec![4; 8]);
        write_roster(&d, "ec", 4, EpochKind::Delta, &[0, 1, 2]);
        assert!(!epoch_complete_rostered(&d, "ec", 4));
        let chain = recovery_chain(&d, "ec", 0).unwrap();
        assert_eq!(chain.epochs, vec![(2, EpochKind::Full)]);
    }

    #[test]
    fn chain_membership_is_per_node() {
        let d = dfs();
        complete_epoch(&d, "ec", 2, EpochKind::Full, &[0, 1, 2]);
        // Node 2 died; the survivors' later epochs exclude it.
        complete_epoch(&d, "ec", 4, EpochKind::Delta, &[0, 1]);
        let survivors = recovery_chain(&d, "ec", 0).unwrap();
        assert_eq!(
            survivors.epochs,
            vec![(2, EpochKind::Full), (4, EpochKind::Delta)]
        );
        // A loader reconstructing the dead node's partition only sees the
        // epochs that node participated in.
        let dead = recovery_chain(&d, "ec", 2).unwrap();
        assert_eq!(dead.epochs, vec![(2, EpochKind::Full)]);
        assert!(matches!(
            recovery_chain(&d, "ec", 7),
            Err(EpochError::NoCompleteEpoch { .. })
        ));
    }
}

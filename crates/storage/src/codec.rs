//! A small deterministic binary codec.
//!
//! Snapshot files, metadata snapshots and edge-ckpt files need a stable
//! byte encoding that round-trips exactly and fails loudly on corruption.
//! [`Encode`]/[`Decode`] implement little-endian, length-prefixed encoding
//! for the primitive and container types the fault-tolerance layers store.
//!
//! # Examples
//!
//! ```
//! use imitator_storage::codec::{decode, Decode, Encode, Reader};
//!
//! let mut buf = Vec::new();
//! vec![1u32, 2, 3].encode(&mut buf);
//! let back: Vec<u32> = decode(&buf)?;
//! assert_eq!(back, vec![1, 2, 3]);
//! # Ok::<(), imitator_storage::codec::DecodeError>(())
//! ```

use std::error::Error;
use std::fmt;

/// Error decoding a value from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// Bytes requested past the end.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A length or discriminant field held an invalid value.
    Corrupt(&'static str),
    /// Decoding finished but bytes were left over (top-level [`decode`] only).
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of buffer: needed {needed} bytes, {remaining} remaining"
            ),
            DecodeError::Corrupt(what) => write!(f, "corrupt field: {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl Error for DecodeError {}

/// A cursor over an immutable byte buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Types that can append their encoding to a byte buffer.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or corrupt input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Decodes a complete buffer into one value, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated, corrupt, or over-long input.
pub fn decode<T: Decode>(buf: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

macro_rules! impl_codec_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Encode for $t {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl Decode for $t {
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    let bytes = r.take(std::mem::size_of::<$t>())?;
                    Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
                }
            }
        )*
    };
}

impl_codec_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| DecodeError::Corrupt("usize overflow"))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt("bool discriminant")),
        }
    }
}

impl Encode for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u64::decode(r)? as usize;
        // Sanity bound: an element takes at least one byte, so a length
        // larger than the remaining buffer is corruption, not allocation fuel.
        if len > r.remaining().saturating_mul(8).max(1024) {
            return Err(DecodeError::Corrupt("vec length"));
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Corrupt("option discriminant")),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u64::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Corrupt("utf-8 string"))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Varint layer: LEB128 unsigned varints and zigzag signed mapping. Columnar
// wire frames and checkpoint part payloads use these for counts, deltas and
// positions, where small magnitudes dominate.
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (7 bits per byte, MSB = continuation).
pub fn write_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads one LEB128 varint.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, on more than 10 bytes, or on a
/// non-canonical terminal byte that overflows 64 bits.
pub fn read_uvarint(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = r.take(1)?[0];
        let low = u64::from(b & 0x7F);
        if shift == 63 && low > 1 {
            return Err(DecodeError::Corrupt("varint overflow"));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::Corrupt("varint too long"))
}

/// Encoded length of `v` as a varint, in bytes (1..=10).
pub fn uvarint_len(v: u64) -> usize {
    (1 + (63 ^ (v | 1).leading_zeros()) / 7) as usize
}

/// Maps a signed value onto unsigned so small magnitudes stay small:
/// 0, -1, 1, -2, ... → 0, 1, 2, 3, ...
pub fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag64`].
pub fn unzigzag64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back: T = decode(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(123_456_789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-1e300f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u8));
        roundtrip(Option::<u8>::None);
        roundtrip("héllo".to_owned());
        roundtrip((1u32, 2.5f64));
        roundtrip((1u8, vec![2u16], "x".to_owned()));
        roundtrip(vec![Some((1u32, false)), None]);
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = 12345u64.to_bytes();
        let err = decode::<u64>(&bytes[..4]).unwrap_err();
        assert!(matches!(err, DecodeError::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert_eq!(decode::<u32>(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(
            decode::<bool>(&[2]),
            Err(DecodeError::Corrupt("bool discriminant"))
        );
    }

    #[test]
    fn bad_option_rejected() {
        assert!(matches!(
            decode::<Option<u8>>(&[9, 0]),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_vec_length_rejected() {
        let mut bytes = Vec::new();
        (u64::MAX).encode(&mut bytes);
        assert!(matches!(
            decode::<Vec<u8>>(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        2u64.encode(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode::<String>(&bytes),
            Err(DecodeError::Corrupt("utf-8 string"))
        );
    }

    #[test]
    fn uvarint_roundtrips_and_lengths_match() {
        let samples = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            123_456_789,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in samples {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert_eq!(buf.len(), uvarint_len(v), "len mismatch for {v}");
            let mut r = Reader::new(&buf);
            assert_eq!(read_uvarint(&mut r).unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn uvarint_length_boundaries() {
        for k in 0..9 {
            let boundary = 1u64 << (7 * (k + 1));
            assert_eq!(uvarint_len(boundary - 1), k + 1);
            assert_eq!(uvarint_len(boundary), k + 2);
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut r = Reader::new(&[0x80]);
        assert!(matches!(
            read_uvarint(&mut r),
            Err(DecodeError::UnexpectedEof { .. })
        ));
        // 11 continuation bytes: too long for 64 bits.
        let long = [0xFFu8; 10];
        let mut r = Reader::new(&long);
        assert!(matches!(read_uvarint(&mut r), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn zigzag_roundtrips_and_keeps_small_magnitudes_small() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456, 123_456] {
            assert_eq!(unzigzag64(zigzag64(v)), v);
        }
        assert_eq!(zigzag64(0), 0);
        assert_eq!(zigzag64(-1), 1);
        assert_eq!(zigzag64(1), 2);
        assert!(uvarint_len(zigzag64(-64)) == 1);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 1,
            },
            DecodeError::Corrupt("x"),
            DecodeError::TrailingBytes(3),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}

//! Community detection by synchronous label propagation (DBLP workload).
//!
//! Each vertex adopts the most frequent label among its in-neighbours
//! (ties broken toward the smallest label, for determinism). On the
//! symmetric community graphs of the evaluation, labels flood each dense
//! community and the computation goes quiet.

use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::Vid;

/// The label-propagation community-detection program.
///
/// The accumulator is a tiny sorted histogram of neighbour labels — cheap
/// to merge and deterministic regardless of merge order.
///
/// # Examples
///
/// ```
/// use imitator_algos::CommunityDetection;
/// use imitator_engine::VertexProgram;
/// use imitator_graph::Vid;
///
/// let cd = CommunityDetection;
/// let h = cd.combine(vec![(7, 1)], vec![(3, 2), (7, 1)]);
/// assert_eq!(h, vec![(3, 2), (7, 2)]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommunityDetection;

impl VertexProgram for CommunityDetection {
    /// The vertex's community label.
    type Value = u32;
    /// Sorted `(label, count)` histogram.
    type Accum = Vec<(u32, u32)>;

    fn init(&self, vid: Vid, _degrees: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _weight: f32, src: &u32) -> Vec<(u32, u32)> {
        vec![(*src, 1)]
    }

    fn combine(&self, a: Vec<(u32, u32)>, b: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        // Merge two sorted histograms.
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }

    fn apply(&self, _vid: Vid, old: &u32, acc: Option<Vec<(u32, u32)>>, _d: &Degrees) -> u32 {
        match acc {
            None => *old,
            Some(hist) => {
                // Most frequent label; ties toward the smallest label (the
                // histogram is sorted by label, so the first maximum wins).
                hist.iter()
                    .max_by(|x, y| x.1.cmp(&y.1).then(y.0.cmp(&x.0)))
                    .map_or(*old, |&(label, _)| label)
            }
        }
    }

    fn scatter(&self, _vid: Vid, old: &u32, new: &u32) -> bool {
        old != new
    }

    /// The adopted label is a pure function of in-neighbour labels.
    fn selfish_compatible(&self) -> bool {
        true
    }

    fn accum_wire_bytes(&self, a: &Vec<(u32, u32)>) -> usize {
        8 + a.len() * 8
    }
}

/// Sequential synchronous label-propagation reference.
pub fn reference(g: &imitator_graph::Graph, max_iters: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    for _ in 0..max_iters {
        let mut hist: Vec<std::collections::BTreeMap<u32, u32>> = vec![Default::default(); n];
        for e in g.edges() {
            *hist[e.dst.index()]
                .entry(labels[e.src.index()])
                .or_insert(0) += 1;
        }
        let mut changed = false;
        let next: Vec<u32> = hist
            .iter()
            .zip(&labels)
            .map(|(h, &old)| {
                h.iter()
                    .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(x.0)))
                    .map_or(old, |(&l, _)| l)
            })
            .collect();
        for (a, b) in labels.iter().zip(&next) {
            if a != b {
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;

    #[test]
    fn combine_merges_sorted_histograms() {
        let cd = CommunityDetection;
        let merged = cd.combine(vec![(1, 2), (5, 1)], vec![(1, 1), (3, 4)]);
        assert_eq!(merged, vec![(1, 3), (3, 4), (5, 1)]);
    }

    #[test]
    fn apply_picks_majority_then_smallest() {
        let cd = CommunityDetection;
        let g = gen::from_pairs(1, &[]);
        let d = Degrees::of(&g);
        assert_eq!(
            cd.apply(Vid::new(0), &9, Some(vec![(2, 3), (7, 3), (8, 1)]), &d),
            2
        );
        assert_eq!(cd.apply(Vid::new(0), &9, Some(vec![(7, 5), (8, 1)]), &d), 7);
        assert_eq!(cd.apply(Vid::new(0), &9, None, &d), 9);
    }

    #[test]
    fn reference_floods_a_clique() {
        // Complete bidirectional triangle + attached pendant: all adopt 0.
        let g = gen::from_pairs(
            4,
            &[
                (0, 1),
                (1, 0),
                (0, 2),
                (2, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
            ],
        );
        let labels = reference(&g, 20);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[2], 0);
    }

    #[test]
    fn communities_stay_separate() {
        // Two disjoint bidirectional pairs.
        let g = gen::from_pairs(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let labels = reference(&g, 10);
        assert_ne!(labels[0], labels[2]);
    }
}

//! Single-source shortest paths on weighted graphs (RoadCA workload).
//!
//! The activation-front workload: only vertices whose tentative distance
//! just improved activate their out-neighbours, so most of the graph is
//! quiet most of the time — exactly the behaviour that distinguishes the
//! paper's activation replay (§5.1.3) from dense recomputation.

use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::Vid;

/// The SSSP vertex program over `f32` edge weights. Distance values are
/// `f32` with `INFINITY` for unreached vertices.
///
/// # Examples
///
/// ```
/// use imitator_algos::Sssp;
/// use imitator_graph::Vid;
///
/// let sssp = Sssp::from_source(Vid::new(3));
/// assert_eq!(sssp.source, Vid::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sssp {
    /// The source vertex.
    pub source: Vid,
}

impl Sssp {
    /// Creates an SSSP program rooted at `source`.
    pub fn from_source(source: Vid) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type Value = f32;
    type Accum = f32;

    fn init(&self, vid: Vid, _degrees: &Degrees) -> f32 {
        if vid == self.source {
            0.0
        } else {
            f32::INFINITY
        }
    }

    // Pull-based gather means a vertex only recomputes when an in-neighbour
    // *changed* — and the source itself never changes. Every vertex therefore
    // runs one dense superstep at iteration 0 (most relax to ∞ and go quiet);
    // the front then spreads through activation alone.

    fn gather(&self, weight: f32, src: &f32) -> f32 {
        src + weight
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn apply(&self, _vid: Vid, old: &f32, acc: Option<f32>, _degrees: &Degrees) -> f32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _vid: Vid, old: &f32, new: &f32) -> bool {
        new < old
    }

    /// Distances are running minima over history (`apply` reads `old`), so
    /// they are *not* recomputable from neighbours alone — the selfish
    /// optimisation must stay off (§4.4).
    fn selfish_compatible(&self) -> bool {
        false
    }
}

/// Sequential Bellman-Ford reference.
pub fn reference(g: &imitator_graph::Graph, source: Vid) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; g.num_vertices()];
    dist[source.index()] = 0.0;
    for _ in 0..g.num_vertices() {
        let mut changed = false;
        for e in g.edges() {
            let cand = dist[e.src.index()] + e.weight;
            if cand < dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::{gen, Edge, Graph};

    #[test]
    fn init_centers_on_source_and_all_start_active() {
        use imitator_engine::VertexProgram as _;
        let g = gen::from_pairs(3, &[(0, 1)]);
        let d = Degrees::of(&g);
        let s = Sssp::from_source(Vid::new(1));
        assert_eq!(s.init(Vid::new(1), &d), 0.0);
        assert_eq!(s.init(Vid::new(0), &d), f32::INFINITY);
        // Pull-based SSSP needs one dense superstep to launch the front.
        assert!(s.initially_active(Vid::new(0)));
        assert!(s.initially_active(Vid::new(1)));
    }

    #[test]
    fn gather_relaxes_edges() {
        let s = Sssp::from_source(Vid::new(0));
        assert_eq!(s.gather(2.5, &1.0), 3.5);
        assert_eq!(s.combine(3.0, 2.0), 2.0);
    }

    #[test]
    fn apply_is_monotone() {
        let g = gen::from_pairs(2, &[(0, 1)]);
        let d = Degrees::of(&g);
        let s = Sssp::from_source(Vid::new(0));
        assert_eq!(s.apply(Vid::new(1), &5.0, Some(7.0), &d), 5.0);
        assert_eq!(s.apply(Vid::new(1), &5.0, Some(3.0), &d), 3.0);
        assert_eq!(s.apply(Vid::new(1), &5.0, None, &d), 5.0);
    }

    #[test]
    fn reference_matches_hand_computed_paths() {
        let g = Graph::from_edges(
            4,
            vec![
                Edge::weighted(Vid::new(0), Vid::new(1), 1.0),
                Edge::weighted(Vid::new(1), Vid::new(2), 2.0),
                Edge::weighted(Vid::new(0), Vid::new(2), 10.0),
                Edge::weighted(Vid::new(2), Vid::new(3), 1.0),
            ],
        );
        let d = reference(&g, Vid::new(0));
        assert_eq!(d, vec![0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = gen::from_pairs(3, &[(0, 1)]);
        let d = reference(&g, Vid::new(0));
        assert!(d[2].is_infinite());
    }
}

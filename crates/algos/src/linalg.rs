//! Tiny dense linear algebra for ALS: symmetric positive-definite solves
//! via Cholesky factorisation (the normal-equation step of §6.1's ALS).

/// Solves `A·x = b` for symmetric positive-definite `A` (row-major, `n×n`)
/// via Cholesky factorisation. Returns `None` when `A` is not positive
/// definite (ALS guards with a ridge term, so this signals a bug upstream).
///
/// # Panics
///
/// Panics if `a.len() != n*n` or `b.len() != n`.
///
/// # Examples
///
/// ```
/// use imitator_algos::linalg::cholesky_solve;
///
/// // A = [[4, 2], [2, 3]], b = [2, 3] → x = [0, 1]
/// let x = cholesky_solve(&[4.0, 2.0, 2.0, 3.0], &[2.0, 3.0], 2).unwrap();
/// assert!((x[0] - 0.0).abs() < 1e-6);
/// assert!((x[1] - 1.0).abs() < 1e-6);
/// ```
pub fn cholesky_solve(a: &[f32], b: &[f32], n: usize) -> Option<Vec<f32>> {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    assert_eq!(b.len(), n, "rhs must have length n");
    // Factor A = L·Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = f64::from(a[i * n + j]);
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L·y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = f64::from(b[i]);
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let b = [3.0, -1.0, 0.5];
        assert_eq!(cholesky_solve(&a, &b, 3).unwrap(), b.to_vec());
    }

    #[test]
    fn solves_random_spd_system() {
        // A = MᵀM + I is SPD for any M.
        let n = 4;
        let m: Vec<f32> = (0..n * n)
            .map(|i| ((i * 7 + 3) % 11) as f32 / 11.0)
            .collect();
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += m[k * n + i] * m[k * n + j];
                }
                a[i * n + j] = s + if i == j { 1.0 } else { 0.0 };
            }
        }
        let x_true = [1.0f32, -2.0, 0.5, 3.0];
        let mut b = vec![0.0f32; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * x_true[j];
            }
        }
        let x = cholesky_solve(&a, &b, n).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = [0.0, 0.0, 0.0, 0.0];
        assert!(cholesky_solve(&a, &[1.0, 1.0], 2).is_none());
        let neg = [-1.0];
        assert!(cholesky_solve(&neg, &[1.0], 1).is_none());
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn wrong_shape_panics() {
        let _ = cholesky_solve(&[1.0, 2.0], &[1.0], 1);
    }
}

//! Alternating least squares matrix factorisation (SYN-GL workload).
//!
//! Each vertex (user or item) holds a latent-factor vector; one iteration
//! re-solves every vertex's regularised normal equations against its
//! neighbours' current factors (Jacobi-style ALS, the formulation used by
//! GraphLab's collaborative-filtering toolkit). Edge weights carry the
//! ratings; the rating graph is bipartite with each rating present in both
//! directions, so gathering over in-edges sees all of a vertex's ratings.

use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::Vid;
use imitator_metrics::MemSize;
use imitator_storage::codec::{Decode, DecodeError, Encode, Reader};

use crate::linalg::cholesky_solve;

/// A vertex's latent-factor vector.
#[derive(Debug, Clone, PartialEq)]
pub struct AlsValue(pub Vec<f32>);

impl Encode for AlsValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for AlsValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AlsValue(Vec::<f32>::decode(r)?))
    }
}

impl MemSize for AlsValue {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<AlsValue>() + self.0.capacity() * 4
    }
}

/// The gather accumulator: the normal-equation pieces `Σ x·xᵀ` (row-major)
/// and `Σ r·x` over neighbouring factors `x` and ratings `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlsAccum {
    /// `Σ x·xᵀ`, `d × d`, row-major.
    pub xtx: Vec<f32>,
    /// `Σ r·x`.
    pub xty: Vec<f32>,
}

impl Encode for AlsAccum {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.xtx.encode(buf);
        self.xty.encode(buf);
    }
}

impl Decode for AlsAccum {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AlsAccum {
            xtx: Vec::<f32>::decode(r)?,
            xty: Vec::<f32>::decode(r)?,
        })
    }
}

/// The ALS vertex program.
///
/// True ALS *alternates*: even supersteps re-solve user factors against
/// fixed item factors, odd supersteps the reverse — simultaneous (Jacobi)
/// updates oscillate. Construct with [`Als::for_bipartite`] to get the
/// alternating schedule over a [`imitator_graph::gen::bipartite_ratings`]
/// graph (users occupy the low vertex IDs).
///
/// # Examples
///
/// ```
/// use imitator_algos::Als;
///
/// let als = Als::for_bipartite(8, 0.05, 1e-3, 1_000);
/// assert_eq!(als.dim, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Als {
    /// Latent dimension `d`.
    pub dim: usize,
    /// Ridge regularisation λ.
    pub lambda: f32,
    /// Convergence threshold on `‖Δw‖∞`.
    pub tolerance: f32,
    /// User/item ID boundary: vertices `< num_users` are users and update
    /// on even supersteps; the rest are items and update on odd ones.
    pub num_users: u32,
}

impl Als {
    /// Creates an alternating ALS program over a bipartite rating graph
    /// whose users occupy vertex IDs `0..num_users`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lambda <= 0` (the solve needs the ridge to
    /// stay positive definite).
    pub fn for_bipartite(dim: usize, lambda: f32, tolerance: f32, num_users: usize) -> Self {
        assert!(dim > 0, "latent dimension must be positive");
        assert!(lambda > 0.0, "lambda must be positive");
        Als {
            dim,
            lambda,
            tolerance,
            num_users: u32::try_from(num_users).expect("user count fits u32"),
        }
    }

    fn my_phase(&self, vid: Vid, step: u64) -> bool {
        let is_user = vid.raw() < self.num_users;
        is_user == step.is_multiple_of(2)
    }
}

impl Default for Als {
    fn default() -> Self {
        Als::for_bipartite(8, 0.05, 1e-3, 0)
    }
}

impl VertexProgram for Als {
    type Value = AlsValue;
    type Accum = AlsAccum;

    /// Deterministic pseudo-random initial factors in `[0.1, 1.1)`, seeded
    /// by the vertex ID (every node computes identical initial state).
    fn init(&self, vid: Vid, _degrees: &Degrees) -> AlsValue {
        let mut state = u64::from(vid.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        AlsValue((0..self.dim).map(|_| 0.1 + next()).collect())
    }

    fn gather(&self, rating: f32, src: &AlsValue) -> AlsAccum {
        let d = self.dim;
        let x = &src.0;
        let mut xtx = vec![0.0f32; d * d];
        let mut xty = vec![0.0f32; d];
        for i in 0..d {
            for j in 0..d {
                xtx[i * d + j] = x[i] * x[j];
            }
            xty[i] = rating * x[i];
        }
        AlsAccum { xtx, xty }
    }

    fn combine(&self, mut a: AlsAccum, b: AlsAccum) -> AlsAccum {
        for (x, y) in a.xtx.iter_mut().zip(&b.xtx) {
            *x += y;
        }
        for (x, y) in a.xty.iter_mut().zip(&b.xty) {
            *x += y;
        }
        a
    }

    fn apply(&self, _vid: Vid, old: &AlsValue, acc: Option<AlsAccum>, _d: &Degrees) -> AlsValue {
        let Some(mut acc) = acc else {
            return old.clone(); // no ratings: keep factors
        };
        let d = self.dim;
        for i in 0..d {
            acc.xtx[i * d + i] += self.lambda;
        }
        match cholesky_solve(&acc.xtx, &acc.xty, d) {
            Some(w) => AlsValue(w),
            None => old.clone(),
        }
    }

    /// The alternation gate: a vertex only re-solves on its own side's
    /// supersteps (users even, items odd).
    fn apply_step(
        &self,
        vid: Vid,
        old: &AlsValue,
        acc: Option<AlsAccum>,
        degrees: &Degrees,
        step: u64,
    ) -> AlsValue {
        if self.my_phase(vid, step) {
            self.apply(vid, old, acc, degrees)
        } else {
            old.clone()
        }
    }

    fn scatter(&self, _vid: Vid, old: &AlsValue, new: &AlsValue) -> bool {
        old.0
            .iter()
            .zip(&new.0)
            .any(|(a, b)| (a - b).abs() > self.tolerance)
    }

    /// Factors are a pure function of neighbouring factors and ratings.
    fn selfish_compatible(&self) -> bool {
        true
    }

    fn value_wire_bytes(&self, v: &AlsValue) -> usize {
        8 + v.0.len() * 4
    }

    fn accum_wire_bytes(&self, a: &AlsAccum) -> usize {
        16 + (a.xtx.len() + a.xty.len()) * 4
    }
}

/// Root-mean-square error of the factorisation against the rating edges —
/// the training-quality metric used to sanity-check ALS runs.
pub fn rmse(g: &imitator_graph::Graph, factors: &[AlsValue]) -> f64 {
    let mut se = 0.0f64;
    let mut count = 0usize;
    for e in g.edges() {
        // Bipartite ratings exist in both directions; count each once.
        if e.src < e.dst {
            let p: f32 = factors[e.src.index()]
                .0
                .iter()
                .zip(&factors[e.dst.index()].0)
                .map(|(a, b)| a * b)
                .sum();
            se += f64::from(p - e.weight).powi(2);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (se / count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;

    #[test]
    fn init_is_deterministic_per_vertex() {
        let g = gen::from_pairs(2, &[]);
        let d = Degrees::of(&g);
        let als = Als::default();
        assert_eq!(als.init(Vid::new(0), &d), als.init(Vid::new(0), &d));
        assert_ne!(als.init(Vid::new(0), &d).0, als.init(Vid::new(1), &d).0);
        for x in als.init(Vid::new(5), &d).0 {
            assert!((0.1..1.2).contains(&x));
        }
    }

    #[test]
    fn gather_combine_build_normal_equations() {
        let als = Als::for_bipartite(2, 0.1, 1e-3, 1);
        let a = als.gather(2.0, &AlsValue(vec![1.0, 0.0]));
        let b = als.gather(3.0, &AlsValue(vec![0.0, 1.0]));
        let c = als.combine(a, b);
        assert_eq!(c.xtx, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(c.xty, vec![2.0, 3.0]);
    }

    #[test]
    fn apply_solves_regularised_system() {
        let g = gen::from_pairs(1, &[]);
        let d = Degrees::of(&g);
        let als = Als::for_bipartite(2, 0.5, 1e-3, 1);
        let acc = AlsAccum {
            xtx: vec![1.5, 0.0, 0.0, 1.5], // + λ = 2.0 on the diagonal
            xty: vec![4.0, 2.0],
        };
        let w = als.apply(Vid::new(0), &AlsValue(vec![0.0, 0.0]), Some(acc), &d);
        assert!((w.0[0] - 2.0).abs() < 1e-5);
        assert!((w.0[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn apply_without_ratings_keeps_old() {
        let g = gen::from_pairs(1, &[]);
        let d = Degrees::of(&g);
        let als = Als::default();
        let old = AlsValue(vec![0.5; 8]);
        assert_eq!(als.apply(Vid::new(0), &old, None, &d), old);
    }

    #[test]
    fn als_reduces_rmse_on_a_rating_graph() {
        // Sequential alternating ALS sweep using the program's own pieces.
        let g = gen::bipartite_ratings(60, 6, 9);
        let degrees = Degrees::of(&g);
        let als = Als::for_bipartite(4, 0.1, 1e-4, 60);
        let mut factors: Vec<AlsValue> = g.vertices().map(|v| als.init(v, &degrees)).collect();
        let before = rmse(&g, &factors);
        let inn = g.in_csr();
        for step in 0..10u64 {
            let prev = factors.clone();
            for v in g.vertices() {
                let mut acc: Option<AlsAccum> = None;
                for (u, w) in inn.neighbors(v) {
                    let c = als.gather(w, &prev[u.index()]);
                    acc = Some(match acc {
                        None => c,
                        Some(a) => als.combine(a, c),
                    });
                }
                factors[v.index()] = als.apply_step(v, &prev[v.index()], acc, &degrees, step);
            }
        }
        let after = rmse(&g, &factors);
        assert!(
            after < before * 0.7,
            "ALS failed to fit: rmse {before} -> {after}"
        );
    }

    #[test]
    fn apply_step_alternates_sides() {
        let g = gen::from_pairs(2, &[]);
        let d = Degrees::of(&g);
        let als = Als::for_bipartite(2, 0.1, 1e-3, 1); // v0 = user, v1 = item
        let old = AlsValue(vec![0.25, 0.25]);
        let acc = || {
            Some(AlsAccum {
                xtx: vec![1.0, 0.0, 0.0, 1.0],
                xty: vec![1.0, 1.0],
            })
        };
        // Item must not move on an even (user) step; user must.
        assert_eq!(als.apply_step(Vid::new(1), &old, acc(), &d, 0), old);
        assert_ne!(als.apply_step(Vid::new(0), &old, acc(), &d, 0), old);
        // And the reverse on an odd step.
        assert_eq!(als.apply_step(Vid::new(0), &old, acc(), &d, 1), old);
        assert_ne!(als.apply_step(Vid::new(1), &old, acc(), &d, 1), old);
    }

    #[test]
    fn value_roundtrips_codec() {
        let v = AlsValue(vec![1.0, -2.5, 0.125]);
        let back: AlsValue = imitator_storage::codec::decode(&v.to_bytes()).unwrap();
        assert_eq!(back, v);
    }
}

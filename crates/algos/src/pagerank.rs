//! PageRank (Brin & Page), the paper's primary workload.

use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::Vid;
use imitator_metrics::MemSize;
use imitator_storage::codec::{Decode, DecodeError, Encode, Reader};

/// A vertex's PageRank state.
///
/// Carries both the rank and the pre-divided share (`rank / out_degree`)
/// that in-neighbours gather — the standard trick that keeps `gather` free
/// of degree lookups on remote vertices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankValue {
    /// Current rank.
    pub rank: f64,
    /// `rank / max(out_degree, 1)`, the per-edge contribution.
    pub share: f64,
}

impl Encode for RankValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rank.encode(buf);
        self.share.encode(buf);
    }
}

impl Decode for RankValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RankValue {
            rank: f64::decode(r)?,
            share: f64::decode(r)?,
        })
    }
}

impl MemSize for RankValue {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<RankValue>()
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

/// The PageRank vertex program: `rank = (1 − d) + d · Σ share(in-neighbour)`.
///
/// Vertices deactivate once their rank moves less than `tolerance`;
/// the paper's experiments run a fixed 20 iterations instead
/// (set `tolerance` to 0.0 and bound with `max_iters`).
///
/// # Examples
///
/// ```
/// use imitator_algos::PageRank;
///
/// let pr = PageRank::new(0.85, 1e-4);
/// assert_eq!(pr.damping, 0.85);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Damping factor `d` (0.85 in the literature).
    pub damping: f64,
    /// Convergence threshold on `|Δrank|`.
    pub tolerance: f64,
}

impl PageRank {
    /// Creates a PageRank program with the given damping and tolerance.
    pub fn new(damping: f64, tolerance: f64) -> Self {
        PageRank { damping, tolerance }
    }
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank::new(0.85, 1e-6)
    }
}

impl VertexProgram for PageRank {
    type Value = RankValue;
    type Accum = f64;

    fn init(&self, vid: Vid, degrees: &Degrees) -> RankValue {
        let rank = 1.0;
        RankValue {
            rank,
            share: rank / f64::from(degrees.out_degree(vid).max(1)),
        }
    }

    fn gather(&self, _weight: f32, src: &RankValue) -> f64 {
        src.share
    }

    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, vid: Vid, _old: &RankValue, acc: Option<f64>, degrees: &Degrees) -> RankValue {
        let rank = (1.0 - self.damping) + self.damping * acc.unwrap_or(0.0);
        RankValue {
            rank,
            share: rank / f64::from(degrees.out_degree(vid).max(1)),
        }
    }

    fn scatter(&self, _vid: Vid, old: &RankValue, new: &RankValue) -> bool {
        (old.rank - new.rank).abs() > self.tolerance
    }

    /// Rank is a pure function of in-neighbour shares: selfish vertices can
    /// be recomputed at recovery (§4.4).
    fn selfish_compatible(&self) -> bool {
        true
    }

    fn value_wire_bytes(&self, _v: &RankValue) -> usize {
        16
    }
}

/// Sequential PageRank reference (dense Jacobi iterations), for tests and
/// benches.
pub fn reference(g: &imitator_graph::Graph, damping: f64, iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut out_deg = vec![0u32; n];
    for e in g.edges() {
        out_deg[e.src.index()] += 1;
    }
    let mut ranks = vec![1.0f64; n];
    for _ in 0..iters {
        let shares: Vec<f64> = ranks
            .iter()
            .zip(&out_deg)
            .map(|(r, &d)| r / f64::from(d.max(1)))
            .collect();
        let mut acc = vec![0.0f64; n];
        for e in g.edges() {
            acc[e.dst.index()] += shares[e.src.index()];
        }
        for (r, a) in ranks.iter_mut().zip(&acc) {
            *r = (1.0 - damping) + damping * a;
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;

    #[test]
    fn init_share_divides_by_out_degree() {
        let g = gen::from_pairs(3, &[(0, 1), (0, 2)]);
        let d = Degrees::of(&g);
        let pr = PageRank::default();
        assert_eq!(pr.init(Vid::new(0), &d).share, 0.5);
        assert_eq!(pr.init(Vid::new(1), &d).share, 1.0); // degree 0 → max(,1)
    }

    #[test]
    fn apply_handles_no_in_edges() {
        let g = gen::from_pairs(2, &[(0, 1)]);
        let d = Degrees::of(&g);
        let pr = PageRank::default();
        let old = pr.init(Vid::new(0), &d);
        let new = pr.apply(Vid::new(0), &old, None, &d);
        assert!((new.rank - 0.15).abs() < 1e-12);
    }

    #[test]
    fn scatter_respects_tolerance() {
        let pr = PageRank::new(0.85, 0.1);
        let a = RankValue {
            rank: 1.0,
            share: 1.0,
        };
        let b = RankValue {
            rank: 1.05,
            share: 1.05,
        };
        assert!(!pr.scatter(Vid::new(0), &a, &b));
        let c = RankValue {
            rank: 1.2,
            share: 1.2,
        };
        assert!(pr.scatter(Vid::new(0), &a, &c));
    }

    #[test]
    fn reference_total_rank_is_conserved_on_regular_graph() {
        // On a cycle every vertex keeps rank 1.
        let g = gen::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let ranks = reference(&g, 0.85, 30);
        for r in ranks {
            assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn value_roundtrips_codec() {
        let v = RankValue {
            rank: 3.5,
            share: 0.875,
        };
        let back: RankValue = imitator_storage::codec::decode(&v.to_bytes()).unwrap();
        assert_eq!(back, v);
    }
}

//! The paper's four evaluation workloads (§6.1, Table 1), as
//! [`VertexProgram`](imitator_engine::VertexProgram)s runnable on both the
//! edge-cut and vertex-cut engines:
//!
//! * [`PageRank`] — the web-ranking fixpoint (all experiments' default);
//! * [`Sssp`] — single-source shortest paths on weighted graphs (RoadCA),
//!   the activation-front workload;
//! * [`CommunityDetection`] — synchronous label propagation (DBLP);
//! * [`Als`] — alternating least squares matrix factorisation on bipartite
//!   rating graphs (SYN-GL), with a hand-rolled Cholesky solve.
//!
//! Every value type implements the `imitator-storage` codec (checkpoints)
//! and `MemSize` (memory accounting), so any program here runs under any
//! fault-tolerance mode.
//!
//! # Examples
//!
//! ```
//! use imitator_algos::PageRank;
//! use imitator_engine::{Degrees, VertexProgram};
//! use imitator_graph::{gen, Vid};
//!
//! let g = gen::power_law(100, 2.0, 4, 1);
//! let d = Degrees::of(&g);
//! let pr = PageRank::default();
//! let v0 = pr.init(Vid::new(0), &d);
//! assert!(v0.rank > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod als;
mod cd;
pub mod linalg;
mod pagerank;
mod sssp;

pub use als::{rmse as als_rmse, Als, AlsAccum, AlsValue};
pub use cd::{reference as cd_reference, CommunityDetection};
pub use pagerank::{reference as pagerank_reference, PageRank, RankValue};
pub use sssp::{reference as sssp_reference, Sssp};

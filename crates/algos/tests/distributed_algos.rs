//! The paper's four workloads, end-to-end on the distributed engines:
//! distributed results must match sequential references, and recovery from
//! injected failures must not change them.

use std::sync::Arc;

use imitator::{run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_algos::{Als, AlsValue, CommunityDetection, PageRank, Sssp};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_graph::{gen, Vid};
use imitator_partition::{
    EdgeCutPartitioner, HashEdgeCut, HybridVertexCut, RandomVertexCut, VertexCutPartitioner,
};
use imitator_storage::{Dfs, DfsConfig};

fn cfg(nodes: usize, max_iters: u64, ft: FtMode, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: nodes,
        max_iters,
        ft,
        standbys,
        ..RunConfig::default()
    }
}

fn rep(recovery: RecoveryStrategy) -> FtMode {
    FtMode::Replication {
        tolerance: 1,
        selfish_opt: false,
        recovery,
    }
}

fn fail(node: u32, iteration: u64) -> FailurePlan {
    FailurePlan {
        node: NodeId::new(node),
        iteration,
        point: FailPoint::BeforeBarrier,
    }
}

#[test]
fn pagerank_edge_cut_matches_reference() {
    let g = gen::power_law(2_000, 2.0, 8, 71);
    let cut = HashEdgeCut.partition(&g, 4);
    let report = run_edge_cut(
        &g,
        &cut,
        Arc::new(PageRank::new(0.85, 0.0)),
        cfg(4, 20, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let expected = imitator_algos::pagerank_reference(&g, 0.85, 20);
    for (v, (got, want)) in report.values.iter().zip(&expected).enumerate() {
        assert!(
            (got.rank - want).abs() < 1e-9,
            "v{v}: {} vs {want}",
            got.rank
        );
    }
}

#[test]
fn pagerank_vertex_cut_matches_reference() {
    let g = gen::power_law(1_500, 2.0, 8, 73);
    let cut = HybridVertexCut::with_threshold(30).partition(&g, 4);
    let report = run_vertex_cut(
        &g,
        &cut,
        Arc::new(PageRank::new(0.85, 0.0)),
        cfg(4, 20, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let expected = imitator_algos::pagerank_reference(&g, 0.85, 20);
    for (got, want) in report.values.iter().zip(&expected) {
        assert!((got.rank - want).abs() < 1e-7, "{} vs {want}", got.rank);
    }
}

#[test]
fn pagerank_recovery_is_bit_identical_on_both_engines() {
    let g = gen::power_law(1_500, 2.0, 8, 75);
    let ecut = HashEdgeCut.partition(&g, 4);
    let prog = Arc::new(PageRank::new(0.85, 0.0));
    let dfs = || Dfs::new(DfsConfig::instant());

    let clean = run_edge_cut(
        &g,
        &ecut,
        Arc::clone(&prog),
        cfg(4, 15, FtMode::None, 0),
        vec![],
        dfs(),
    );
    for (mode, standbys) in [
        (rep(RecoveryStrategy::Rebirth), 1),
        (rep(RecoveryStrategy::Migration), 0),
        (
            FtMode::Checkpoint {
                interval: 4,
                incremental: false,
            },
            1,
        ),
    ] {
        let r = run_edge_cut(
            &g,
            &ecut,
            Arc::clone(&prog),
            cfg(4, 15, mode, standbys),
            vec![fail(2, 6)],
            dfs(),
        );
        for (got, want) in r.values.iter().zip(&clean.values) {
            assert_eq!(got.rank.to_bits(), want.rank.to_bits(), "{mode:?} diverged");
        }
    }

    let vcut = HybridVertexCut::with_threshold(30).partition(&g, 4);
    let clean_vc = run_vertex_cut(
        &g,
        &vcut,
        Arc::clone(&prog),
        cfg(4, 15, FtMode::None, 0),
        vec![],
        dfs(),
    );
    for (mode, standbys) in [
        (rep(RecoveryStrategy::Rebirth), 1),
        (rep(RecoveryStrategy::Migration), 0),
    ] {
        let r = run_vertex_cut(
            &g,
            &vcut,
            Arc::clone(&prog),
            cfg(4, 15, mode, standbys),
            vec![fail(2, 6)],
            dfs(),
        );
        for (got, want) in r.values.iter().zip(&clean_vc.values) {
            // Vertex-cut recovery regroups edges across nodes, so gather
            // sums reassociate: equality holds up to f64 rounding.
            assert!(
                (got.rank - want.rank).abs() <= 1e-12 * want.rank.abs(),
                "vc {mode:?} diverged: {} vs {}",
                got.rank,
                want.rank
            );
        }
    }
}

#[test]
fn sssp_matches_bellman_ford_and_survives_failures() {
    let g = gen::road_like(2_500, 7);
    let source = Vid::new(0);
    let expected = imitator_algos::sssp_reference(&g, source);
    let cut = HashEdgeCut.partition(&g, 4);
    let prog = Arc::new(Sssp::from_source(source));

    let clean = run_edge_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg(4, 500, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(clean.values, expected);

    // SSSP exercises activation replay harder than anything else: inject
    // mid-front failures for both strategies.
    for (mode, standbys) in [
        (rep(RecoveryStrategy::Rebirth), 1),
        (rep(RecoveryStrategy::Migration), 0),
    ] {
        let r = run_edge_cut(
            &g,
            &cut,
            Arc::clone(&prog),
            cfg(4, 500, mode, standbys),
            vec![fail(1, 10)],
            Dfs::new(DfsConfig::instant()),
        );
        assert_eq!(r.values, expected, "{mode:?} diverged");
    }
}

#[test]
fn cd_matches_reference_and_survives_failures() {
    let g = gen::community_like(1_500, 14, 81);
    let cut = HashEdgeCut.partition(&g, 4);
    let prog = Arc::new(CommunityDetection);
    let clean = run_edge_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg(4, 30, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(clean.values, imitator_algos::cd_reference(&g, 30));

    let r = run_edge_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg(4, 30, rep(RecoveryStrategy::Migration), 0),
        vec![fail(3, 2)],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(r.values, clean.values);
}

#[test]
fn als_converges_and_survives_failures() {
    let g = gen::bipartite_ratings(150, 6, 83);
    let cut = HashEdgeCut.partition(&g, 4);
    let als = Als::for_bipartite(4, 0.1, 1e-4, 150);
    let prog = Arc::new(als);
    let clean = run_edge_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg(4, 10, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let init_factors: Vec<AlsValue> = {
        use imitator_engine::VertexProgram;
        let d = imitator_engine::Degrees::of(&g);
        g.vertices().map(|v| als.init(v, &d)).collect()
    };
    let rmse_before = imitator_algos::als_rmse(&g, &init_factors);
    let rmse_after = imitator_algos::als_rmse(&g, &clean.values);
    assert!(
        rmse_after < rmse_before * 0.7,
        "distributed ALS failed to fit: {rmse_before} -> {rmse_after}"
    );

    let r = run_edge_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg(4, 10, rep(RecoveryStrategy::Rebirth), 1),
        vec![fail(0, 4)],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(r.values, clean.values);
}

#[test]
fn sssp_and_cd_run_on_the_vertex_cut_engine() {
    // The paper's vertex-cut evaluation only uses PageRank; the engine is
    // nevertheless general — the dense schedule converges for monotone and
    // label workloads too.
    let g = gen::road_like(1_200, 19);
    let cut = RandomVertexCut.partition(&g, 4);
    let sssp = run_vertex_cut(
        &g,
        &cut,
        Arc::new(Sssp::from_source(Vid::new(0))),
        cfg(4, 2_000, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(sssp.values, imitator_algos::sssp_reference(&g, Vid::new(0)));

    let gc = gen::community_like(800, 12, 21);
    let ccut = RandomVertexCut.partition(&gc, 4);
    let cd = run_vertex_cut(
        &gc,
        &ccut,
        Arc::new(CommunityDetection),
        cfg(4, 30, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    assert_eq!(cd.values, imitator_algos::cd_reference(&gc, 30));
}

#[test]
fn als_runs_on_the_vertex_cut_engine_with_failure() {
    let g = gen::bipartite_ratings(120, 6, 23);
    let cut = RandomVertexCut.partition(&g, 4);
    let prog = Arc::new(Als::for_bipartite(4, 0.1, 1e-4, 120));
    let clean = run_vertex_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg(4, 10, FtMode::None, 0),
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let rep = run_vertex_cut(
        &g,
        &cut,
        prog,
        cfg(4, 10, rep(RecoveryStrategy::Rebirth), 1),
        vec![fail(2, 4)],
        Dfs::new(DfsConfig::instant()),
    );
    // Rebirth reproduces the edge fold order exactly (per-target edge-ckpt
    // files), so even f32 results are bit-identical.
    assert_eq!(rep.values, clean.values);
}

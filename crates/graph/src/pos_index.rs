//! Dense vertex-ID → array-position index.
//!
//! Every local graph keeps a `Vid → position` index on its hot decode and
//! routing paths. [`VidMap`] (a hashed map) is the general answer, but the
//! common case is far more regular: a node holds a constant fraction of a
//! dense `0..n` ID space, so a flat `Vec<u32>` indexed by raw vertex ID —
//! with `u32::MAX` marking absent — answers lookups with one bounds check
//! and no hashing. [`PosIndex`] picks that dense table whenever the ID span
//! is within 8× the entry count (plus slack for small graphs) and falls
//! back to a [`VidMap`] for genuinely sparse ID sets, so worst-case memory
//! stays bounded.

use imitator_metrics::MemSize;

use crate::ids::{Vid, VidMap};

/// Extra dense slots always allowed beyond the 8× load heuristic, so small
/// graphs never bounce to the sparse representation.
const DENSE_SLACK: usize = 1024;

fn dense_ok(max_raw: u32, len: usize) -> bool {
    (max_raw as usize) < len.saturating_mul(8) + DENSE_SLACK
}

#[derive(Debug, Clone)]
enum Repr {
    /// `table[vid.raw()] = position`, `u32::MAX` = absent.
    Dense(Vec<u32>),
    Sparse(VidMap<u32>),
}

/// A `Vid → u32` position map with a dense fast path.
///
/// Positions must be `< u32::MAX` (the dense table's absent sentinel);
/// local-graph positions are array indices, far below it. Equality is
/// logical — two indices holding the same mappings compare equal regardless
/// of representation.
///
/// # Examples
///
/// ```
/// use imitator_graph::{PosIndex, Vid};
///
/// let idx = PosIndex::from_sorted_vids(&[Vid::new(2), Vid::new(5), Vid::new(9)]);
/// assert_eq!(idx.get(Vid::new(5)), Some(1));
/// assert_eq!(idx.get(Vid::new(4)), None);
/// assert_eq!(idx.at(Vid::new(9)), 2);
/// assert_eq!(idx.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PosIndex {
    repr: Repr,
    len: usize,
}

impl Default for PosIndex {
    fn default() -> Self {
        PosIndex::new()
    }
}

impl PosIndex {
    /// Creates an empty index (sparse until a bulk constructor or dense
    /// clone establishes the ID span).
    pub fn new() -> Self {
        PosIndex {
            repr: Repr::Sparse(VidMap::default()),
            len: 0,
        }
    }

    /// Builds the index mapping each vid to its slice position. `vids` must
    /// be strictly ascending (the natural order of partition copy lists).
    pub fn from_sorted_vids(vids: &[Vid]) -> Self {
        debug_assert!(vids.windows(2).all(|w| w[0] < w[1]), "vids not ascending");
        PosIndex::from_pairs(vids.iter().enumerate().map(|(pos, &vid)| (vid, pos as u32)))
    }

    /// Builds the index from arbitrary `(vid, position)` pairs (later pairs
    /// overwrite earlier ones), choosing dense or sparse from the ID span.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vid, u32)>) -> Self {
        let pairs: Vec<(Vid, u32)> = pairs.into_iter().collect();
        let max_raw = pairs.iter().map(|&(v, _)| v.raw()).max().unwrap_or(0);
        if dense_ok(max_raw, pairs.len()) {
            let mut table = vec![u32::MAX; max_raw as usize + 1];
            let mut len = 0;
            for (vid, pos) in pairs {
                debug_assert_ne!(pos, u32::MAX, "u32::MAX is the absent sentinel");
                if table[vid.index()] == u32::MAX {
                    len += 1;
                }
                table[vid.index()] = pos;
            }
            PosIndex {
                repr: Repr::Dense(table),
                len,
            }
        } else {
            let mut map = VidMap::with_capacity_and_hasher(pairs.len(), Default::default());
            for (vid, pos) in pairs {
                map.insert(vid, pos);
            }
            let len = map.len();
            PosIndex {
                repr: Repr::Sparse(map),
                len,
            }
        }
    }

    /// The position of `vid`, if mapped.
    #[inline]
    pub fn get(&self, vid: Vid) -> Option<u32> {
        match &self.repr {
            Repr::Dense(t) => match t.get(vid.index()) {
                Some(&p) if p != u32::MAX => Some(p),
                _ => None,
            },
            Repr::Sparse(m) => m.get(&vid).copied(),
        }
    }

    /// The position of `vid`.
    ///
    /// # Panics
    ///
    /// Panics if `vid` is not mapped (the callers' invariant: routing only
    /// targets vertices the destination provably hosts).
    #[inline]
    pub fn at(&self, vid: Vid) -> u32 {
        self.get(vid)
            .unwrap_or_else(|| panic!("{vid} not in position index"))
    }

    /// Maps `vid` to `pos`, overwriting any previous mapping. A dense index
    /// grows to cover new IDs while the span heuristic holds and demotes
    /// itself to sparse when an outlier ID would blow the table up.
    pub fn insert(&mut self, vid: Vid, pos: u32) {
        debug_assert_ne!(pos, u32::MAX, "u32::MAX is the absent sentinel");
        match &mut self.repr {
            Repr::Dense(t) => {
                if vid.index() >= t.len() {
                    if dense_ok(vid.raw(), self.len + 1) {
                        t.resize(vid.index() + 1, u32::MAX);
                    } else {
                        let mut map =
                            VidMap::with_capacity_and_hasher(self.len + 1, Default::default());
                        for (raw, &p) in t.iter().enumerate() {
                            if p != u32::MAX {
                                map.insert(Vid::from_index(raw), p);
                            }
                        }
                        map.insert(vid, pos);
                        self.len = map.len();
                        self.repr = Repr::Sparse(map);
                        return;
                    }
                }
                if t[vid.index()] == u32::MAX {
                    self.len += 1;
                }
                t[vid.index()] = pos;
            }
            Repr::Sparse(m) => {
                if m.insert(vid, pos).is_none() {
                    self.len += 1;
                }
            }
        }
    }

    /// Number of mapped vertex IDs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no vertex is mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(vid, position)` mappings (dense: ascending vid; sparse:
    /// hash order).
    pub fn iter(&self) -> impl Iterator<Item = (Vid, u32)> + '_ {
        let (dense, sparse) = match &self.repr {
            Repr::Dense(t) => (Some(t), None),
            Repr::Sparse(m) => (None, Some(m)),
        };
        dense
            .into_iter()
            .flatten()
            .enumerate()
            .filter(|&(_, &p)| p != u32::MAX)
            .map(|(raw, &p)| (Vid::from_index(raw), p))
            .chain(sparse.into_iter().flatten().map(|(&vid, &pos)| (vid, pos)))
    }
}

impl PartialEq for PosIndex {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(vid, pos)| other.get(vid) == Some(pos))
    }
}

impl MemSize for PosIndex {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<PosIndex>() + self.heap_bytes()
    }

    fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(t) => t.capacity() * std::mem::size_of::<u32>(),
            Repr::Sparse(m) => m.capacity().max(m.len()) * (std::mem::size_of::<(Vid, u32)>() + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_dense(idx: &PosIndex) -> bool {
        matches!(idx.repr, Repr::Dense(_))
    }

    #[test]
    fn sorted_vids_build_a_dense_index() {
        let vids: Vec<Vid> = (0..500).step_by(3).map(Vid::new).collect();
        let idx = PosIndex::from_sorted_vids(&vids);
        assert!(is_dense(&idx), "span 500 / 167 entries fits the heuristic");
        assert_eq!(idx.len(), vids.len());
        for (pos, &vid) in vids.iter().enumerate() {
            assert_eq!(idx.get(vid), Some(pos as u32));
            assert_eq!(idx.at(vid), pos as u32);
        }
        assert_eq!(idx.get(Vid::new(1)), None);
        assert_eq!(idx.get(Vid::new(100_000)), None);
    }

    #[test]
    fn wide_id_span_falls_back_to_sparse() {
        let vids = [Vid::new(0), Vid::new(1), Vid::new(4_000_000)];
        let idx = PosIndex::from_sorted_vids(&vids);
        assert!(!is_dense(&idx), "3 entries over 4M span must stay sparse");
        assert_eq!(idx.get(Vid::new(4_000_000)), Some(2));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn insert_grows_overwrites_and_demotes() {
        let mut idx = PosIndex::from_sorted_vids(&[Vid::new(0), Vid::new(2)]);
        assert!(is_dense(&idx));
        idx.insert(Vid::new(500), 7); // grow within slack
        assert!(is_dense(&idx));
        idx.insert(Vid::new(2), 9); // overwrite keeps len
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.at(Vid::new(2)), 9);
        idx.insert(Vid::new(3_000_000), 1); // outlier → demote
        assert!(!is_dense(&idx));
        assert_eq!(idx.len(), 4);
        for (vid, pos) in [(0, 0), (2, 9), (500, 7), (3_000_000, 1)] {
            assert_eq!(idx.get(Vid::new(vid)), Some(pos), "v{vid} after demotion");
        }
    }

    #[test]
    fn equality_is_logical_across_representations() {
        let dense = PosIndex::from_sorted_vids(&[Vid::new(1), Vid::new(3)]);
        let mut sparse = PosIndex::new();
        sparse.insert(Vid::new(1), 0);
        sparse.insert(Vid::new(3), 1);
        assert!(is_dense(&dense));
        assert!(!is_dense(&sparse));
        assert_eq!(dense, sparse);
        sparse.insert(Vid::new(3), 2);
        assert_ne!(dense, sparse);
    }

    #[test]
    fn iter_covers_all_mappings() {
        let idx = PosIndex::from_pairs([(Vid::new(8), 1), (Vid::new(2), 0)]);
        let mut got: Vec<(u32, u32)> = idx.iter().map(|(v, p)| (v.raw(), p)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(2, 0), (8, 1)]);
    }

    #[test]
    fn empty_index_behaves() {
        let idx = PosIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.get(Vid::new(0)), None);
        assert_eq!(idx.iter().count(), 0);
        assert_eq!(PosIndex::new(), PosIndex::from_sorted_vids(&[]));
    }
}

//! Plain-text edge-list serialization.
//!
//! The paper loads input graphs from HDFS as edge-list files; the same
//! format here lets examples round-trip graphs through the simulated DFS.
//! Format: one `src dst [weight]` triple per line, `#`-prefixed comments.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::graph::{Graph, GraphBuilder};
use crate::ids::Vid;

/// Error parsing an edge-list file.
#[derive(Debug)]
pub struct ParseGraphError {
    line: usize,
    kind: ParseErrorKind,
}

#[derive(Debug)]
enum ParseErrorKind {
    Io(io::Error),
    BadField(String),
    MissingField,
}

impl ParseGraphError {
    /// 1-based line number where parsing failed (0 for I/O errors with no
    /// line context).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseErrorKind::BadField(s) => {
                write!(f, "invalid field {:?} on line {}", s, self.line)
            }
            ParseErrorKind::MissingField => {
                write!(f, "missing src/dst field on line {}", self.line)
            }
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl Graph {
    /// Parses a graph from an edge-list reader.
    ///
    /// Each non-comment line is `src dst` or `src dst weight` (whitespace
    /// separated). The vertex range is grown to cover every mentioned ID.
    ///
    /// # Errors
    ///
    /// Returns [`ParseGraphError`] on I/O failure or malformed lines.
    ///
    /// # Examples
    ///
    /// ```
    /// use imitator_graph::Graph;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let text = "# tiny\n0 1\n1 2 3.5\n";
    /// let g = Graph::from_edge_list(text.as_bytes())?;
    /// assert_eq!(g.num_vertices(), 3);
    /// assert_eq!(g.num_edges(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseGraphError> {
        let mut b = GraphBuilder::new();
        for (i, line) in reader.lines().enumerate() {
            let lineno = i + 1;
            let line = line.map_err(|e| ParseGraphError {
                line: lineno,
                kind: ParseErrorKind::Io(e),
            })?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let src = parse_vid(fields.next(), lineno)?;
            let dst = parse_vid(fields.next(), lineno)?;
            let weight = match fields.next() {
                None => 1.0,
                Some(w) => w.parse::<f32>().map_err(|_| ParseGraphError {
                    line: lineno,
                    kind: ParseErrorKind::BadField(w.to_owned()),
                })?,
            };
            b.add_edge(src, dst, weight);
        }
        Ok(b.build())
    }

    /// Writes the graph as an edge list (always including weights).
    ///
    /// Note that a writer can be passed as `&mut w` thanks to the blanket
    /// `Write for &mut W` impl.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn to_edge_list<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(
            writer,
            "# |V|={} |E|={}",
            self.num_vertices(),
            self.num_edges()
        )?;
        for e in self.edges() {
            writeln!(writer, "{} {} {}", e.src.raw(), e.dst.raw(), e.weight)?;
        }
        Ok(())
    }
}

fn parse_vid(field: Option<&str>, line: usize) -> Result<Vid, ParseGraphError> {
    let s = field.ok_or(ParseGraphError {
        line,
        kind: ParseErrorKind::MissingField,
    })?;
    s.parse::<u32>().map(Vid::new).map_err(|_| ParseGraphError {
        line,
        kind: ParseErrorKind::BadField(s.to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(
            3,
            vec![
                Edge::weighted(Vid::new(0), Vid::new(1), 2.5),
                Edge::unweighted(Vid::new(2), Vid::new(0)),
            ],
        );
        let mut buf = Vec::new();
        g.to_edge_list(&mut buf).unwrap();
        let parsed = Graph::from_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed.num_vertices(), 3);
        assert_eq!(parsed.edges(), g.edges());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = Graph::from_edge_list("\n# c\n0 1\n\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_dst_is_error() {
        let err = Graph::from_edge_list("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(format!("{err}").contains("missing"));
    }

    #[test]
    fn bad_weight_is_error() {
        let err = Graph::from_edge_list("0 1 abc\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("abc"));
    }

    #[test]
    fn bad_vertex_id_is_error() {
        let err = Graph::from_edge_list("x 1\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains('x'));
    }

    #[test]
    fn default_weight_is_one() {
        let g = Graph::from_edge_list("0 1\n".as_bytes()).unwrap();
        assert_eq!(g.edges()[0].weight, 1.0);
    }
}

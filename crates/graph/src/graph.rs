//! The immutable input graph and its builder.

use std::fmt;

use imitator_metrics::MemSize;

use crate::csr::Csr;
use crate::ids::Vid;
use crate::stats::GraphStats;

/// A directed edge with an `f32` weight.
///
/// Weight is interpreted per algorithm: distance for SSSP, rating for ALS,
/// ignored by PageRank and community detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: Vid,
    /// Destination vertex.
    pub dst: Vid,
    /// Edge weight.
    pub weight: f32,
}

impl Edge {
    /// Creates an edge with weight 1.0.
    pub fn unweighted(src: Vid, dst: Vid) -> Self {
        Edge {
            src,
            dst,
            weight: 1.0,
        }
    }

    /// Creates a weighted edge.
    pub fn weighted(src: Vid, dst: Vid, weight: f32) -> Self {
        Edge { src, dst, weight }
    }
}

impl MemSize for Edge {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Edge>()
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

/// An immutable directed input graph.
///
/// Vertices are the dense range `0..num_vertices()`; edges are an arbitrary
/// (possibly multi-) edge list. Adjacency in either direction is obtained
/// through the lazily built CSR views [`Graph::out_csr`] / [`Graph::in_csr`].
///
/// # Examples
///
/// ```
/// use imitator_graph::{Edge, Graph, Vid};
///
/// let g = Graph::from_edges(3, vec![
///     Edge::unweighted(Vid::new(0), Vid::new(1)),
///     Edge::unweighted(Vid::new(1), Vid::new(2)),
/// ]);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.out_csr().degree(Vid::new(1)), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds a graph from an explicit vertex count and edge list.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                e.src.index() < num_vertices && e.dst.index() < num_vertices,
                "edge {} -> {} out of range (|V| = {})",
                e.src,
                e.dst,
                num_vertices
            );
        }
        Graph {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices, `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges, `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates all vertex IDs.
    pub fn vertices(&self) -> impl Iterator<Item = Vid> + '_ {
        (0..self.num_vertices as u32).map(Vid::new)
    }

    /// Builds the outgoing-adjacency CSR view (`src → [dst]`).
    pub fn out_csr(&self) -> Csr {
        Csr::build(
            self.num_vertices,
            self.edges.iter().map(|e| (e.src, e.dst, e.weight)),
        )
    }

    /// Builds the incoming-adjacency CSR view (`dst → [src]`).
    pub fn in_csr(&self) -> Csr {
        Csr::build(
            self.num_vertices,
            self.edges.iter().map(|e| (e.dst, e.src, e.weight)),
        )
    }

    /// Computes degree/shape statistics used throughout the evaluation.
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(self)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph(|V|={}, |E|={})",
            self.num_vertices,
            self.edges.len()
        )
    }
}

impl MemSize for Graph {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Graph>() + self.edges.heap_bytes()
    }
}

/// Incremental builder for [`Graph`].
///
/// Grows the vertex range automatically as edges are added, which is what the
/// generators and the edge-list parser need.
///
/// # Examples
///
/// ```
/// use imitator_graph::{GraphBuilder, Vid};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(Vid::new(0), Vid::new(5), 2.0);
/// b.ensure_vertex(Vid::new(9));
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 10);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `num_vertices` vertices and reserving
    /// space for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Ensures the vertex range includes `v`.
    pub fn ensure_vertex(&mut self, v: Vid) -> &mut Self {
        self.num_vertices = self.num_vertices.max(v.index() + 1);
        self
    }

    /// Adds a weighted edge, growing the vertex range as needed.
    pub fn add_edge(&mut self, src: Vid, dst: Vid, weight: f32) -> &mut Self {
        self.ensure_vertex(src);
        self.ensure_vertex(dst);
        self.edges.push(Edge { src, dst, weight });
        self
    }

    /// Current number of edges added.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finishes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph {
            num_vertices: self.num_vertices,
            edges: self.edges,
        }
    }
}

impl Extend<Edge> for GraphBuilder {
    fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for e in iter {
            self.add_edge(e.src, e.dst, e.weight);
        }
    }
}

impl FromIterator<Edge> for Graph {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Graph {
        let mut b = GraphBuilder::new();
        b.extend(iter);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        Graph::from_edges(
            4,
            vec![
                Edge::unweighted(Vid::new(0), Vid::new(1)),
                Edge::unweighted(Vid::new(0), Vid::new(2)),
                Edge::weighted(Vid::new(2), Vid::new(3), 4.5),
            ],
        )
    }

    #[test]
    fn counts_match() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.vertices().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, vec![Edge::unweighted(Vid::new(0), Vid::new(5))]);
    }

    #[test]
    fn out_and_in_csr_are_transposes() {
        let g = tiny();
        let out = g.out_csr();
        let inn = g.in_csr();
        assert_eq!(out.degree(Vid::new(0)), 2);
        assert_eq!(inn.degree(Vid::new(0)), 0);
        assert_eq!(inn.degree(Vid::new(3)), 1);
        let (src, w) = inn.neighbors(Vid::new(3)).next().unwrap();
        assert_eq!(src, Vid::new(2));
        assert_eq!(w, 4.5);
    }

    #[test]
    fn builder_grows_vertex_range() {
        let mut b = GraphBuilder::new();
        b.add_edge(Vid::new(3), Vid::new(1), 1.0);
        assert_eq!(b.build().num_vertices(), 4);
    }

    #[test]
    fn from_iterator_collects() {
        let g: Graph = vec![Edge::unweighted(Vid::new(0), Vid::new(1))]
            .into_iter()
            .collect();
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(Vid::new(99));
        let g = b.build();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn multigraph_edges_allowed() {
        let e = Edge::unweighted(Vid::new(0), Vid::new(1));
        let g = Graph::from_edges(2, vec![e, e]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_csr().degree(Vid::new(0)), 2);
    }
}

//! Synthetic graph generators standing in for the paper's datasets.
//!
//! We cannot ship GWeb, LJournal, Wiki, DBLP, RoadCA, SYN-GL, UK-2005 or
//! Twitter, so each gets a generator reproducing the structural properties
//! the evaluation depends on: the degree distribution (drives replication
//! factor), the fraction of *selfish* vertices with no out-edges
//! (drives Fig. 3's extra-replica analysis), bipartiteness for ALS, and
//! road-network shape with log-normally distributed weights (§6.1) for SSSP.
//! The α-parameterised power-law family of Table 4 is reproduced directly by
//! [`power_law`].
//!
//! All generators are deterministic in their `seed` and take the vertex count
//! explicitly, so experiments scale to the machine at hand (the paper's sizes
//! divided by a `--scale` factor).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Edge, Graph, GraphBuilder};
use crate::ids::Vid;

/// Samples from a discrete power law `P(d) ∝ d^(-alpha)` on `1..=max_degree`
/// via a precomputed inverse CDF.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler for exponent `alpha` over degrees `1..=max_degree`.
    ///
    /// # Panics
    ///
    /// Panics if `max_degree == 0` or `alpha` is not finite.
    pub fn new(alpha: f64, max_degree: usize) -> Self {
        assert!(max_degree > 0, "max_degree must be positive");
        assert!(alpha.is_finite(), "alpha must be finite");
        let mut cdf = Vec::with_capacity(max_degree);
        let mut acc = 0.0;
        for d in 1..=max_degree {
            acc += (d as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one degree in `1..=max_degree`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (c - prev);
            prev = c;
        }
        mean
    }
}

/// A cheap bijective scrambling of `0..n` used to decorrelate vertex IDs from
/// generation order (so ID-locality does not leak into hash partitioning).
#[derive(Debug, Clone, Copy)]
struct Scramble {
    n: u64,
    a: u64,
    b: u64,
}

impl Scramble {
    fn new(n: usize, seed: u64) -> Self {
        let n = n as u64;
        // A multiplier coprime with n: try odd candidates derived from the
        // seed until gcd == 1 (terminates quickly; any odd number works for
        // even n, and for odd n at most a few tries are needed).
        let mut a = (seed | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        while gcd(a % n.max(1), n.max(1)) != 1 {
            a = a.wrapping_add(2);
        }
        Scramble {
            n: n.max(1),
            a: a % n.max(1),
            b: seed % n.max(1),
        }
    }

    fn apply(&self, i: u64) -> u64 {
        (i.wrapping_mul(self.a).wrapping_add(self.b)) % self.n
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Generates a directed power-law graph: `num_vertices` vertices whose
/// out-degrees follow `P(d) ∝ d^(-alpha)` with mean scaled to `avg_degree`,
/// and whose in-degrees are skewed (a few heavy hubs), like natural graphs.
///
/// This is the generator behind Table 4's synthetic family (`α ∈ 1.8..2.2`,
/// fixed `|V|`): smaller `alpha` produces denser, more skewed graphs.
///
/// # Panics
///
/// Panics if `num_vertices == 0`.
///
/// # Examples
///
/// ```
/// use imitator_graph::gen;
///
/// let g = gen::power_law(10_000, 2.0, 8, 1);
/// let s = g.stats();
/// assert!(s.avg_degree > 4.0 && s.avg_degree < 16.0);
/// assert!(s.max_in_degree > 50); // hubby
/// ```
pub fn power_law(num_vertices: usize, alpha: f64, avg_degree: usize, seed: u64) -> Graph {
    power_law_selfish(num_vertices, alpha, avg_degree, 0.0, seed)
}

/// Generates a power-law graph whose density *emerges from* `alpha` instead
/// of being rescaled: out-degrees are raw samples of `P(d) ∝ d^(-alpha)`.
/// This matches Table 4's synthetic family, where `|E|` grows from 39M to
/// 673M as α falls from 2.2 to 1.8 at fixed `|V|`.
///
/// # Panics
///
/// Panics if `num_vertices == 0`.
///
/// # Examples
///
/// ```
/// use imitator_graph::gen;
///
/// let dense = gen::power_law_natural(2_000, 1.8, 1);
/// let sparse = gen::power_law_natural(2_000, 2.2, 1);
/// assert!(dense.num_edges() > sparse.num_edges());
/// ```
pub fn power_law_natural(num_vertices: usize, alpha: f64, seed: u64) -> Graph {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_degree = (num_vertices as f64).sqrt().ceil() as usize * 4;
    let zipf = ZipfSampler::new(alpha, max_degree.max(1));
    let scramble = Scramble::new(num_vertices, seed ^ 0xABCD_EF01);
    let mut b = GraphBuilder::new();
    b.ensure_vertex(Vid::from_index(num_vertices - 1));
    let skew = 2.0;
    for i in 0..num_vertices {
        let d = zipf.sample(&mut rng);
        let src = Vid::from_index(scramble.apply(i as u64) as usize);
        for _ in 0..d {
            let u: f64 = rng.gen();
            let hot = (num_vertices as f64 * u.powf(skew)) as u64 % num_vertices as u64;
            let dst = Vid::from_index(scramble.apply(num_vertices as u64 - 1 - hot) as usize);
            if dst != src {
                b.add_edge(src, dst, 1.0);
            }
        }
    }
    b.build()
}

/// Like [`power_law`] but reserving a `selfish_fraction` of vertices that
/// receive no out-edges (they only consume), modelling datasets such as GWeb
/// where >10% of vertices are selfish (Fig. 3(a)).
///
/// # Panics
///
/// Panics if `num_vertices == 0` or `selfish_fraction` is outside `[0, 1)`.
pub fn power_law_selfish(
    num_vertices: usize,
    alpha: f64,
    avg_degree: usize,
    selfish_fraction: f64,
    seed: u64,
) -> Graph {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    assert!(
        (0.0..1.0).contains(&selfish_fraction),
        "selfish_fraction must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let max_degree = (num_vertices as f64).sqrt().ceil() as usize * 4;
    let zipf = ZipfSampler::new(alpha, max_degree.max(1));
    let scramble = Scramble::new(num_vertices, seed ^ 0xABCD_EF01);

    let num_sources = ((num_vertices as f64) * (1.0 - selfish_fraction)).ceil() as usize;
    let num_sources = num_sources.clamp(1, num_vertices);

    // Scale raw zipf degrees so total edges ≈ num_vertices * avg_degree.
    let raw: Vec<usize> = (0..num_sources).map(|_| zipf.sample(&mut rng)).collect();
    let raw_sum: usize = raw.iter().sum();
    let target_edges = num_vertices * avg_degree;
    let factor = target_edges as f64 / raw_sum.max(1) as f64;

    let mut b = GraphBuilder::with_capacity(num_vertices, target_edges);
    b.ensure_vertex(Vid::from_index(num_vertices - 1));
    // In-degree skew: pick targets as floor(n * u^k); k>1 concentrates mass
    // near 0, and the scramble spreads those hot IDs across the range.
    let skew = 2.0;
    for (i, &raw_d) in raw.iter().enumerate() {
        let scaled = raw_d as f64 * factor;
        let mut d = scaled.floor() as usize;
        if rng.gen::<f64>() < scaled - d as f64 {
            d += 1;
        }
        let src = Vid::from_index(scramble.apply(i as u64) as usize);
        for _ in 0..d {
            let u: f64 = rng.gen();
            let hot = (num_vertices as f64 * u.powf(skew)) as u64 % num_vertices as u64;
            let dst = Vid::from_index(scramble.apply(num_vertices as u64 - 1 - hot) as usize);
            if dst != src {
                b.add_edge(src, dst, 1.0);
            }
        }
    }
    b.build()
}

/// Generates a road-network-like graph: a 2D grid with 4-neighbour links in
/// both directions, a small number of dropped links, and log-normally
/// distributed edge weights (`μ = 0.4`, `σ = 1.2` as in §6.1).
///
/// # Panics
///
/// Panics if `num_vertices == 0`.
///
/// # Examples
///
/// ```
/// use imitator_graph::gen;
///
/// let g = gen::road_like(400, 7);
/// let s = g.stats();
/// assert!(s.max_out_degree <= 4);
/// ```
pub fn road_like(num_vertices: usize, seed: u64) -> Graph {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (num_vertices as f64).sqrt().ceil() as usize;
    let n = side * side;
    let mut b = GraphBuilder::with_capacity(n, n * 4);
    b.ensure_vertex(Vid::from_index(n - 1));
    let keep_prob = 0.95;
    let weight = |rng: &mut StdRng| log_normal(rng, 0.4, 1.2) as f32;
    for y in 0..side {
        for x in 0..side {
            let v = Vid::from_index(y * side + x);
            if x + 1 < side && rng.gen::<f64>() < keep_prob {
                let u = Vid::from_index(y * side + x + 1);
                let w = weight(&mut rng);
                b.add_edge(v, u, w);
                b.add_edge(u, v, w);
            }
            if y + 1 < side && rng.gen::<f64>() < keep_prob {
                let u = Vid::from_index((y + 1) * side + x);
                let w = weight(&mut rng);
                b.add_edge(v, u, w);
                b.add_edge(u, v, w);
            }
        }
    }
    b.build()
}

/// Generates a DBLP-like community graph for community detection: vertices in
/// dense communities (geometric sizes around `avg_community`) with sparse
/// inter-community links; all edges bidirectional.
///
/// # Panics
///
/// Panics if `num_vertices == 0` or `avg_community == 0`.
pub fn community_like(num_vertices: usize, avg_community: usize, seed: u64) -> Graph {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    assert!(avg_community > 0, "avg_community must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(num_vertices, num_vertices * 4);
    b.ensure_vertex(Vid::from_index(num_vertices - 1));
    let mut start = 0usize;
    let mut communities = Vec::new();
    while start < num_vertices {
        let size = (1 + rng.gen_range(0..avg_community * 2)).min(num_vertices - start);
        communities.push((start, size));
        start += size;
    }
    for &(start, size) in &communities {
        // Ring plus chords inside the community: connected and dense.
        for i in 0..size {
            let v = Vid::from_index(start + i);
            let u = Vid::from_index(start + (i + 1) % size);
            if v != u {
                b.add_edge(v, u, 1.0);
                b.add_edge(u, v, 1.0);
            }
            if size > 3 && rng.gen::<f64>() < 0.5 {
                let j = rng.gen_range(0..size);
                let w = Vid::from_index(start + j);
                if w != v {
                    b.add_edge(v, w, 1.0);
                    b.add_edge(w, v, 1.0);
                }
            }
        }
    }
    // Sparse inter-community bridges (~2% of vertices).
    let bridges = (num_vertices / 50).max(1);
    for _ in 0..bridges {
        let a = Vid::from_index(rng.gen_range(0..num_vertices));
        let c = Vid::from_index(rng.gen_range(0..num_vertices));
        if a != c {
            b.add_edge(a, c, 1.0);
            b.add_edge(c, a, 1.0);
        }
    }
    b.build()
}

/// Generates a SYN-GL-like bipartite rating graph for ALS: `num_users` users
/// and `num_users / 10 + 1` items; each user rates a power-law number of
/// items with ratings in `1.0..=5.0`. Every rating appears as two directed
/// edges (user→item and item→user) so gather works in both ALS phases.
///
/// Returned graph has `num_users + num_items` vertices; users occupy the
/// lower IDs. Use [`bipartite_split`] to recover the boundary.
///
/// # Panics
///
/// Panics if `num_users == 0`.
pub fn bipartite_ratings(num_users: usize, avg_ratings: usize, seed: u64) -> Graph {
    assert!(num_users > 0, "need at least one user");
    let num_items = num_users / 10 + 1;
    let n = num_users + num_items;
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(1.8, (num_items).max(2));
    let raw: Vec<usize> = (0..num_users).map(|_| zipf.sample(&mut rng)).collect();
    let raw_sum: usize = raw.iter().sum();
    let factor = (num_users * avg_ratings) as f64 / raw_sum.max(1) as f64;
    let mut b = GraphBuilder::with_capacity(n, num_users * avg_ratings * 2);
    b.ensure_vertex(Vid::from_index(n - 1));
    let skew = 1.5;
    for (u, &raw_d) in raw.iter().enumerate() {
        let scaled = raw_d as f64 * factor;
        let mut d = scaled.floor() as usize;
        if rng.gen::<f64>() < scaled - d as f64 {
            d += 1;
        }
        let user = Vid::from_index(u);
        for _ in 0..d.max(1) {
            let r: f64 = rng.gen();
            let item_idx = (num_items as f64 * r.powf(skew)) as usize % num_items;
            let item = Vid::from_index(num_users + item_idx);
            let rating = rng.gen_range(1..=5) as f32;
            b.add_edge(user, item, rating);
            b.add_edge(item, user, rating);
        }
    }
    b.build()
}

/// Returns `(num_users, num_items)` for a graph produced by
/// [`bipartite_ratings`] with the given `num_users`.
pub fn bipartite_split(num_users: usize) -> (usize, usize) {
    (num_users, num_users / 10 + 1)
}

fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// The paper's dataset line-up, as scaled synthetic stand-ins.
///
/// `Dataset::generate(scale, seed)` produces a graph with
/// `paper |V| × scale` vertices and the paper's average degree and structural
/// character. Recommended scales: `0.01` for tests, `0.02`–`0.1` for benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// GWeb stand-in: web graph, |V|=0.87M, avg deg ≈ 5.9, many selfish vertices.
    GWeb,
    /// LJournal stand-in: social graph, |V|=4.85M, avg deg ≈ 14.4, some selfish.
    LJournal,
    /// Wiki stand-in: link graph, |V|=5.72M, avg deg ≈ 22.7.
    Wiki,
    /// SYN-GL stand-in: bipartite rating graph for ALS, |V|=0.11M.
    SynGl,
    /// DBLP stand-in: community co-authorship graph, |V|=0.32M.
    Dblp,
    /// RoadCA stand-in: road network with log-normal weights, |V|=1.97M.
    RoadCa,
    /// UK-2005 stand-in: large web graph, |V|=40M, avg deg ≈ 23.4.
    Uk2005,
    /// Twitter stand-in: follower graph, |V|=42M, avg deg ≈ 35, heavy skew.
    Twitter,
}

impl Dataset {
    /// All datasets in the Cyclops (edge-cut) evaluation, Table 1 order.
    pub fn cyclops_suite() -> [Dataset; 6] {
        [
            Dataset::GWeb,
            Dataset::LJournal,
            Dataset::Wiki,
            Dataset::SynGl,
            Dataset::Dblp,
            Dataset::RoadCa,
        ]
    }

    /// All real-world datasets in the PowerLyra (vertex-cut) evaluation,
    /// Table 4 order.
    pub fn powerlyra_suite() -> [Dataset; 5] {
        [
            Dataset::GWeb,
            Dataset::LJournal,
            Dataset::Wiki,
            Dataset::Uk2005,
            Dataset::Twitter,
        ]
    }

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::GWeb => "GWeb",
            Dataset::LJournal => "LJournal",
            Dataset::Wiki => "Wiki",
            Dataset::SynGl => "SYN-GL",
            Dataset::Dblp => "DBLP",
            Dataset::RoadCa => "RoadCA",
            Dataset::Uk2005 => "UK-2005",
            Dataset::Twitter => "Twitter",
        }
    }

    /// The paper's vertex count for this dataset.
    pub fn paper_vertices(self) -> usize {
        match self {
            Dataset::GWeb => 870_000,
            Dataset::LJournal => 4_850_000,
            Dataset::Wiki => 5_720_000,
            Dataset::SynGl => 110_000,
            Dataset::Dblp => 320_000,
            Dataset::RoadCa => 1_970_000,
            Dataset::Uk2005 => 40_000_000,
            Dataset::Twitter => 42_000_000,
        }
    }

    /// Generates the stand-in graph at `scale` times the paper's size.
    ///
    /// # Panics
    ///
    /// Panics if the scaled vertex count rounds to zero.
    pub fn generate(self, scale: f64, seed: u64) -> Graph {
        let nv = ((self.paper_vertices() as f64 * scale).round() as usize).max(1);
        match self {
            Dataset::GWeb => power_law_selfish(nv, 2.2, 6, 0.25, seed),
            Dataset::LJournal => power_law_selfish(nv, 2.1, 14, 0.15, seed),
            Dataset::Wiki => power_law_selfish(nv, 2.0, 23, 0.05, seed),
            Dataset::SynGl => bipartite_ratings(nv * 10 / 11, 24, seed),
            Dataset::Dblp => community_like(nv, 16, seed),
            Dataset::RoadCa => road_like(nv, seed),
            Dataset::Uk2005 => power_law_selfish(nv, 2.0, 23, 0.08, seed),
            Dataset::Twitter => power_law_selfish(nv, 1.9, 35, 0.03, seed),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a graph from explicit `(src, dst)` pairs — convenience for tests.
pub fn from_pairs(num_vertices: usize, pairs: &[(u32, u32)]) -> Graph {
    Graph::from_edges(
        num_vertices,
        pairs
            .iter()
            .map(|&(s, d)| Edge::unweighted(Vid::new(s), Vid::new(d)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_mean_decreases_with_alpha() {
        let low = ZipfSampler::new(1.8, 1000).mean();
        let high = ZipfSampler::new(2.2, 1000).mean();
        assert!(low > high);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = ZipfSampler::new(2.0, 50);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let d = z.sample(&mut rng);
            assert!((1..=50).contains(&d));
        }
    }

    #[test]
    fn power_law_is_deterministic_in_seed() {
        let a = power_law(500, 2.0, 5, 9);
        let b = power_law(500, 2.0, 5, 9);
        assert_eq!(a, b);
        let c = power_law(500, 2.0, 5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn power_law_hits_target_density() {
        let g = power_law(5_000, 2.0, 10, 1);
        let avg = g.stats().avg_degree;
        assert!(avg > 7.0 && avg < 13.0, "avg degree {avg} off target 10");
    }

    #[test]
    fn power_law_has_heavy_in_degree_tail() {
        let s = power_law(5_000, 2.0, 10, 2).stats();
        assert!(
            s.max_in_degree as f64 > 10.0 * s.avg_degree,
            "max in-degree {} not hubby vs avg {}",
            s.max_in_degree,
            s.avg_degree
        );
    }

    #[test]
    fn natural_family_density_grows_as_alpha_falls() {
        // Table 4: |E| at fixed |V| increases monotonically from α=2.2 to 1.8.
        let e: Vec<usize> = [2.2, 2.1, 2.0, 1.9, 1.8]
            .iter()
            .map(|&a| power_law_natural(4_000, a, 3).num_edges())
            .collect();
        for w in e.windows(2) {
            assert!(w[1] > w[0], "density not increasing: {e:?}");
        }
    }

    #[test]
    fn selfish_fraction_respected() {
        let g = power_law_selfish(4_000, 2.0, 8, 0.3, 5);
        let f = g.stats().selfish_fraction();
        assert!(f >= 0.28, "selfish fraction {f} below requested 0.3");
    }

    #[test]
    fn no_self_loops_in_power_law() {
        let g = power_law(2_000, 2.0, 6, 11);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn road_is_sparse_and_symmetric() {
        let g = road_like(900, 4);
        let s = g.stats();
        assert!(s.max_out_degree <= 4);
        // every edge has its reverse
        let set: std::collections::HashSet<(u32, u32)> = g
            .edges()
            .iter()
            .map(|e| (e.src.raw(), e.dst.raw()))
            .collect();
        for e in g.edges() {
            assert!(set.contains(&(e.dst.raw(), e.src.raw())));
        }
    }

    #[test]
    fn road_weights_are_positive() {
        let g = road_like(400, 12);
        assert!(g.edges().iter().all(|e| e.weight > 0.0));
    }

    #[test]
    fn community_graph_is_symmetric() {
        let g = community_like(500, 10, 8);
        let set: std::collections::HashSet<(u32, u32)> = g
            .edges()
            .iter()
            .map(|e| (e.src.raw(), e.dst.raw()))
            .collect();
        for e in g.edges() {
            assert!(set.contains(&(e.dst.raw(), e.src.raw())));
        }
    }

    #[test]
    fn bipartite_edges_cross_the_split() {
        let users = 200;
        let g = bipartite_ratings(users, 5, 3);
        let (nu, _ni) = bipartite_split(users);
        for e in g.edges() {
            let a = e.src.index() < nu;
            let b = e.dst.index() < nu;
            assert_ne!(a, b, "edge within one side of the bipartition");
            assert!((1.0..=5.0).contains(&e.weight));
        }
    }

    #[test]
    fn every_dataset_generates() {
        for d in [
            Dataset::GWeb,
            Dataset::LJournal,
            Dataset::Wiki,
            Dataset::SynGl,
            Dataset::Dblp,
            Dataset::RoadCa,
            Dataset::Uk2005,
            Dataset::Twitter,
        ] {
            let g = d.generate(0.001, 42);
            assert!(g.num_vertices() > 0, "{d} empty");
            assert!(g.num_edges() > 0, "{d} has no edges");
        }
    }

    #[test]
    fn gweb_like_has_many_selfish_vertices() {
        let g = Dataset::GWeb.generate(0.01, 7);
        assert!(g.stats().selfish_fraction() > 0.10);
    }
}

//! Compressed sparse row adjacency view.

use imitator_metrics::MemSize;

use crate::ids::Vid;

/// A compressed-sparse-row adjacency structure over a fixed vertex range.
///
/// Built from `(from, to, weight)` triples; gives O(1) access to the
/// neighbour slice of each `from` vertex. Both engines build one CSR per
/// direction per local partition, mirroring how Cyclops keeps a master's
/// in-edges local.
///
/// # Examples
///
/// ```
/// use imitator_graph::{Csr, Vid};
///
/// let csr = Csr::build(3, vec![
///     (Vid::new(0), Vid::new(1), 1.0),
///     (Vid::new(0), Vid::new(2), 2.0),
/// ]);
/// assert_eq!(csr.degree(Vid::new(0)), 2);
/// assert_eq!(csr.degree(Vid::new(1)), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<Vid>,
    weights: Vec<f32>,
}

impl Csr {
    /// Builds a CSR from `(from, to, weight)` triples over `num_vertices`
    /// vertices.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn build<I>(num_vertices: usize, triples: I) -> Self
    where
        I: IntoIterator<Item = (Vid, Vid, f32)>,
        I::IntoIter: Clone,
    {
        let iter = triples.into_iter();
        let mut counts = vec![0u32; num_vertices + 1];
        for (from, to, _) in iter.clone() {
            assert!(
                from.index() < num_vertices && to.index() < num_vertices,
                "CSR edge endpoint out of range"
            );
            counts[from.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let total = *counts.last().unwrap() as usize;
        let mut targets = vec![Vid::default(); total];
        let mut weights = vec![0.0f32; total];
        let mut cursor = counts.clone();
        for (from, to, w) in iter {
            let slot = cursor[from.index()] as usize;
            targets[slot] = to;
            weights[slot] = w;
            cursor[from.index()] += 1;
        }
        Csr {
            offsets: counts,
            targets,
            weights,
        }
    }

    /// Number of vertices in the CSR's range.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored adjacency entries.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree (number of stored neighbours) of `v`.
    pub fn degree(&self, v: Vid) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates the `(neighbor, weight)` pairs of `v`.
    pub fn neighbors(&self, v: Vid) -> impl Iterator<Item = (Vid, f32)> + '_ {
        let i = v.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// The raw neighbour slice of `v` (no weights).
    pub fn neighbor_slice(&self, v: Vid) -> &[Vid] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

impl MemSize for Csr {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Csr>()
            + self.offsets.heap_bytes()
            + self.targets.heap_bytes()
            + self.weights.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let csr = Csr::build(0, Vec::new());
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn preserves_all_edges() {
        let triples = vec![
            (Vid::new(2), Vid::new(0), 1.0),
            (Vid::new(0), Vid::new(1), 2.0),
            (Vid::new(2), Vid::new(1), 3.0),
        ];
        let csr = Csr::build(3, triples);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.degree(Vid::new(2)), 2);
        let n2: Vec<_> = csr.neighbors(Vid::new(2)).collect();
        assert!(n2.contains(&(Vid::new(0), 1.0)));
        assert!(n2.contains(&(Vid::new(1), 3.0)));
    }

    #[test]
    fn vertices_without_edges_have_zero_degree() {
        let csr = Csr::build(5, vec![(Vid::new(0), Vid::new(4), 1.0)]);
        for v in 1..4u32 {
            assert_eq!(csr.degree(Vid::new(v)), 0);
            assert_eq!(csr.neighbors(Vid::new(v)).count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn endpoint_out_of_range_panics() {
        Csr::build(1, vec![(Vid::new(0), Vid::new(1), 1.0)]);
    }

    #[test]
    fn neighbor_slice_matches_neighbors() {
        let csr = Csr::build(
            3,
            vec![
                (Vid::new(1), Vid::new(0), 1.0),
                (Vid::new(1), Vid::new(2), 1.0),
            ],
        );
        let from_slice: Vec<Vid> = csr.neighbor_slice(Vid::new(1)).to_vec();
        let from_iter: Vec<Vid> = csr.neighbors(Vid::new(1)).map(|(v, _)| v).collect();
        assert_eq!(from_slice, from_iter);
    }
}

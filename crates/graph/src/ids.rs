//! Vertex identifiers.

use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use imitator_metrics::MemSize;

/// A global vertex identifier.
///
/// `Vid` is a dense index into `0..num_vertices` of the input [`Graph`]. The
/// newtype keeps global IDs from being confused with *local* array positions
/// inside a node's partition (a plain `usize` everywhere in the engines),
/// which is exactly the distinction the paper's position-addressed recovery
/// relies on.
///
/// [`Graph`]: crate::Graph
///
/// # Examples
///
/// ```
/// use imitator_graph::Vid;
///
/// let v = Vid::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vid(u32);

impl Vid {
    /// Creates a vertex ID from a raw index.
    pub fn new(raw: u32) -> Self {
        Vid(raw)
    }

    /// Creates a vertex ID from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (graphs here are bounded by
    /// `u32::MAX` vertices).
    pub fn from_index(index: usize) -> Self {
        Vid(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// The raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The ID as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for Vid {
    fn from(raw: u32) -> Self {
        Vid(raw)
    }
}

impl From<Vid> for u32 {
    fn from(v: Vid) -> u32 {
        v.0
    }
}

impl MemSize for Vid {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Vid>()
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

/// A `HashMap` keyed by [`Vid`] using [`VidHasher`] — the hot runtime index
/// of every local graph (vertex-ID → array position), where SipHash's
/// per-lookup cost is measurable.
pub type VidMap<V> = std::collections::HashMap<Vid, V, BuildHasherDefault<VidHasher>>;

/// A fast, deterministic hasher for the 4-byte [`Vid`] keys of [`VidMap`].
///
/// One multiply-xorshift round (the SplitMix64 finalizer) — full avalanche
/// on 32-bit inputs at a fraction of SipHash's cost. Not DoS-resistant;
/// vertex IDs are not attacker-controlled.
#[derive(Debug, Default, Clone, Copy)]
pub struct VidHasher(u64);

impl Hasher for VidHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (prefix lengths etc.) — rarely hit for Vid keys.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        let mut x = self.0 ^ u64::from(v);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let v = Vid::from(123u32);
        assert_eq!(u32::from(v), 123);
        assert_eq!(v.index(), 123);
    }

    #[test]
    fn from_index_roundtrip() {
        assert_eq!(Vid::from_index(42).raw(), 42);
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = Vid::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(Vid::new(1) < Vid::new(2));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", Vid::new(0)), "v0");
    }

    #[test]
    fn vid_map_behaves_like_a_map() {
        let mut m: VidMap<u32> = VidMap::default();
        for i in 0..1_000u32 {
            m.insert(Vid::new(i), i * 2);
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..1_000u32 {
            assert_eq!(m.get(&Vid::new(i)), Some(&(i * 2)));
        }
        assert_eq!(m.get(&Vid::new(5_000)), None);
    }

    #[test]
    fn vid_hasher_spreads_sequential_keys() {
        use std::hash::{Hash, Hasher as _};
        let mut buckets = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let mut h = VidHasher::default();
            Vid::new(i).hash(&mut h);
            buckets.insert(h.finish() % 1024);
        }
        assert_eq!(buckets.len(), 1024, "sequential vids must fill all buckets");
    }
}

//! Graph substrate for the Imitator reproduction.
//!
//! Provides the input-graph representation shared by the partitioners and the
//! two engines, plus synthetic generators standing in for the paper's
//! datasets (GWeb, LJournal, Wiki, DBLP, RoadCA, SYN-GL, UK-2005, Twitter and
//! the α-parameterised power-law family of Table 4).
//!
//! A [`Graph`] is an immutable directed multigraph with `f32` edge weights
//! (PageRank/CD ignore them, SSSP uses them as distances, ALS as ratings).
//! [`Csr`] views give O(1) per-vertex adjacency access in both directions.
//!
//! # Examples
//!
//! ```
//! use imitator_graph::{gen, Vid};
//!
//! let g = gen::power_law(1_000, 2.0, 8, 42);
//! assert_eq!(g.num_vertices(), 1_000);
//! let out = g.out_csr();
//! let _neighbors: Vec<Vid> = out.neighbors(Vid::new(0)).map(|(v, _)| v).collect();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
pub mod gen;
mod graph;
mod ids;
mod io;
mod pos_index;
mod stats;

pub use csr::Csr;
pub use graph::{Edge, Graph, GraphBuilder};
pub use ids::{Vid, VidHasher, VidMap};
pub use io::ParseGraphError;
pub use pos_index::PosIndex;
pub use stats::GraphStats;

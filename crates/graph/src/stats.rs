//! Degree and shape statistics.
//!
//! The paper's replica analysis (§3.1, Fig. 3) hinges on two structural
//! quantities: how many vertices have *no out-edges* ("selfish" candidates —
//! their value has no consumer) and the degree distribution that drives the
//! replication factor under each partitioner. [`GraphStats`] computes both.

use std::fmt;

use crate::graph::Graph;

/// Summary statistics of a [`Graph`].
///
/// # Examples
///
/// ```
/// use imitator_graph::{Edge, Graph, Vid};
///
/// let g = Graph::from_edges(3, vec![Edge::unweighted(Vid::new(0), Vid::new(1))]);
/// let s = g.stats();
/// assert_eq!(s.num_vertices, 3);
/// assert_eq!(s.selfish_vertices, 2); // v1 and v2 have no out-edges
/// assert_eq!(s.isolated_vertices, 1); // v2 has no edges at all
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_vertices: usize,
    /// `|E|`.
    pub num_edges: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean out-degree (`|E| / |V|`, 0 for the empty graph).
    pub avg_degree: f64,
    /// Vertices with no out-edges (selfish candidates, §4.4).
    pub selfish_vertices: usize,
    /// Vertices with no edges at all.
    pub isolated_vertices: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for e in g.edges() {
            out_deg[e.src.index()] += 1;
            in_deg[e.dst.index()] += 1;
        }
        let selfish = out_deg.iter().filter(|&&d| d == 0).count();
        let isolated = (0..n)
            .filter(|&i| out_deg[i] == 0 && in_deg[i] == 0)
            .count();
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            max_out_degree: out_deg.iter().copied().max().unwrap_or(0),
            max_in_degree: in_deg.iter().copied().max().unwrap_or(0),
            avg_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            selfish_vertices: selfish,
            isolated_vertices: isolated,
        }
    }

    /// Fraction of vertices that are selfish (no out-edges).
    pub fn selfish_fraction(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.selfish_vertices as f64 / self.num_vertices as f64
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg_deg={:.2} max_out={} max_in={} selfish={:.1}%",
            self.num_vertices,
            self.num_edges,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree,
            100.0 * self.selfish_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use crate::ids::Vid;

    #[test]
    fn empty_graph_stats() {
        let g = Graph::from_edges(0, Vec::new());
        let s = g.stats();
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.selfish_fraction(), 0.0);
    }

    #[test]
    fn degrees_counted_per_direction() {
        // star: 0 -> 1, 0 -> 2, 0 -> 3; 3 -> 0
        let g = Graph::from_edges(
            4,
            vec![
                Edge::unweighted(Vid::new(0), Vid::new(1)),
                Edge::unweighted(Vid::new(0), Vid::new(2)),
                Edge::unweighted(Vid::new(0), Vid::new(3)),
                Edge::unweighted(Vid::new(3), Vid::new(0)),
            ],
        );
        let s = g.stats();
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.selfish_vertices, 2); // v1, v2
        assert_eq!(s.isolated_vertices, 0);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_selfish() {
        let g = Graph::from_edges(2, vec![Edge::unweighted(Vid::new(0), Vid::new(1))]);
        assert!(format!("{}", g.stats()).contains("selfish"));
    }
}

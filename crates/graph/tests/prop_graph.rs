//! Property tests for the graph substrate: edge-list serialisation
//! round-trips arbitrary graphs, CSR views are exact transposes, and the
//! generators keep their documented promises across seeds.

use proptest::prelude::*;

use imitator_graph::{gen, Graph, Vid};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..80,
        proptest::collection::vec((any::<u32>(), any::<u32>(), 0.0f32..100.0), 0..300),
    )
        .prop_map(|(n, triples)| {
            let mut b = imitator_graph::GraphBuilder::new();
            b.ensure_vertex(Vid::from_index(n - 1));
            for (s, d, w) in triples {
                b.add_edge(Vid::new(s % n as u32), Vid::new(d % n as u32), w);
            }
            b.build()
        })
}

proptest! {
    #[test]
    fn edge_list_io_roundtrips(g in arb_graph()) {
        let mut buf = Vec::new();
        g.to_edge_list(&mut buf).unwrap();
        let back = Graph::from_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(back.num_edges(), g.num_edges());
        prop_assert_eq!(back.edges(), g.edges());
        // Vertex count may shrink for trailing isolated vertices (the text
        // format only names endpoints), never grow.
        prop_assert!(back.num_vertices() <= g.num_vertices());
    }

    #[test]
    fn csr_views_are_exact_transposes(g in arb_graph()) {
        let out = g.out_csr();
        let inn = g.in_csr();
        prop_assert_eq!(out.num_edges(), g.num_edges());
        prop_assert_eq!(inn.num_edges(), g.num_edges());
        // Σ out-degrees == Σ in-degrees == |E|, and each edge appears in both.
        let mut out_pairs: Vec<(u32, u32)> = g
            .vertices()
            .flat_map(|v| out.neighbors(v).map(move |(u, _)| (v.raw(), u.raw())))
            .collect();
        let mut in_pairs: Vec<(u32, u32)> = g
            .vertices()
            .flat_map(|v| inn.neighbors(v).map(move |(u, _)| (u.raw(), v.raw())))
            .collect();
        out_pairs.sort_unstable();
        in_pairs.sort_unstable();
        prop_assert_eq!(out_pairs, in_pairs);
    }

    #[test]
    fn stats_are_internally_consistent(g in arb_graph()) {
        let s = g.stats();
        prop_assert_eq!(s.num_vertices, g.num_vertices());
        prop_assert_eq!(s.num_edges, g.num_edges());
        prop_assert!(s.isolated_vertices <= s.selfish_vertices);
        prop_assert!(s.max_out_degree <= s.num_edges);
        if s.num_vertices > 0 {
            let expected_avg = s.num_edges as f64 / s.num_vertices as f64;
            prop_assert!((s.avg_degree - expected_avg).abs() < 1e-9);
        }
    }

    #[test]
    fn generators_are_deterministic_and_seed_sensitive(
        (nv, seed) in (50usize..300, any::<u64>())
    ) {
        let a = gen::power_law(nv, 2.0, 5, seed);
        let b = gen::power_law(nv, 2.0, 5, seed);
        prop_assert_eq!(&a, &b);
        let c = gen::road_like(nv, seed);
        let d = gen::road_like(nv, seed);
        prop_assert_eq!(&c, &d);
    }

    #[test]
    fn power_law_selfish_never_gives_sources_to_reserved(
        frac in 0.05f64..0.5, seed in any::<u64>()
    ) {
        let g = gen::power_law_selfish(1_000, 2.0, 6, frac, seed);
        let s = g.stats();
        prop_assert!(s.selfish_fraction() >= frac * 0.9);
    }

    #[test]
    fn zipf_sampler_respects_bounds((alpha, dmax) in (0.5f64..3.0, 1usize..200)) {
        let z = gen::ZipfSampler::new(alpha, dmax);
        prop_assert!(z.mean() >= 1.0);
        prop_assert!(z.mean() <= dmax as f64);
    }
}

//! Vertex-cut placements (PowerLyra model, §6.10).

use imitator_graph::{Graph, Vid};
use imitator_metrics::MemSize;

use crate::mix64;

/// A p-way vertex-cut placement: every *edge* has exactly one owner part; a
/// vertex is present (replicated) on every part holding one of its edges,
/// and one of those copies is designated the master.
///
/// # Examples
///
/// ```
/// use imitator_graph::gen;
/// use imitator_partition::{RandomVertexCut, VertexCutPartitioner};
///
/// let g = gen::power_law(500, 2.0, 6, 1);
/// let cut = RandomVertexCut.partition(&g, 4);
/// assert_eq!(cut.edge_owner().len(), g.num_edges());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexCut {
    num_parts: usize,
    edge_owner: Vec<u32>,
    master: Vec<u32>,
    replicas: Vec<Vec<u32>>,
}

impl VertexCut {
    /// Builds the placement from an edge-ownership table.
    ///
    /// Masters are chosen deterministically among the parts where the vertex
    /// is present (hash-selected, mimicking PowerGraph's random mirror
    /// election); a vertex with no edges is mastered at `hash(v) % p`.
    /// `force_master` overrides that choice per vertex when provided
    /// (hybrid-cut places low-degree masters with their in-edges).
    ///
    /// # Panics
    ///
    /// Panics if `edge_owner.len() != g.num_edges()` or any owner is out of
    /// range.
    pub fn from_edge_owner(
        g: &Graph,
        num_parts: usize,
        edge_owner: Vec<u32>,
        force_master: Option<&dyn Fn(Vid) -> usize>,
    ) -> Self {
        assert_eq!(
            edge_owner.len(),
            g.num_edges(),
            "edge owner table size mismatch"
        );
        assert!(num_parts > 0, "need at least one part");
        for &o in &edge_owner {
            assert!((o as usize) < num_parts, "edge owner {o} out of range");
        }
        let n = g.num_vertices();
        // present[v] = sorted parts holding an edge adjacent to v
        let mut present: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (e, &p) in g.edges().iter().zip(&edge_owner) {
            for v in [e.src, e.dst] {
                let list = &mut present[v.index()];
                if !list.contains(&p) {
                    list.push(p);
                }
            }
        }
        let mut master = vec![0u32; n];
        let mut replicas = vec![Vec::new(); n];
        for i in 0..n {
            let v = Vid::from_index(i);
            present[i].sort_unstable();
            let m = if let Some(f) = force_master {
                f(v) as u32
            } else if present[i].is_empty() {
                (mix64(u64::from(v.raw())) % num_parts as u64) as u32
            } else {
                // Deterministic pseudo-random choice among present parts.
                let k = mix64(u64::from(v.raw()) ^ 0x5151_5151) as usize % present[i].len();
                present[i][k]
            };
            assert!((m as usize) < num_parts, "master out of range");
            master[i] = m;
            replicas[i] = present[i].iter().copied().filter(|&p| p != m).collect();
            replicas[i].shrink_to_fit();
        }
        VertexCut {
            num_parts,
            edge_owner,
            master,
            replicas,
        }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.master.len()
    }

    /// The edge-ownership table, parallel to `Graph::edges()`.
    pub fn edge_owner(&self) -> &[u32] {
        &self.edge_owner
    }

    /// The master part of `v`.
    pub fn master(&self, v: Vid) -> usize {
        self.master[v.index()] as usize
    }

    /// Parts holding a (non-master) replica of `v`, sorted.
    pub fn replica_parts(&self, v: Vid) -> &[u32] {
        &self.replicas[v.index()]
    }

    /// Whether `v` has at least one replica besides its master.
    pub fn has_replica(&self, v: Vid) -> bool {
        !self.replicas[v.index()].is_empty()
    }

    /// Number of edges owned by each part (load-balance view — vertex-cut
    /// balances edges, not vertices).
    pub fn edge_part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &o in &self.edge_owner {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Average number of copies (master + replicas) per vertex —
    /// Fig. 14(a)'s replication factor.
    pub fn replication_factor(&self) -> f64 {
        if self.master.is_empty() {
            return 0.0;
        }
        let copies: usize = self.replicas.iter().map(|r| 1 + r.len()).sum();
        copies as f64 / self.master.len() as f64
    }

    /// Fraction of vertices whose only copy is the master (no replica).
    pub fn fraction_without_replicas(&self) -> f64 {
        if self.master.is_empty() {
            return 0.0;
        }
        let none = self.replicas.iter().filter(|r| r.is_empty()).count();
        none as f64 / self.master.len() as f64
    }
}

impl MemSize for VertexCut {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<VertexCut>()
            + self.edge_owner.heap_bytes()
            + self.master.heap_bytes()
            + self.replicas.heap_bytes()
    }
}

/// A strategy assigning edges to parts.
pub trait VertexCutPartitioner {
    /// Short name for reports ("random", "grid", "hybrid").
    fn name(&self) -> &'static str;

    /// Partitions `g`'s edges into `num_parts` parts.
    fn partition(&self, g: &Graph, num_parts: usize) -> VertexCut;
}

/// Random vertex-cut (PowerGraph): each edge hashed independently. Highest
/// replication factor (Fig. 14(a): 15.96 for Twitter on 50 nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomVertexCut;

impl VertexCutPartitioner for RandomVertexCut {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition(&self, g: &Graph, num_parts: usize) -> VertexCut {
        let edge_owner = g
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let h = mix64(
                    (u64::from(e.src.raw()) << 32)
                        ^ u64::from(e.dst.raw())
                        ^ (i as u64).rotate_left(17),
                );
                (h % num_parts as u64) as u32
            })
            .collect();
        VertexCut::from_edge_owner(g, num_parts, edge_owner, None)
    }
}

/// Grid (2D) vertex-cut (GraphBuilder): parts form an `r × c` grid; an edge
/// `(u, v)` is placed at cell `(row(u), col(v))`, confining each vertex's
/// replicas to one row plus one column (≤ r + c − 1 parts). Middle
/// replication factor (8.34 for Twitter in Fig. 14(a)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridVertexCut;

impl GridVertexCut {
    /// Factors `p` as `r × c` with `r` the largest divisor `≤ sqrt(p)`.
    /// Prime part counts degenerate to `1 × p` (a plain random cut); the
    /// harnesses use composite counts.
    pub fn grid_shape(num_parts: usize) -> (usize, usize) {
        let mut r = (num_parts as f64).sqrt().floor() as usize;
        while r > 1 && !num_parts.is_multiple_of(r) {
            r -= 1;
        }
        (r.max(1), num_parts / r.max(1))
    }
}

impl VertexCutPartitioner for GridVertexCut {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn partition(&self, g: &Graph, num_parts: usize) -> VertexCut {
        let (r, c) = Self::grid_shape(num_parts);
        let edge_owner = g
            .edges()
            .iter()
            .map(|e| {
                let su = mix64(u64::from(e.src.raw())) as usize % num_parts;
                let sv = mix64(u64::from(e.dst.raw())) as usize % num_parts;
                let row = su / c % r;
                let col = sv % c;
                (row * c + col) as u32
            })
            .collect();
        VertexCut::from_edge_owner(g, num_parts, edge_owner, None)
    }
}

/// Hybrid-cut (PowerLyra): in-edges of a *low* in-degree vertex `v` are all
/// placed at `hash(v)` (edge-cut-like locality, master co-located); in-edges
/// of a *high* in-degree vertex are distributed by `hash(src)`
/// (vertex-cut-like balance for hubs). Lowest replication factor on natural
/// graphs (5.56 for Twitter in Fig. 14(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridVertexCut {
    /// In-degree threshold θ separating low- from high-degree vertices
    /// (PowerLyra's default is 100).
    pub threshold: usize,
}

impl Default for HybridVertexCut {
    fn default() -> Self {
        HybridVertexCut { threshold: 100 }
    }
}

impl HybridVertexCut {
    /// Creates a hybrid-cut with the given in-degree threshold.
    pub fn with_threshold(threshold: usize) -> Self {
        HybridVertexCut { threshold }
    }

    fn hash_part(v: Vid, num_parts: usize) -> usize {
        (mix64(u64::from(v.raw())) % num_parts as u64) as usize
    }
}

impl VertexCutPartitioner for HybridVertexCut {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn partition(&self, g: &Graph, num_parts: usize) -> VertexCut {
        let mut in_deg = vec![0usize; g.num_vertices()];
        for e in g.edges() {
            in_deg[e.dst.index()] += 1;
        }
        let threshold = self.threshold;
        let edge_owner = g
            .edges()
            .iter()
            .map(|e| {
                if in_deg[e.dst.index()] < threshold {
                    Self::hash_part(e.dst, num_parts) as u32
                } else {
                    Self::hash_part(e.src, num_parts) as u32
                }
            })
            .collect();
        // Master always at hash(v): for low-degree vertices this is exactly
        // where all their in-edges live.
        let force = move |v: Vid| Self::hash_part(v, num_parts);
        VertexCut::from_edge_owner(g, num_parts, edge_owner, Some(&force))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;

    fn skewed() -> imitator_graph::Graph {
        gen::power_law(3_000, 1.9, 12, 21)
    }

    #[test]
    fn every_edge_owned_exactly_once() {
        let g = skewed();
        for cut in [
            RandomVertexCut.partition(&g, 6),
            GridVertexCut.partition(&g, 6),
            HybridVertexCut::default().partition(&g, 6),
        ] {
            assert_eq!(cut.edge_part_sizes().iter().sum::<usize>(), g.num_edges());
        }
    }

    #[test]
    fn master_is_a_present_part_when_vertex_has_edges() {
        let g = skewed();
        let cut = RandomVertexCut.partition(&g, 6);
        let mut has_edges = vec![false; g.num_vertices()];
        for e in g.edges() {
            has_edges[e.src.index()] = true;
            has_edges[e.dst.index()] = true;
        }
        for v in g.vertices() {
            if has_edges[v.index()] {
                let m = cut.master(v) as u32;
                let present = !cut.replica_parts(v).contains(&m);
                assert!(present, "master duplicated in replica list");
            }
        }
    }

    #[test]
    fn grid_confines_replicas_to_row_plus_column() {
        let g = skewed();
        let p = 16; // 4 x 4
        let (r, c) = GridVertexCut::grid_shape(p);
        assert_eq!((r, c), (4, 4));
        let cut = GridVertexCut.partition(&g, p);
        for v in g.vertices() {
            let copies = 1 + cut.replica_parts(v).len();
            assert!(
                copies <= r + c - 1 + 1, // +1 slack: master may be hash-placed off-grid-row
                "vertex {v} has {copies} copies, grid bound is {}",
                r + c - 1
            );
        }
    }

    #[test]
    fn replication_factor_ordering_matches_fig14a() {
        // Fig. 14(a): random > grid > hybrid on a skewed natural graph.
        let g = skewed();
        let p = 16;
        let rnd = RandomVertexCut.partition(&g, p).replication_factor();
        let grid = GridVertexCut.partition(&g, p).replication_factor();
        let hyb = HybridVertexCut::with_threshold(30)
            .partition(&g, p)
            .replication_factor();
        assert!(rnd > grid, "random {rnd} <= grid {grid}");
        assert!(grid > hyb, "grid {grid} <= hybrid {hyb}");
    }

    #[test]
    fn hybrid_low_degree_masters_are_co_located_with_in_edges() {
        let g = skewed();
        let p = 8;
        let cut = HybridVertexCut::with_threshold(1_000_000).partition(&g, p);
        // With an unreachable threshold every vertex is low-degree: all
        // in-edges at hash(dst), master at hash(dst).
        for (e, &owner) in g.edges().iter().zip(cut.edge_owner()) {
            assert_eq!(owner as usize, cut.master(e.dst));
        }
    }

    #[test]
    fn hybrid_high_threshold_zero_distributes_by_source() {
        let g = skewed();
        let cut = HybridVertexCut::with_threshold(0).partition(&g, 8);
        for (e, &owner) in g.edges().iter().zip(cut.edge_owner()) {
            assert_eq!(owner as usize, HybridVertexCut::hash_part(e.src, 8));
        }
    }

    #[test]
    fn grid_shape_factorizations() {
        assert_eq!(GridVertexCut::grid_shape(16), (4, 4));
        assert_eq!(GridVertexCut::grid_shape(50), (5, 10));
        assert_eq!(GridVertexCut::grid_shape(48), (6, 8));
        assert_eq!(GridVertexCut::grid_shape(7), (1, 7));
        assert_eq!(GridVertexCut::grid_shape(1), (1, 1));
    }

    #[test]
    fn isolated_vertex_gets_hash_master() {
        let g = gen::from_pairs(5, &[(0, 1)]);
        let cut = RandomVertexCut.partition(&g, 3);
        // v4 is isolated; it must still have a valid master.
        assert!(cut.master(imitator_graph::Vid::new(4)) < 3);
        assert!(cut.replica_parts(imitator_graph::Vid::new(4)).is_empty());
    }
}

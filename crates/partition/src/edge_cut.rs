//! Edge-cut placements (Cyclops model).

use imitator_graph::{Graph, Vid};
use imitator_metrics::MemSize;

use crate::mix64;

/// A p-way edge-cut placement: every vertex has exactly one owner part that
/// holds all of its edges; a (computation) replica of `v` exists on every
/// part that masters an out-neighbour of `v` (those parts consume `v`'s
/// value through local access, §2.1).
///
/// # Examples
///
/// ```
/// use imitator_graph::gen;
/// use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
///
/// let g = gen::from_pairs(3, &[(0, 1), (1, 2)]);
/// let cut = HashEdgeCut.partition(&g, 2);
/// assert_eq!(cut.num_parts(), 2);
/// // every vertex has an owner in range
/// for v in g.vertices() {
///     assert!(cut.owner(v) < 2);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeCut {
    num_parts: usize,
    owner: Vec<u32>,
    replicas: Vec<Vec<u32>>,
}

impl EdgeCut {
    /// Builds the placement from an ownership table, deriving replica
    /// locations from the graph's out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `owner.len() != g.num_vertices()` or any owner is out of
    /// range.
    pub fn from_owner(g: &Graph, num_parts: usize, owner: Vec<u32>) -> Self {
        assert_eq!(owner.len(), g.num_vertices(), "owner table size mismatch");
        assert!(num_parts > 0, "need at least one part");
        for &o in &owner {
            assert!((o as usize) < num_parts, "owner {o} out of range");
        }
        // replica parts of u = owners of u's out-neighbours, minus owner(u)
        let mut replicas: Vec<Vec<u32>> = vec![Vec::new(); g.num_vertices()];
        for e in g.edges() {
            let consumer = owner[e.dst.index()];
            let src = e.src.index();
            if consumer != owner[src] && !replicas[src].contains(&consumer) {
                replicas[src].push(consumer);
            }
        }
        for r in &mut replicas {
            r.sort_unstable();
            r.shrink_to_fit();
        }
        EdgeCut {
            num_parts,
            owner,
            replicas,
        }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The owner (master) part of `v`.
    pub fn owner(&self, v: Vid) -> usize {
        self.owner[v.index()] as usize
    }

    /// Parts holding a computation replica of `v` (sorted, never contains
    /// the owner).
    pub fn replica_parts(&self, v: Vid) -> &[u32] {
        &self.replicas[v.index()]
    }

    /// Whether `v` has at least one computation replica.
    pub fn has_replica(&self, v: Vid) -> bool {
        !self.replicas[v.index()].is_empty()
    }

    /// Iterates vertices mastered on `part`.
    pub fn masters_on(&self, part: usize) -> impl Iterator<Item = Vid> + '_ {
        self.owner
            .iter()
            .enumerate()
            .filter(move |(_, &o)| o as usize == part)
            .map(|(i, _)| Vid::from_index(i))
    }

    /// Number of vertices mastered on each part (load-balance view).
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &o in &self.owner {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// The replication factor: average number of copies (master + replicas)
    /// per vertex — the headline metric of Figs. 10(a) and 14(a).
    pub fn replication_factor(&self) -> f64 {
        if self.owner.is_empty() {
            return 0.0;
        }
        let copies: usize = self.replicas.iter().map(|r| 1 + r.len()).sum();
        copies as f64 / self.owner.len() as f64
    }

    /// Fraction of vertices with no computation replica (Fig. 3(a)) —
    /// these are the vertices that would be unrecoverable without the
    /// fault-tolerance replicas of §4.1.
    pub fn fraction_without_replicas(&self) -> f64 {
        if self.owner.is_empty() {
            return 0.0;
        }
        let none = self.replicas.iter().filter(|r| r.is_empty()).count();
        none as f64 / self.owner.len() as f64
    }
}

impl MemSize for EdgeCut {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<EdgeCut>() + self.owner.heap_bytes() + self.replicas.heap_bytes()
    }
}

/// A strategy assigning vertices (with all their edges) to parts.
pub trait EdgeCutPartitioner {
    /// Short name for reports ("hash", "fennel").
    fn name(&self) -> &'static str;

    /// Partitions `g` into `num_parts` parts.
    fn partition(&self, g: &Graph, num_parts: usize) -> EdgeCut;
}

/// The default random (hash-based) edge-cut of §3.1.
///
/// Deterministic: the same graph and part count always produce the same
/// placement, so masters and replicas agree across simulated nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashEdgeCut;

impl HashEdgeCut {
    /// The part that hash placement assigns to `v`.
    pub fn part_of(v: Vid, num_parts: usize) -> usize {
        (mix64(u64::from(v.raw())) % num_parts as u64) as usize
    }
}

impl EdgeCutPartitioner for HashEdgeCut {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, g: &Graph, num_parts: usize) -> EdgeCut {
        assert!(num_parts > 0, "need at least one part");
        let owner = (0..g.num_vertices())
            .map(|i| Self::part_of(Vid::from_index(i), num_parts) as u32)
            .collect();
        EdgeCut::from_owner(g, num_parts, owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;

    fn sample() -> Graph {
        gen::power_law(2_000, 2.0, 6, 17)
    }

    #[test]
    fn every_vertex_owned_exactly_once() {
        let g = sample();
        let cut = HashEdgeCut.partition(&g, 5);
        let total: usize = cut.part_sizes().iter().sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn replicas_exclude_owner_and_are_sorted() {
        let g = sample();
        let cut = HashEdgeCut.partition(&g, 5);
        for v in g.vertices() {
            let parts = cut.replica_parts(v);
            assert!(!parts.contains(&(cut.owner(v) as u32)));
            assert!(parts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn replica_exists_where_consumers_live() {
        let g = gen::from_pairs(2, &[(0, 1)]);
        let cut = HashEdgeCut.partition(&g, 2);
        let (o0, o1) = (cut.owner(Vid::new(0)), cut.owner(Vid::new(1)));
        if o0 != o1 {
            assert_eq!(cut.replica_parts(Vid::new(0)), &[o1 as u32]);
        } else {
            assert!(cut.replica_parts(Vid::new(0)).is_empty());
        }
        // v1 has no out-edges: never replicated
        assert!(cut.replica_parts(Vid::new(1)).is_empty());
    }

    #[test]
    fn single_part_has_no_replicas() {
        let g = sample();
        let cut = HashEdgeCut.partition(&g, 1);
        assert_eq!(cut.replication_factor(), 1.0);
        assert_eq!(cut.fraction_without_replicas(), 1.0);
    }

    #[test]
    fn replication_factor_grows_with_parts() {
        let g = sample();
        let rf2 = HashEdgeCut.partition(&g, 2).replication_factor();
        let rf16 = HashEdgeCut.partition(&g, 16).replication_factor();
        assert!(rf16 > rf2, "rf16 {rf16} <= rf2 {rf2}");
    }

    #[test]
    fn hash_is_roughly_balanced() {
        let g = sample();
        let sizes = HashEdgeCut.partition(&g, 4).part_sizes();
        let (min, max) = (
            *sizes.iter().min().unwrap() as f64,
            *sizes.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.3, "imbalanced: {sizes:?}");
    }

    #[test]
    fn selfish_vertices_have_no_replicas() {
        // §3.1: selfish vertices (no out-edges) are the primary source of
        // vertices without replicas under hash partitioning.
        let g = gen::power_law_selfish(3_000, 2.0, 8, 0.3, 4);
        let cut = HashEdgeCut.partition(&g, 8);
        let stats = g.stats();
        let frac = cut.fraction_without_replicas();
        assert!(
            frac >= stats.selfish_fraction() * 0.9,
            "without-replica fraction {frac} below selfish fraction {}",
            stats.selfish_fraction()
        );
    }

    #[test]
    fn masters_on_covers_all_parts() {
        let g = sample();
        let cut = HashEdgeCut.partition(&g, 3);
        let total: usize = (0..3).map(|p| cut.masters_on(p).count()).sum();
        assert_eq!(total, g.num_vertices());
    }
}

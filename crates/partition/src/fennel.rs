//! The Fennel streaming edge-cut heuristic (§6.6, Fig. 10).
//!
//! Fennel (Tsourakakis et al., WSDM'14) streams vertices in arrival order and
//! greedily places each on the part maximising
//! `|N(v) ∩ P_i| − α·γ·|P_i|^(γ−1)`, i.e. neighbours already placed there
//! minus a superlinear load penalty, subject to a hard balance cap. Compared
//! to hash placement it sharply reduces the replication factor — which, as
//! the paper shows, means *fewer* free replicas for Imitator to reuse and
//! therefore slightly higher fault-tolerance overhead (Fig. 10(b)).

use imitator_graph::{Graph, Vid};

use crate::edge_cut::{EdgeCut, EdgeCutPartitioner};

/// Streaming Fennel partitioner.
///
/// # Examples
///
/// ```
/// use imitator_graph::gen;
/// use imitator_partition::{EdgeCutPartitioner, FennelEdgeCut, HashEdgeCut};
///
/// let g = gen::road_like(2_500, 3);
/// let fennel = FennelEdgeCut::default().partition(&g, 8);
/// let hash = HashEdgeCut.partition(&g, 8);
/// assert!(fennel.replication_factor() < hash.replication_factor());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FennelEdgeCut {
    /// Load-penalty exponent γ (paper value 1.5).
    pub gamma: f64,
    /// Balance slack ν: no part may exceed `ν · |V| / p` vertices.
    pub balance_slack: f64,
}

impl Default for FennelEdgeCut {
    fn default() -> Self {
        FennelEdgeCut {
            gamma: 1.5,
            balance_slack: 1.1,
        }
    }
}

impl EdgeCutPartitioner for FennelEdgeCut {
    fn name(&self) -> &'static str {
        "fennel"
    }

    fn partition(&self, g: &Graph, num_parts: usize) -> EdgeCut {
        assert!(num_parts > 0, "need at least one part");
        let n = g.num_vertices();
        if n == 0 {
            return EdgeCut::from_owner(g, num_parts, Vec::new());
        }
        let m = g.num_edges().max(1);
        // α = sqrt(p) · |E| / |V|^{3/2} (Fennel paper, for γ = 1.5).
        let alpha = (num_parts as f64).sqrt() * m as f64 / (n as f64).powf(1.5);
        let cap = ((self.balance_slack * n as f64 / num_parts as f64).ceil() as usize).max(1);

        // Undirected adjacency for neighbour scoring.
        let out = g.out_csr();
        let inn = g.in_csr();

        let mut owner: Vec<i64> = vec![-1; n];
        let mut sizes = vec![0usize; num_parts];
        let mut neigh_count = vec![0u32; num_parts]; // scratch, reset per vertex

        for i in 0..n {
            let v = Vid::from_index(i);
            // Count already-placed neighbours per part.
            let mut touched: Vec<usize> = Vec::new();
            for (u, _) in out.neighbors(v).chain(inn.neighbors(v)) {
                let o = owner[u.index()];
                if o >= 0 {
                    let p = o as usize;
                    if neigh_count[p] == 0 {
                        touched.push(p);
                    }
                    neigh_count[p] += 1;
                }
            }
            let mut best_part = usize::MAX;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..num_parts {
                if sizes[p] >= cap {
                    continue;
                }
                let score = neigh_count[p] as f64
                    - alpha * self.gamma * (sizes[p] as f64).powf(self.gamma - 1.0);
                if score > best_score {
                    best_score = score;
                    best_part = p;
                }
            }
            // The cap guarantees a feasible part exists: total capacity
            // ν·|V| > |V|.
            assert!(
                best_part != usize::MAX,
                "no feasible part under balance cap"
            );
            owner[i] = best_part as i64;
            sizes[best_part] += 1;
            for p in touched {
                neigh_count[p] = 0;
            }
        }

        let owner: Vec<u32> = owner.into_iter().map(|o| o as u32).collect();
        EdgeCut::from_owner(g, num_parts, owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::HashEdgeCut;
    use imitator_graph::gen;

    #[test]
    fn respects_balance_cap() {
        let g = gen::power_law(3_000, 2.0, 8, 5);
        let f = FennelEdgeCut::default();
        let cut = f.partition(&g, 6);
        let cap = (f.balance_slack * 3_000.0 / 6.0).ceil() as usize;
        for s in cut.part_sizes() {
            assert!(s <= cap, "part size {s} exceeds cap {cap}");
        }
    }

    #[test]
    fn beats_hash_on_community_graph() {
        // Fig. 10(a): Fennel significantly decreases the replication factor.
        let g = gen::community_like(4_000, 20, 9);
        let fennel = FennelEdgeCut::default()
            .partition(&g, 10)
            .replication_factor();
        let hash = HashEdgeCut.partition(&g, 10).replication_factor();
        assert!(
            fennel < hash * 0.8,
            "fennel {fennel} not clearly below hash {hash}"
        );
    }

    #[test]
    fn beats_hash_on_road_graph() {
        let g = gen::road_like(4_000, 2);
        let fennel = FennelEdgeCut::default()
            .partition(&g, 8)
            .replication_factor();
        let hash = HashEdgeCut.partition(&g, 8).replication_factor();
        assert!(fennel < hash);
    }

    #[test]
    fn covers_all_vertices() {
        let g = gen::power_law(1_000, 2.0, 5, 3);
        let cut = FennelEdgeCut::default().partition(&g, 4);
        assert_eq!(cut.part_sizes().iter().sum::<usize>(), 1_000);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = gen::from_pairs(1, &[]);
        let cut = FennelEdgeCut::default().partition(&g, 3);
        assert_eq!(cut.num_vertices(), 1);
    }

    #[test]
    fn single_part_works() {
        let g = gen::power_law(500, 2.0, 4, 8);
        let cut = FennelEdgeCut::default().partition(&g, 1);
        assert_eq!(cut.replication_factor(), 1.0);
    }
}

//! Graph partitioning for the Imitator reproduction.
//!
//! The paper evaluates both partitioning families (§2.1):
//!
//! * **p-way edge-cut** — vertices are assigned to machines; the master of a
//!   vertex is co-located with *all* of its edges, and a vertex is replicated
//!   onto every machine that consumes its value (Cyclops). Implemented by
//!   [`HashEdgeCut`] (the default random placement) and [`FennelEdgeCut`]
//!   (the streaming heuristic of §6.6).
//! * **p-way vertex-cut** — edges are assigned to machines; a vertex is
//!   replicated onto every machine holding one of its edges (PowerLyra).
//!   Implemented by [`RandomVertexCut`], [`GridVertexCut`] and
//!   [`HybridVertexCut`] (§6.10 / Fig. 14).
//!
//! Partitioners produce placement tables ([`EdgeCut`] / [`VertexCut`]) that
//! record master ownership and the full replica-location sets — the raw
//! material for the paper's replication-factor analysis (Figs. 3, 10, 14) and
//! for the engines' local-graph construction.
//!
//! Parts are plain `usize` indices `0..num_parts`; the cluster crate maps
//! them onto simulated machines.
//!
//! # Examples
//!
//! ```
//! use imitator_graph::gen;
//! use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
//!
//! let g = gen::power_law(1_000, 2.0, 8, 1);
//! let cut = HashEdgeCut.partition(&g, 4);
//! assert!(cut.replication_factor() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edge_cut;
mod fennel;
mod vertex_cut;

pub use edge_cut::{EdgeCut, EdgeCutPartitioner, HashEdgeCut};
pub use fennel::FennelEdgeCut;
pub use vertex_cut::{
    GridVertexCut, HybridVertexCut, RandomVertexCut, VertexCut, VertexCutPartitioner,
};

/// Deterministic 64-bit mix used by all hash-based placements.
///
/// (SplitMix64 finalizer — stable across runs and platforms, unlike
/// `DefaultHasher`.)
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

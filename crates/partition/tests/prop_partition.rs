//! Property-based invariants for all partitioners.
//!
//! These hold for *any* graph and part count:
//! * every vertex (edge-cut) / edge (vertex-cut) is assigned exactly once;
//! * replica lists are sorted, duplicate-free and never contain the master;
//! * a replica exists exactly where the placement semantics require one;
//! * replication factor ≥ 1 whenever the graph is non-empty.

use proptest::prelude::*;

use imitator_graph::{gen, Graph};
use imitator_partition::{
    EdgeCut, EdgeCutPartitioner, FennelEdgeCut, GridVertexCut, HashEdgeCut, HybridVertexCut,
    RandomVertexCut, VertexCut, VertexCutPartitioner,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..60,
        proptest::collection::vec((0u32..60, 0u32..60), 0..200),
    )
        .prop_map(|(n, pairs)| {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            gen::from_pairs(n, &pairs)
        })
}

fn check_edge_cut(g: &Graph, cut: &EdgeCut, parts: usize) {
    assert_eq!(cut.num_vertices(), g.num_vertices());
    assert_eq!(cut.part_sizes().iter().sum::<usize>(), g.num_vertices());
    for v in g.vertices() {
        assert!(cut.owner(v) < parts);
        let reps = cut.replica_parts(v);
        assert!(
            reps.windows(2).all(|w| w[0] < w[1]),
            "unsorted/dup replicas"
        );
        assert!(!reps.contains(&(cut.owner(v) as u32)));
    }
    // Replica of src exists wherever a consumer (dst master) lives remotely.
    for e in g.edges() {
        let consumer = cut.owner(e.dst) as u32;
        if consumer as usize != cut.owner(e.src) {
            assert!(
                cut.replica_parts(e.src).contains(&consumer),
                "missing replica of {} on consumer part {}",
                e.src,
                consumer
            );
        }
    }
    if g.num_vertices() > 0 {
        assert!(cut.replication_factor() >= 1.0);
    }
}

fn check_vertex_cut(g: &Graph, cut: &VertexCut, parts: usize) {
    assert_eq!(cut.num_vertices(), g.num_vertices());
    assert_eq!(cut.edge_owner().len(), g.num_edges());
    assert_eq!(cut.edge_part_sizes().iter().sum::<usize>(), g.num_edges());
    for v in g.vertices() {
        assert!(cut.master(v) < parts);
        let reps = cut.replica_parts(v);
        assert!(reps.windows(2).all(|w| w[0] < w[1]));
        assert!(!reps.contains(&(cut.master(v) as u32)));
    }
    // A vertex is present wherever one of its edges lives.
    for (e, &p) in g.edges().iter().zip(cut.edge_owner()) {
        for v in [e.src, e.dst] {
            let present = cut.master(v) == p as usize || cut.replica_parts(v).contains(&p);
            assert!(present, "vertex {v} missing from edge part {p}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_edge_cut_invariants((g, parts) in (arb_graph(), 1usize..9)) {
        let cut = HashEdgeCut.partition(&g, parts);
        check_edge_cut(&g, &cut, parts);
    }

    #[test]
    fn fennel_edge_cut_invariants((g, parts) in (arb_graph(), 1usize..9)) {
        let cut = FennelEdgeCut::default().partition(&g, parts);
        check_edge_cut(&g, &cut, parts);
    }

    #[test]
    fn random_vertex_cut_invariants((g, parts) in (arb_graph(), 1usize..9)) {
        let cut = RandomVertexCut.partition(&g, parts);
        check_vertex_cut(&g, &cut, parts);
    }

    #[test]
    fn grid_vertex_cut_invariants((g, parts) in (arb_graph(), 1usize..9)) {
        let cut = GridVertexCut.partition(&g, parts);
        check_vertex_cut(&g, &cut, parts);
    }

    #[test]
    fn hybrid_vertex_cut_invariants((g, parts, theta) in (arb_graph(), 1usize..9, 0usize..20)) {
        let cut = HybridVertexCut::with_threshold(theta).partition(&g, parts);
        check_vertex_cut(&g, &cut, parts);
    }

    #[test]
    fn partitioning_is_deterministic((g, parts) in (arb_graph(), 1usize..9)) {
        prop_assert_eq!(
            HashEdgeCut.partition(&g, parts),
            HashEdgeCut.partition(&g, parts)
        );
        prop_assert_eq!(
            HybridVertexCut::default().partition(&g, parts),
            HybridVertexCut::default().partition(&g, parts)
        );
    }
}

//! Ablation: failure-detection delay vs end-to-end failure-to-resume time.
//!
//! The paper detects failures by heartbeat with a conservative 500 ms
//! interval and notes (§6.9) that detection dominates its ~7 s
//! failure-to-recovery span. This ablation sweeps the detection delay and
//! separates "waiting to notice" from "actually recovering".

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, crash, ms, ramfs, run_ec, BenchOpts, Workload};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "abl_detection_delay",
        "detection delay vs recovery cost",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::LJournal);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    println!(
        "{:<12} {:>12} {:>14}",
        "delay(ms)", "recover(ms)", "run total(s)"
    );
    for delay_ms in [0u64, 50, 200, 500] {
        let s = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                },
                detection_delay: Duration::from_millis(delay_ms),
                ..RunConfig::default()
            },
            vec![crash(1, 6)],
            ramfs(),
        );
        println!(
            "{:<12} {:>12} {:>14.3}",
            delay_ms,
            ms(s.recovery_total()),
            s.elapsed.as_secs_f64()
        );
    }
    println!("(the recovery protocol itself is delay-independent; the delay is pure\n waiting, exactly the paper's observation that detection dominates)");

    // Nested crashes (§5.3 cascading failures): a survivor dies *inside*
    // the recovery episode, aborting the in-flight attempt. The
    // per-episode phase timeline shows where the aborted attempt's time
    // went — the rounds it completed before the abort are paid again by
    // the retry, plus another detection delay to notice the second death.
    println!();
    println!("nested crash (node 2 dies in migration round 4 of node 1's recovery):");
    for delay_ms in [0u64, 200] {
        let plans = vec![
            crash(1, 6),
            FailurePlan {
                node: NodeId::from_index(2),
                iteration: 6,
                point: FailPoint::MigrationRound(4),
            },
        ];
        let s = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::Replication {
                    tolerance: 2,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                },
                detection_delay: Duration::from_millis(delay_ms),
                ..RunConfig::default()
            },
            plans,
            ramfs(),
        );
        for (i, ep) in s.recoveries.iter().enumerate() {
            println!(
                "  delay={delay_ms}ms episode {i} ({}): {} node(s) lost, \
                 {} attempt(s), {} aborted, total {}",
                ep.strategy,
                ep.failed_nodes,
                ep.counters.attempts,
                ep.counters.aborts,
                ms(ep.total()),
            );
            for (name, d) in ep.phases.iter() {
                println!("    {name:<24} {:>10.3} ms", d.as_secs_f64() * 1e3);
            }
        }
        let episodes = s.recoveries.len();
        let aborts: u32 = s.recoveries.iter().map(|ep| ep.counters.aborts).sum();
        assert!(
            aborts >= 1 || episodes >= 2,
            "the nested crash must abort an attempt or open a second episode"
        );
    }
    println!("(aborted rounds appear in the timeline before the retry re-runs them:\n the cost of a cascading failure is the wasted prefix plus re-detection)");
}

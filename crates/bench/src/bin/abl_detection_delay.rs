//! Ablation: failure-detection delay vs end-to-end failure-to-resume time.
//!
//! The paper detects failures by heartbeat with a conservative 500 ms
//! interval and notes (§6.9) that detection dominates its ~7 s
//! failure-to-recovery span. This ablation sweeps the detection delay and
//! separates "waiting to notice" from "actually recovering".

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, crash, ms, ramfs, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "abl_detection_delay",
        "detection delay vs recovery cost",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::LJournal);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    println!(
        "{:<12} {:>12} {:>14}",
        "delay(ms)", "recover(ms)", "run total(s)"
    );
    for delay_ms in [0u64, 50, 200, 500] {
        let s = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                },
                detection_delay: Duration::from_millis(delay_ms),
                ..RunConfig::default()
            },
            vec![crash(1, 6)],
            ramfs(),
        );
        println!(
            "{:<12} {:>12} {:>14.3}",
            delay_ms,
            ms(s.recovery_total()),
            s.elapsed.as_secs_f64()
        );
    }
    println!("(the recovery protocol itself is delay-independent; the delay is pure\n waiting, exactly the paper's observation that detection dominates)");
}

//! Ablation: failure-detection latency — configured vs *observed*.
//!
//! The paper detects failures by heartbeat with a conservative 500 ms
//! interval and notes (§6.9) that detection dominates its ~7 s
//! failure-to-recovery span. This ablation measures both halves of that
//! claim:
//!
//! 1. **Observed heartbeat latency** — runs with `--detector heartbeat`
//!    crash a node and read back how many detector ticks of silence passed
//!    before the cluster confirmed the death, per hb-interval × timeout
//!    point and per transport (in-process channels, seeded lossy links,
//!    loopback TCP). The p50 should track the configured timeout; the p99
//!    shows scheduler/wire noise on top.
//! 2. **Oracle delay sweep** — the legacy sweep that treats detection as a
//!    pure configured wait, separating "waiting to notice" from "actually
//!    recovering".

use imitator::{DetectorKind, FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, crash, ms, ramfs, run_ec, BenchOpts, Summary, Workload};
use imitator_cluster::{FailPoint, FailurePlan, NetFaults, NodeId, TransportKind, TICKS_PER_MS};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use std::time::Duration;

/// Detection-latency samples in milliseconds, one per confirmed death.
fn latency_samples(runs: &[Summary]) -> Vec<f64> {
    let mut out: Vec<f64> = runs
        .iter()
        .filter(|s| s.suspicion.confirmed > 0)
        .map(|s| {
            s.suspicion.detect_ticks as f64 / s.suspicion.confirmed as f64 / TICKS_PER_MS as f64
        })
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    out
}

/// One heartbeat sweep target: label, transport factory (seeded per rep),
/// and its (interval ms, timeout ms) points.
type SweepTarget = (
    &'static str,
    fn(u64) -> TransportKind,
    &'static [(u64, u64)],
);

/// Nearest-rank percentile of an ascending sample vector.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "abl_detection_delay",
        "observed heartbeat detection latency + oracle delay sweep",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::LJournal);
    let cut = HashEdgeCut.partition(&g, opts.nodes);

    // --- Observed heartbeat latency, per interval × timeout × transport ---
    //
    // Each sample is one seeded crash run under the heartbeat detector; the
    // recorded latency is the silence the detector actually measured before
    // confirming the death (suspicion.detect_ticks), not the configured
    // knob. Expect p50 ≈ timeout (+ up to one pump quantum of slack) and a
    // p99 that absorbs scheduler noise — and, on the lossy wire, dropped
    // heartbeats stretching the tail.
    println!("observed heartbeat detection latency (ms), per transport:");
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "transport", "interval(ms)", "timeout(ms)", "runs", "p50(ms)", "p99(ms)"
    );
    // Virtual-clock transports tick deterministically, so millisecond-scale
    // timeouts are honest. Loopback TCP runs on the wall clock with 25 ms
    // read-polling underneath — sub-10 ms timeouts there would manufacture
    // false suspicions out of socket jitter, so its points scale toward the
    // paper's conservative 500 ms regime instead.
    const VIRT_POINTS: [(u64, u64); 3] = [(1, 6), (2, 12), (5, 30)];
    const TCP_POINTS: [(u64, u64); 3] = [(10, 60), (25, 150), (50, 300)];
    let transports: [SweepTarget; 3] = [
        ("channel", |_| TransportKind::Channel, &VIRT_POINTS),
        (
            "lossy",
            |seed| TransportKind::Lossy(NetFaults::from_seed(seed)),
            &VIRT_POINTS,
        ),
        ("tcp", |_| TransportKind::Tcp, &TCP_POINTS),
    ];
    for (tname, make_transport, points) in transports {
        for &(interval_ms, timeout_ms) in points {
            let mut runs = Vec::new();
            for rep in 0..5u64 {
                let s = run_ec(
                    Workload::PageRank,
                    &g,
                    &cut,
                    RunConfig {
                        num_nodes: opts.nodes,
                        ft: FtMode::Replication {
                            tolerance: 1,
                            selfish_opt: true,
                            recovery: RecoveryStrategy::Migration,
                        },
                        detector: DetectorKind::Heartbeat,
                        hb_interval: Duration::from_millis(interval_ms),
                        hb_timeout: Duration::from_millis(timeout_ms),
                        transport: make_transport(opts.seed.wrapping_add(rep)),
                        ..RunConfig::default()
                    },
                    vec![crash(1, 4 + (rep % 3))],
                    ramfs(),
                );
                assert_eq!(s.recoveries.len(), 1, "the crash must trigger one episode");
                assert!(
                    s.suspicion.confirmed >= 1,
                    "heartbeat runs must confirm the death through suspicion, got {:?}",
                    s.suspicion
                );
                runs.push(s);
            }
            let samples = latency_samples(&runs);
            println!(
                "{:<10} {:>12} {:>12} {:>8} {:>10.1} {:>10.1}",
                tname,
                interval_ms,
                timeout_ms,
                samples.len(),
                percentile(&samples, 50.0),
                percentile(&samples, 99.0),
            );
        }
    }
    println!("(latency is detector-observed silence before confirmation — ticks the\n cluster actually counted, not the configured knob echoed back)");

    // --- Oracle delay sweep: detection as a pure configured wait ---
    println!();
    println!("oracle sweep (configured delay, Migration recovery):");
    println!(
        "{:<12} {:>12} {:>14}",
        "delay(ms)", "recover(ms)", "run total(s)"
    );
    for delay_ms in [0u64, 50, 200, 500] {
        let s = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                },
                detection_delay: Duration::from_millis(delay_ms),
                ..RunConfig::default()
            },
            vec![crash(1, 6)],
            ramfs(),
        );
        println!(
            "{:<12} {:>12} {:>14.3}",
            delay_ms,
            ms(s.recovery_total()),
            s.elapsed.as_secs_f64()
        );
    }
    println!("(the recovery protocol itself is delay-independent; the delay is pure\n waiting, exactly the paper's observation that detection dominates)");

    // Nested crashes (§5.3 cascading failures): a survivor dies *inside*
    // the recovery episode, aborting the in-flight attempt. The
    // per-episode phase timeline shows where the aborted attempt's time
    // went — the rounds it completed before the abort are paid again by
    // the retry, plus another detection delay to notice the second death.
    println!();
    println!("nested crash (node 2 dies in migration round 4 of node 1's recovery):");
    for delay_ms in [0u64, 200] {
        let plans = vec![
            crash(1, 6),
            FailurePlan {
                node: NodeId::from_index(2),
                iteration: 6,
                point: FailPoint::MigrationRound(4),
            },
        ];
        let s = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::Replication {
                    tolerance: 2,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                },
                detection_delay: Duration::from_millis(delay_ms),
                ..RunConfig::default()
            },
            plans,
            ramfs(),
        );
        for (i, ep) in s.recoveries.iter().enumerate() {
            println!(
                "  delay={delay_ms}ms episode {i} ({}): {} node(s) lost, \
                 {} attempt(s), {} aborted, total {}",
                ep.strategy,
                ep.failed_nodes,
                ep.counters.attempts,
                ep.counters.aborts,
                ms(ep.total()),
            );
            for (name, d) in ep.phases.iter() {
                println!("    {name:<24} {:>10.3} ms", d.as_secs_f64() * 1e3);
            }
        }
        let episodes = s.recoveries.len();
        let aborts: u32 = s.recoveries.iter().map(|ep| ep.counters.aborts).sum();
        assert!(
            aborts >= 1 || episodes >= 2,
            "the nested crash must abort an attempt or open a second episode"
        );
    }
    println!("(aborted rounds appear in the timeline before the retry re-runs them:\n the cost of a cascading failure is the wasted prefix plus re-detection)");
}

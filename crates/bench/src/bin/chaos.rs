//! `chaos`: deterministic cascading-failure torture harness.
//!
//! Sweeps seeded failure schedules across every fail-point class the
//! injector knows — each Migration round, the Rebirth reload /
//! reconstruction / replay phases (survivor and reborn-newbie deaths),
//! torn checkpoint writes, checkpoint-fallback rounds, simultaneous
//! multi-machine losses and staggered double failures *during* recovery —
//! and asserts that every run converges **bit-identically** to a
//! failure-free golden run of the same scenario.
//!
//! Schedules are derived purely from `(IMITATOR_SEED, index)`, so any
//! reported schedule reproduces with one command:
//!
//! ```text
//! IMITATOR_CHAOS_ONLY=<index> cargo run --release -p imitator-bench --bin chaos
//! ```
//!
//! Environment:
//!
//! * `IMITATOR_CHAOS_SCHEDULES` — schedule count (default 200);
//! * `IMITATOR_CHAOS_ONLY` — run a single schedule index (repro mode);
//! * `IMITATOR_CHAOS_LOG` — also write the schedule log to this file;
//! * `IMITATOR_CHAOS_LOSSY` — when set (`1`), run every schedule over the
//!   seeded-lossy transport ([`TransportKind::Lossy`]): per-link
//!   drop/duplicate/reorder/delay faults layered *under* the crash
//!   schedule, derived from the same `(IMITATOR_SEED, index)` pair;
//! * `IMITATOR_CHAOS_DETECTOR` — `heartbeat` runs every faulty schedule
//!   under the heartbeat/suspicion failure detector instead of the
//!   injector oracle (golden runs stay on the oracle — the shard checks
//!   that *inferred* deaths converge to the same fixpoint as announced
//!   ones, and that every recovered schedule confirmed its deaths through
//!   real suspicion);
//! * `IMITATOR_SEED` — base seed (default 42).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use imitator::{
    run_edge_cut, run_vertex_cut, DetectorKind, FtMode, RecoveryStrategy, RunConfig, RunReport,
};
use imitator_cluster::{FailPoint, FailurePlan, NetFaults, NodeId, TransportKind};
use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::{gen, Graph, Vid};
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner};
use imitator_storage::{Dfs, DfsConfig};

/// Min-label propagation: integer-exact, activation-driven — any divergence
/// between a recovered and a clean run shows up as a hard value mismatch.
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

/// SplitMix64 — a tiny, high-quality deterministic stream per schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The fail-point class a schedule exercises. The sweep cycles through all
/// of them so every class is hit many times over a 200-schedule run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Survivor crashes at the start of the given Migration round.
    MigrationRound(u8),
    /// Survivor crashes right after the standby-dispatch decision.
    SurvivorReload,
    /// The reborn node crashes after receiving its first batch.
    NewbieReload,
    /// The reborn node crashes while reconstructing its graph.
    NewbieReconstruct,
    /// The reborn node crashes while replaying activation state.
    NewbieReplay,
    /// A node dies mid-snapshot-write, leaving a torn epoch behind.
    CkptTorn,
    /// Survivor crashes during checkpoint recovery (post-decision reload).
    CkptCascade,
    /// Survivor crashes in the given checkpoint-fallback round (pool empty).
    CkptFallbackRound(u8),
    /// Two machines die at once during normal execution.
    Simultaneous,
    /// Two *staggered* crashes inside one recovery episode: the retry
    /// triggered by the first mid-recovery death is itself aborted.
    DoubleCascade,
}

fn classes() -> Vec<Class> {
    let mut v: Vec<Class> = (1..=8).map(Class::MigrationRound).collect();
    v.extend([
        Class::SurvivorReload,
        Class::NewbieReload,
        Class::NewbieReconstruct,
        Class::NewbieReplay,
        Class::CkptTorn,
        Class::CkptCascade,
    ]);
    v.extend((1..=3).map(Class::CkptFallbackRound));
    v.extend([Class::Simultaneous, Class::DoubleCascade]);
    v
}

/// One fully-determined torture scenario.
struct Schedule {
    index: usize,
    class: Class,
    graph: Graph,
    nodes: usize,
    edge_cut: bool,
    threads: usize,
    ft: FtMode,
    standbys: usize,
    plans: Vec<FailurePlan>,
    desc: String,
}

fn crash(node: usize, iteration: u64, point: FailPoint) -> FailurePlan {
    FailurePlan {
        node: NodeId::from_index(node),
        iteration,
        point,
    }
}

fn repl(tolerance: usize, recovery: RecoveryStrategy) -> FtMode {
    FtMode::Replication {
        tolerance,
        selfish_opt: false,
        recovery,
    }
}

/// Builds schedule `index` from `(base_seed, index)` alone.
fn build(index: usize, base_seed: u64, class: Class) -> Schedule {
    let mut rng = Rng(base_seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    let nodes = if class == Class::DoubleCascade {
        5
    } else {
        4 + rng.below(2) as usize
    };
    let n = 60 + rng.below(120) as usize;
    let m = 150 + rng.below(300) as usize;
    let pairs: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
        .collect();
    let graph = gen::from_pairs(n, &pairs);
    let edge_cut = rng.below(2) == 0;
    let threads = 1 + rng.below(4) as usize;

    // Primary crash: early and pre-barrier-biased so the episode (and the
    // nested plan keyed to its resume iteration) actually fires.
    let victim = rng.below(nodes as u64) as usize;
    let iter = 1 + rng.below(2);
    let before = rng.below(10) < 7;
    let resume = if before { iter } else { iter + 1 };
    let primary = crash(
        victim,
        iter,
        if before {
            FailPoint::BeforeBarrier
        } else {
            FailPoint::AfterBarrier
        },
    );
    let survivor = |rng: &mut Rng, not: &[usize]| loop {
        let s = rng.below(nodes as u64) as usize;
        if !not.contains(&s) {
            return s;
        }
    };

    let (ft, standbys, plans) = match class {
        Class::MigrationRound(r) => {
            let s = survivor(&mut rng, &[victim]);
            (
                repl(2, RecoveryStrategy::Migration),
                0,
                vec![primary, crash(s, resume, FailPoint::MigrationRound(r))],
            )
        }
        Class::SurvivorReload => {
            let s = survivor(&mut rng, &[victim]);
            // 1 standby forces mid-episode degradation to migration; more
            // keep the retry on the standby path — both must converge.
            let standbys = 1 + rng.below(3) as usize;
            (
                repl(2, RecoveryStrategy::Rebirth),
                standbys,
                vec![primary, crash(s, resume, FailPoint::RebirthReload)],
            )
        }
        Class::NewbieReload | Class::NewbieReconstruct | Class::NewbieReplay => {
            let point = match class {
                Class::NewbieReload => FailPoint::RebirthReload,
                Class::NewbieReconstruct => FailPoint::RebirthReconstruct,
                _ => FailPoint::RebirthReplay,
            };
            (
                repl(2, RecoveryStrategy::Rebirth),
                2 + rng.below(2) as usize,
                vec![primary, crash(victim, resume, point)],
            )
        }
        Class::CkptTorn => {
            // interval 2 ⇒ snapshot writes happen at odd iterations.
            let torn_iter = 1 + 2 * rng.below(2);
            (
                FtMode::Checkpoint {
                    interval: 2,
                    incremental: rng.below(2) == 0,
                },
                rng.below(2) as usize,
                vec![crash(victim, torn_iter, FailPoint::CkptWrite)],
            )
        }
        Class::CkptCascade => {
            let s = survivor(&mut rng, &[victim]);
            (
                FtMode::Checkpoint {
                    interval: 2,
                    incremental: rng.below(2) == 0,
                },
                2 + rng.below(2) as usize,
                vec![primary, crash(s, resume, FailPoint::RebirthReload)],
            )
        }
        Class::CkptFallbackRound(r) => {
            let s = survivor(&mut rng, &[victim]);
            (
                FtMode::Checkpoint {
                    interval: 2,
                    incremental: rng.below(2) == 0,
                },
                0,
                vec![primary, crash(s, resume, FailPoint::MigrationRound(r))],
            )
        }
        Class::Simultaneous => {
            let s = survivor(&mut rng, &[victim]);
            let strategy = if rng.below(2) == 0 {
                RecoveryStrategy::Migration
            } else {
                RecoveryStrategy::Rebirth
            };
            let standbys = if strategy == RecoveryStrategy::Rebirth {
                2
            } else {
                0
            };
            (
                repl(2, strategy),
                standbys,
                vec![primary, crash(s, iter, FailPoint::BeforeBarrier)],
            )
        }
        Class::DoubleCascade => {
            let s1 = survivor(&mut rng, &[victim]);
            let s2 = survivor(&mut rng, &[victim, s1]);
            let r1 = 1 + rng.below(8) as u8;
            let r2 = 1 + rng.below(8) as u8;
            (
                repl(3, RecoveryStrategy::Migration),
                0,
                vec![
                    primary,
                    crash(s1, resume, FailPoint::MigrationRound(r1)),
                    crash(s2, resume, FailPoint::MigrationRound(r2)),
                ],
            )
        }
    };

    let mut desc = String::new();
    let _ = write!(
        desc,
        "{class:?} nodes={nodes} n={n} m={m} {} thr={threads} standbys={standbys} plans=[",
        if edge_cut { "ec" } else { "vc" },
    );
    for (i, p) in plans.iter().enumerate() {
        let _ = write!(
            desc,
            "{}{}@{}:{:?}",
            if i > 0 { " " } else { "" },
            p.node.raw(),
            p.iteration,
            p.point
        );
    }
    desc.push(']');
    Schedule {
        index,
        class,
        graph,
        nodes,
        edge_cut,
        threads,
        ft,
        standbys,
        plans,
        desc,
    }
}

fn config(
    s: &Schedule,
    ft: FtMode,
    standbys: usize,
    threads: usize,
    transport: TransportKind,
    detector: DetectorKind,
) -> RunConfig {
    RunConfig {
        num_nodes: s.nodes,
        max_iters: 30,
        threads_per_node: threads,
        ft,
        standbys,
        transport,
        detector,
        // Virtual-clock transports tick deterministically, so a tight
        // suspicion window keeps the sweep fast without false fencing.
        hb_interval: Duration::from_millis(1),
        hb_timeout: Duration::from_millis(6),
        ..RunConfig::default()
    }
}

fn execute(
    s: &Schedule,
    ft: FtMode,
    standbys: usize,
    threads: usize,
    transport: TransportKind,
    detector: DetectorKind,
    plans: Vec<FailurePlan>,
) -> RunReport<u32> {
    if s.edge_cut {
        let cut = HashEdgeCut.partition(&s.graph, s.nodes);
        run_edge_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(s, ft, standbys, threads, transport, detector),
            plans,
            Dfs::new(DfsConfig::instant()),
        )
    } else {
        let cut = RandomVertexCut.partition(&s.graph, s.nodes);
        run_vertex_cut(
            &s.graph,
            &cut,
            Arc::new(MinLabel),
            config(s, ft, standbys, threads, transport, detector),
            plans,
            Dfs::new(DfsConfig::instant()),
        )
    }
}

fn main() {
    let env = |k: &str| std::env::var(k).ok();
    let base_seed: u64 = env("IMITATOR_SEED")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let total: usize = env("IMITATOR_CHAOS_SCHEDULES")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let only: Option<usize> = env("IMITATOR_CHAOS_ONLY").and_then(|v| v.parse().ok());
    let lossy = env("IMITATOR_CHAOS_LOSSY").is_some_and(|v| v != "0");
    let detector = match env("IMITATOR_CHAOS_DETECTOR").as_deref() {
        Some("heartbeat") | Some("hb") => DetectorKind::Heartbeat,
        _ => DetectorKind::Oracle,
    };

    let classes = classes();
    let indices: Vec<usize> = match only {
        Some(i) => vec![i],
        None => (0..total).collect(),
    };
    println!(
        "== chaos: {} seeded schedule(s), base seed {base_seed}, {} fail-point classes{}{}",
        indices.len(),
        classes.len(),
        if lossy { ", lossy transport" } else { "" },
        if detector == DetectorKind::Heartbeat {
            ", heartbeat detector"
        } else {
            ""
        }
    );

    let mut log = String::new();
    let mut failures = 0usize;
    let mut exercised: Vec<(Class, usize)> = classes.iter().map(|&c| (c, 0)).collect();
    let mut total_retries = 0u64;
    let mut total_redelivered = 0u64;
    let mut total_confirmed = 0u64;
    let mut total_detect_ticks = 0u64;

    for &i in &indices {
        let class = classes[i % classes.len()];
        let s = build(i, base_seed, class);
        // The golden run is failure-free AND single-threaded: one run
        // checks crash-equivalence and thread-invariance at once.
        let golden = execute(
            &s,
            FtMode::None,
            0,
            1,
            TransportKind::Channel,
            DetectorKind::Oracle,
            vec![],
        );
        let transport = if lossy {
            TransportKind::Lossy(NetFaults::from_seed(
                base_seed ^ (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            ))
        } else {
            TransportKind::Channel
        };
        let faulty = execute(
            &s,
            s.ft,
            s.standbys,
            s.threads,
            transport,
            detector,
            s.plans.clone(),
        );
        total_retries += faulty.fabric.retries;
        total_redelivered += faulty.fabric.redelivered;
        total_confirmed += faulty.suspicion.confirmed;
        total_detect_ticks += faulty.suspicion.detect_ticks;
        if detector == DetectorKind::Heartbeat && !faulty.recoveries.is_empty() {
            // Under the heartbeat detector nobody announces deaths: every
            // recovered schedule must have *inferred* them via suspicion.
            assert!(
                faulty.suspicion.confirmed > 0,
                "#{:04}: heartbeat run recovered {} episode(s) without a \
                 confirmed suspicion: {:?}",
                s.index,
                faulty.recoveries.len(),
                faulty.suspicion
            );
        }

        let episodes = faulty.recoveries.len();
        let attempts: u32 = faulty.recoveries.iter().map(|r| r.counters.attempts).sum();
        let aborts: u32 = faulty.recoveries.iter().map(|r| r.counters.aborts).sum();
        let strategies: Vec<&str> = faulty.recoveries.iter().map(|r| r.strategy).collect();
        if episodes > 0 {
            let slot = exercised.iter_mut().find(|(c, _)| *c == s.class);
            slot.expect("schedule class is in the class list").1 += 1;
        }

        let ok = faulty.values == golden.values;
        let mut line = format!(
            "#{:04} {} -> {} iters={} episodes={episodes} attempts={attempts} aborts={aborts} strategies={strategies:?}",
            s.index,
            s.desc,
            if ok { "OK" } else { "VALUE-MISMATCH" },
            faulty.iterations,
        );
        for ep in &faulty.recoveries {
            assert_eq!(
                ep.counters.attempts,
                ep.counters.aborts + 1,
                "#{:04}: a finished episode takes exactly aborts+1 attempts",
                s.index
            );
            // Every episode must carry its fine-grained phase breakdown,
            // and the migration rounds it records must appear in protocol
            // order (PhaseTimes keeps insertion order, so an out-of-order
            // round means the protocol itself ran rounds out of order).
            assert!(
                ep.phases.iter().count() > 0,
                "#{:04}: episode ({}) recorded no phase timers",
                s.index,
                ep.strategy
            );
            let rounds: Vec<u32> = ep
                .phases
                .iter()
                .filter_map(|(n, _)| n.strip_prefix("migration_round")?.parse().ok())
                .collect();
            assert!(
                rounds.windows(2).all(|w| w[0] < w[1]),
                "#{:04}: migration rounds recorded out of order: {rounds:?}",
                s.index
            );
        }
        if !ok {
            failures += 1;
            let _ = write!(
                line,
                "\n      repro: IMITATOR_SEED={base_seed}{} IMITATOR_CHAOS_ONLY={} cargo run --release -p imitator-bench --bin chaos",
                if lossy { " IMITATOR_CHAOS_LOSSY=1" } else { "" },
                s.index
            );
            println!("{line}");
        } else if only.is_some() {
            println!("{line}");
        }
        log.push_str(&line);
        log.push('\n');
    }

    println!("-- coverage (schedules where a recovery episode actually ran):");
    for (c, n) in &exercised {
        println!("   {c:?}: {n}");
    }
    if let Some(path) = env("IMITATOR_CHAOS_LOG") {
        std::fs::write(&path, &log).expect("write chaos schedule log");
        println!("-- schedule log written to {path}");
    }

    // Full sweeps must exercise every class at least once; a repro run of a
    // single index legitimately covers just one.
    if only.is_none() && indices.len() >= classes.len() * 4 {
        for (c, n) in &exercised {
            assert!(*n > 0, "fail-point class {c:?} was never exercised");
        }
    }
    if detector == DetectorKind::Heartbeat {
        println!(
            "-- heartbeat detector: {total_confirmed} death(s) confirmed by \
             suspicion, {total_detect_ticks} detect tick(s) total"
        );
        // A heartbeat sweep whose detector never fired validated nothing.
        assert!(
            only.is_some() || total_confirmed > 0,
            "heartbeat sweep confirmed no deaths through suspicion"
        );
    }
    if lossy {
        println!(
            "-- lossy transport: {total_retries} fence retransmission(s), \
             {total_redelivered} duplicate(s) suppressed"
        );
        // A sweep whose link faults never fired validated nothing.
        assert!(
            only.is_some() || total_retries + total_redelivered > 0,
            "lossy sweep produced no retransmissions or redeliveries"
        );
    }
    assert_eq!(
        failures, 0,
        "{failures} schedule(s) diverged from the failure-free golden run"
    );
    println!(
        "== chaos: all {} schedule(s) bit-identical to their golden runs",
        indices.len()
    );
}

//! Fig. 10: the Fennel streaming partitioner vs hash placement:
//! (a) replication factor, (b) Imitator's runtime overhead under Fennel.
//!
//! Paper shape: Fennel cuts the replication factor sharply (1.6-5.1 vs
//! hash); fewer free replicas mean slightly more FT overhead (1.8-4.7%),
//! still small.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, ramfs, reps, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, FennelEdgeCut, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig10",
        "Fennel vs hash: replication factor and FT overhead",
        &opts,
    );
    println!(
        "{:<10} {:>8} {:>9} {:>12} {:>12}",
        "dataset", "rf hash", "rf fennel", "ovh hash", "ovh fennel"
    );
    for d in [Dataset::GWeb, Dataset::LJournal, Dataset::Wiki] {
        let g = opts.cyclops_graph(d);
        let cuts = [
            HashEdgeCut.partition(&g, opts.nodes),
            FennelEdgeCut::default().partition(&g, opts.nodes),
        ];
        let mut ovh = [0.0f64; 2];
        for (i, cut) in cuts.iter().enumerate() {
            let cfg = |ft| RunConfig {
                num_nodes: opts.nodes,
                ft,
                ..RunConfig::default()
            };
            let n = reps();
            let base = best_of(n, || {
                run_ec(
                    Workload::PageRank,
                    &g,
                    cut,
                    cfg(FtMode::None),
                    vec![],
                    ramfs(),
                )
            });
            let rep = best_of(n, || {
                run_ec(
                    Workload::PageRank,
                    &g,
                    cut,
                    cfg(FtMode::Replication {
                        tolerance: 1,
                        selfish_opt: true,
                        recovery: RecoveryStrategy::Rebirth,
                    }),
                    vec![],
                    ramfs(),
                )
            });
            ovh[i] = rep.overhead_vs(&base);
        }
        println!(
            "{:<10} {:>8.2} {:>9.2} {:>11.1}% {:>11.1}%",
            d.name(),
            cuts[0].replication_factor(),
            cuts[1].replication_factor(),
            ovh[0],
            ovh[1]
        );
    }
}

//! Fig. 7: normal-execution runtime of replication-based (REP) and
//! checkpoint-based (CKPT, interval 1) fault tolerance, normalised to the
//! baseline without fault tolerance (Cyclops, edge-cut).
//!
//! Paper shape: REP ≤ ~4% overhead everywhere; CKPT 65%-449%.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, hdfs, ramfs, reps, run_ec, secs, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig07",
        "runtime overhead: BASE vs REP vs CKPT (Cyclops)",
        &opts,
    );
    println!(
        "{:<10} {:<9} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "algorithm", "dataset", "BASE(s)", "REP(s)", "REP ovh", "CKPT(s)", "CKPT ovh"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let w = Workload::for_dataset(d, &g);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        let cfg = |ft| RunConfig {
            num_nodes: opts.nodes,
            ft,
            ..RunConfig::default()
        };
        let n = reps();
        let base = best_of(n, || {
            run_ec(w, &g, &cut, cfg(FtMode::None), vec![], ramfs())
        });
        let rep = best_of(n, || {
            run_ec(
                w,
                &g,
                &cut,
                cfg(FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Rebirth,
                }),
                vec![],
                ramfs(),
            )
        });
        let ckpt = best_of(n, || {
            run_ec(
                w,
                &g,
                &cut,
                cfg(FtMode::Checkpoint {
                    interval: 1,
                    incremental: false,
                }),
                vec![],
                hdfs(),
            )
        });
        println!(
            "{:<10} {:<9} {:>9} {:>9} {:>7.1}% {:>9} {:>7.0}%",
            w.name(),
            d.name(),
            secs(base.elapsed),
            secs(rep.elapsed),
            rep.overhead_vs(&base),
            secs(ckpt.elapsed),
            ckpt.overhead_vs(&base)
        );
    }
}

//! Fig. 15: tolerating 1, 2 or 3 simultaneous failures on the vertex-cut
//! engine (PageRank, Twitter stand-in): (a) normal-execution overhead,
//! (b) recovery time of Rebirth and Migration.
//!
//! Paper shape: overhead ≤ 4.7% at K=3; Rebirth's recovery stays nearly
//! flat with the crash count (newbies reload edge-ckpt files in parallel)
//! while Migration's grows.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, crash, hdfs, ms, ramfs, reps, run_vc, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{HybridVertexCut, VertexCutPartitioner};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig15",
        "vertex-cut multiple failures (PageRank, Twitter)",
        &opts,
    );
    let g = opts.powerlyra_graph(Dataset::Twitter);
    let cut = HybridVertexCut::default().partition(&g, opts.nodes);
    let base = best_of(reps(), || {
        run_vc(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::None,
                ..RunConfig::default()
            },
            vec![],
            ramfs(),
        )
    });
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "K", "overhead", "REB(ms)", "MIG(ms)"
    );
    for k in 1usize..=3 {
        let ft = |recovery| FtMode::Replication {
            tolerance: k,
            selfish_opt: true,
            recovery,
        };
        let normal = best_of(reps(), || {
            run_vc(
                Workload::PageRank,
                &g,
                &cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    ft: ft(RecoveryStrategy::Migration),
                    ..RunConfig::default()
                },
                vec![],
                ramfs(),
            )
        });
        let failures: Vec<_> = (0..k).map(|i| crash(i + 1, 6)).collect();
        let reb = run_vc(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: ft(RecoveryStrategy::Rebirth),
                standbys: k,
                ..RunConfig::default()
            },
            failures.clone(),
            hdfs(),
        );
        let mig = run_vc(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: ft(RecoveryStrategy::Migration),
                ..RunConfig::default()
            },
            failures,
            hdfs(),
        );
        println!(
            "{:<6} {:>9.1}% {:>12} {:>12}",
            k,
            normal.overhead_vs(&base),
            ms(reb.recovery_total()),
            ms(mig.recovery_total())
        );
    }
}

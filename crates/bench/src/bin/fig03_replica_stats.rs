//! Fig. 3: (a) the fraction of vertices without replicas under the default
//! hash partitioning, split into selfish and normal vertices; (b) the
//! fraction of extra FT replicas needed once selfish vertices are excused.
//!
//! Paper shape: only GWeb and LJournal exceed 10% vertices without
//! replicas, almost all of them selfish; extra replicas stay under ~0.15%.

use imitator::plan::{compute_ft_plan, extra_replica_fraction};
use imitator_bench::{banner, BenchOpts};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig03",
        "vertices without replicas & extra FT replicas",
        &opts,
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12}",
        "dataset", "w/o-replica", "selfish", "normal", "extra-FT(b)"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        let stats = g.stats();
        let wo = cut.fraction_without_replicas();
        let selfish = stats.selfish_fraction().min(wo);
        let plan = compute_ft_plan(&g, &cut, 1, true, true, opts.seed);
        let extra_nonselfish = extra_replica_fraction(&plan);
        println!(
            "{:<10} {:>11.2}% {:>9.2}% {:>9.2}% {:>11.3}%",
            d.name(),
            100.0 * wo,
            100.0 * selfish,
            100.0 * (wo - selfish),
            100.0 * extra_nonselfish
        );
    }
}

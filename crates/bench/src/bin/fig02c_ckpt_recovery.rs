//! Fig. 2(c): checkpoint recovery breakdown (reload / reconstruct / replay)
//! for PageRank/LJournal, vs the average iteration time, at snapshot
//! intervals 1, 2, 4.
//!
//! Paper shape: recovery costs many iterations; wider intervals shift cost
//! into replay (more lost iterations re-executed).

use imitator::{FtMode, RunConfig};
use imitator_bench::{banner, crash, hdfs, ms, ramfs, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig02c",
        "CKPT recovery breakdown vs interval (PageRank, LJournal)",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::LJournal);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    let base = run_ec(
        Workload::PageRank,
        &g,
        &cut,
        RunConfig {
            num_nodes: opts.nodes,
            ft: FtMode::None,
            ..RunConfig::default()
        },
        vec![],
        ramfs(),
    );
    println!("average iteration: {} ms", ms(base.avg_iter));
    println!(
        "{:<10} {:>11} {:>15} {:>11} {:>11}",
        "config", "reload(ms)", "reconstruct(ms)", "replay(ms)", "total(ms)"
    );
    for interval in [1u64, 2, 4] {
        // Fail in the middle of an interval (iteration 10 of 20 with the
        // last snapshot at the nearest multiple below).
        let ck = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::Checkpoint {
                    interval,
                    incremental: false,
                },
                standbys: 1,
                ..RunConfig::default()
            },
            vec![crash(1, 10)],
            hdfs(),
        );
        let r = &ck.recoveries[0];
        println!(
            "{:<10} {:>11} {:>15} {:>11} {:>11}",
            format!("CKPT/{interval}"),
            ms(r.reload),
            ms(r.reconstruct),
            ms(r.replay),
            ms(r.total())
        );
    }
}

//! Ablation: the §4.2 greedy balanced mirror placement vs a naive
//! first-replica policy — how evenly mirrors (the units of recovery work)
//! spread across machines.
//!
//! Recovery parallelism is bounded by the busiest node's mirror count
//! (§6.5), so the max/mean ratio is the figure of merit: 1.0 is perfectly
//! parallel recovery, higher means one machine serialises it.

use imitator::plan::compute_ft_plan;
use imitator_bench::{banner, BenchOpts};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "abl_mirror_placement",
        "greedy balanced vs first-replica mirror choice",
        &opts,
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "dataset", "greedy max/avg", "naive max/avg"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        let greedy = compute_ft_plan(&g, &cut, 1, true, true, opts.seed);
        let imbalance = |counts: &[usize]| {
            let max = counts.iter().copied().max().unwrap_or(0) as f64;
            let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            max / avg.max(1.0)
        };
        let mut greedy_counts = vec![0usize; opts.nodes];
        for v in g.vertices() {
            for m in greedy.mirrors(v) {
                greedy_counts[m.index()] += 1;
            }
        }
        // Naive policy: always the first (lowest-ID) replica location.
        let mut naive_counts = vec![0usize; opts.nodes];
        for v in g.vertices() {
            match cut.replica_parts(v).first() {
                Some(&p) => naive_counts[p as usize] += 1,
                None => naive_counts[(cut.owner(v) + 1) % opts.nodes] += 1,
            }
        }
        println!(
            "{:<10} {:>14.3} {:>14.3}",
            d.name(),
            imbalance(&greedy_counts),
            imbalance(&naive_counts)
        );
    }
    println!("(mirrors per machine; max/avg → 1.0 means recovery work is evenly spread)");
}

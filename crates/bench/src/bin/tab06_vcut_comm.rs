//! Table 6: execution time and communication cost per partitioner
//! (random / grid / hybrid) when tolerating 0-3 failures (PageRank,
//! Twitter stand-in, vertex-cut).
//!
//! Paper shape: hybrid is fastest and cheapest in absolute terms at every
//! FT level even though its *relative* FT communication grows the most
//! (+21.5% at K=3 vs +3.3% for random) — FT never flips the partitioner
//! choice.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{
    banner, best_of, gib, ramfs, reps, run_vc, secs, BenchOpts, Summary, Workload,
};
use imitator_graph::gen::Dataset;
use imitator_partition::{
    GridVertexCut, HybridVertexCut, RandomVertexCut, VertexCut, VertexCutPartitioner,
};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "tab06",
        "vertex-cut exec time & comm per partitioner and FT level",
        &opts,
    );
    let g = opts.powerlyra_graph(Dataset::Twitter);
    let theta = (2.0 * g.stats().avg_degree) as usize;
    let cuts: [(&str, VertexCut); 3] = [
        ("random", RandomVertexCut.partition(&g, opts.nodes)),
        ("grid", GridVertexCut.partition(&g, opts.nodes)),
        (
            "hybrid",
            HybridVertexCut::with_threshold(theta).partition(&g, opts.nodes),
        ),
    ];
    println!(
        "{:<8} {:<7} {:>9} {:>10} {:>11} {:>10}",
        "cut", "config", "time(s)", "time ovh", "comm(GiB)", "comm ovh"
    );
    for (name, cut) in &cuts {
        let mut base: Option<Summary> = None;
        for k in 0usize..=3 {
            let ft = if k == 0 {
                FtMode::None
            } else {
                FtMode::Replication {
                    tolerance: k,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                }
            };
            let s = best_of(reps(), || {
                run_vc(
                    Workload::PageRank,
                    &g,
                    cut,
                    RunConfig {
                        num_nodes: opts.nodes,
                        ft,
                        ..RunConfig::default()
                    },
                    vec![],
                    ramfs(),
                )
            });
            let (tovh, covh) = match &base {
                None => (0.0, 0.0),
                Some(b) => (
                    s.overhead_vs(b),
                    100.0 * (s.comm.bytes as f64 / b.comm.bytes as f64 - 1.0),
                ),
            };
            println!(
                "{:<8} {:<7} {:>9} {:>9.2}% {:>11} {:>9.2}%",
                name,
                if k == 0 {
                    "w/o FT".to_owned()
                } else {
                    format!("FT/{k}")
                },
                secs(s.elapsed),
                tovh,
                gib(s.comm.bytes),
                covh
            );
            if k == 0 {
                base = Some(s);
            }
        }
    }
}

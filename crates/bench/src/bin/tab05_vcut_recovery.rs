//! Table 5: recovery time of CKPT, Rebirth and Migration on the vertex-cut
//! engine for the real-world stand-ins and the α family (PageRank).
//!
//! Paper shape: REB 1.7-7.7× and MIG 1.3-7.2× faster than CKPT; Migration
//! wins on the largest graphs (parallel edge-ckpt reload).

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{
    alpha_family, banner, crash, hdfs, ms, reps, run_vc, BenchOpts, Summary, Workload,
};
use imitator_graph::gen::Dataset;
use imitator_partition::{HybridVertexCut, VertexCutPartitioner};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "tab05",
        "vertex-cut recovery time: CKPT vs REB vs MIG",
        &opts,
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "graph", "CKPT(ms)", "REB(ms)", "MIG(ms)"
    );
    let mut rows: Vec<(String, imitator_graph::Graph)> = Dataset::powerlyra_suite()
        .into_iter()
        .map(|d| (d.name().to_owned(), opts.powerlyra_graph(d)))
        .collect();
    for (alpha, g) in alpha_family(&opts) {
        rows.push((format!("α={alpha}"), g));
    }
    for (name, g) in rows {
        let cut = HybridVertexCut::default().partition(&g, opts.nodes);
        let run = |ft, standbys, dfs: imitator_storage::Dfs| {
            run_vc(
                Workload::PageRank,
                &g,
                &cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    ft,
                    standbys,
                    ..RunConfig::default()
                },
                vec![crash(1, 6)],
                dfs,
            )
        };
        let pick = |mut v: Vec<Summary>| {
            v.sort_by_key(Summary::recovery_total);
            v.remove(0)
        };
        let n = reps();
        let ckpt = pick(
            (0..n)
                .map(|_| {
                    run(
                        FtMode::Checkpoint {
                            interval: 4,
                            incremental: false,
                        },
                        1,
                        hdfs(),
                    )
                })
                .collect(),
        );
        let reb = pick(
            (0..n)
                .map(|_| {
                    run(
                        FtMode::Replication {
                            tolerance: 1,
                            selfish_opt: true,
                            recovery: RecoveryStrategy::Rebirth,
                        },
                        1,
                        hdfs(),
                    )
                })
                .collect(),
        );
        let mig = pick(
            (0..n)
                .map(|_| {
                    run(
                        FtMode::Replication {
                            tolerance: 1,
                            selfish_opt: true,
                            recovery: RecoveryStrategy::Migration,
                        },
                        0,
                        hdfs(),
                    )
                })
                .collect(),
        );
        println!(
            "{:<10} {:>10} {:>10} {:>10}",
            name,
            ms(ckpt.recovery_total()),
            ms(reb.recovery_total()),
            ms(mig.recovery_total())
        );
    }
}

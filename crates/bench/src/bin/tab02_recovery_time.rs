//! Table 2: recovery time of checkpoint (CKPT), Rebirth (REB) and
//! Migration (MIG) recovery after one machine failure (Cyclops suite).
//!
//! Paper shape: REB 3.9-6.9× and MIG 3.6-17.7× faster than CKPT; MIG wins
//! on large graphs, REB on small ones.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, crash, hdfs, ms, ramfs, reps, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "tab02",
        "recovery time: CKPT vs Rebirth vs Migration (Cyclops)",
        &opts,
    );
    println!(
        "{:<10} {:<9} {:>10} {:>10} {:>10}",
        "algorithm", "dataset", "CKPT(ms)", "REB(ms)", "MIG(ms)"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let w = Workload::for_dataset(d, &g);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        // Mid-run for the iteration-bounded workloads; early enough for the
        // convergence-bounded ones (SSSP's front finishes in tens of steps).
        let fail_iter = (w.max_iters() / 2).clamp(1, 10);
        let run = |ft, standbys, dfs: imitator_storage::Dfs| {
            run_ec(
                w,
                &g,
                &cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    ft,
                    standbys,
                    ..RunConfig::default()
                },
                vec![crash(1, fail_iter)],
                dfs,
            )
        };
        // Keep the fastest of N recoveries (recovery time is the metric, so
        // pick the run whose recovery, not wall time, is smallest).
        let pick = |mut summaries: Vec<imitator_bench::Summary>| {
            summaries.sort_by_key(imitator_bench::Summary::recovery_total);
            summaries.remove(0)
        };
        let n = reps();
        let ckpt = pick(
            (0..n)
                .map(|_| {
                    run(
                        FtMode::Checkpoint {
                            interval: 4,
                            incremental: false,
                        },
                        1,
                        hdfs(),
                    )
                })
                .collect(),
        );
        let reb = pick(
            (0..n)
                .map(|_| {
                    run(
                        FtMode::Replication {
                            tolerance: 1,
                            selfish_opt: true,
                            recovery: RecoveryStrategy::Rebirth,
                        },
                        1,
                        ramfs(),
                    )
                })
                .collect(),
        );
        let mig = pick(
            (0..n)
                .map(|_| {
                    run(
                        FtMode::Replication {
                            tolerance: 1,
                            selfish_opt: true,
                            recovery: RecoveryStrategy::Migration,
                        },
                        0,
                        ramfs(),
                    )
                })
                .collect(),
        );
        println!(
            "{:<10} {:<9} {:>10} {:>10} {:>10}",
            w.name(),
            d.name(),
            ms(ckpt.recovery_total()),
            ms(reb.recovery_total()),
            ms(mig.recovery_total())
        );
    }
}

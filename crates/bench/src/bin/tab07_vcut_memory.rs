//! Table 7: total cluster memory per partitioner when tolerating 0-3
//! failures (PageRank, Twitter stand-in, vertex-cut).
//!
//! Paper shape: vertex-cut FT memory overhead is tiny (≤1.87% at K=3 even
//! for hybrid) because mirrors carry no edges — edges dominate memory and
//! sit in edge-ckpt files instead.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, ramfs, run_vc, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{
    GridVertexCut, HybridVertexCut, RandomVertexCut, VertexCut, VertexCutPartitioner,
};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "tab07",
        "vertex-cut total memory per partitioner and FT level",
        &opts,
    );
    let g = opts.powerlyra_graph(Dataset::Twitter);
    let theta = (2.0 * g.stats().avg_degree) as usize;
    let cuts: [(&str, VertexCut); 3] = [
        ("random", RandomVertexCut.partition(&g, opts.nodes)),
        ("grid", GridVertexCut.partition(&g, opts.nodes)),
        (
            "hybrid",
            HybridVertexCut::with_threshold(theta).partition(&g, opts.nodes),
        ),
    ];
    println!(
        "{:<8} {:<7} {:>12} {:>9}",
        "cut", "config", "total (MiB)", "vs base"
    );
    for (name, cut) in &cuts {
        let mut base_total = 0usize;
        for k in 0usize..=3 {
            let ft = if k == 0 {
                FtMode::None
            } else {
                FtMode::Replication {
                    tolerance: k,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                }
            };
            let s = run_vc(
                Workload::PageRank,
                &g,
                cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    max_iters: 1,
                    ft,
                    ..RunConfig::default()
                },
                vec![],
                ramfs(),
            );
            let total: usize = s.mem_bytes.iter().sum();
            if k == 0 {
                base_total = total;
            }
            println!(
                "{:<8} {:<7} {:>12.1} {:>8.2}%",
                name,
                if k == 0 {
                    "w/o FT".to_owned()
                } else {
                    format!("FT/{k}")
                },
                total as f64 / (1024.0 * 1024.0),
                100.0 * (total as f64 / base_total as f64 - 1.0)
            );
        }
    }
}

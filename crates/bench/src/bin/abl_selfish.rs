//! Ablation: the selfish-vertex optimisation (§4.4) on and off, across the
//! Cyclops suite — runtime overhead and FT traffic with each setting.
//!
//! Complements fig08: shows the optimisation's end-to-end effect rather
//! than the message ratios alone.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, ramfs, reps, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "abl_selfish",
        "selfish-vertex optimisation on vs off",
        &opts,
    );
    println!(
        "{:<10} {:>12} {:>12} {:>13} {:>13}",
        "dataset", "ovh off", "ovh on", "ft-recs off", "ft-recs on"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let w = Workload::for_dataset(d, &g);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        let cfg = |ft| RunConfig {
            num_nodes: opts.nodes,
            ft,
            ..RunConfig::default()
        };
        let n = reps();
        let base = best_of(n, || {
            run_ec(w, &g, &cut, cfg(FtMode::None), vec![], ramfs())
        });
        let run = |selfish_opt| {
            best_of(n, || {
                run_ec(
                    w,
                    &g,
                    &cut,
                    cfg(FtMode::Replication {
                        tolerance: 1,
                        selfish_opt,
                        recovery: RecoveryStrategy::Rebirth,
                    }),
                    vec![],
                    ramfs(),
                )
            })
        };
        let off = run(false);
        let on = run(true);
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>13} {:>13}",
            d.name(),
            off.overhead_vs(&base),
            on.overhead_vs(&base),
            off.ft_comm.messages,
            on.ft_comm.messages
        );
    }
}

//! Fig. 2(b): overall overhead of checkpoint-based fault tolerance for
//! PageRank/LJournal over 20 iterations, with snapshot intervals 1, 2, 4.
//!
//! Paper shape: 89% / 51% / 26% overhead — halving the frequency roughly
//! halves the overhead, and even interval 4 is far from free.

use imitator::{FtMode, RunConfig};
use imitator_bench::{banner, best_of, hdfs, ramfs, reps, run_ec, secs, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig02b",
        "CKPT overhead vs snapshot interval (PageRank, LJournal)",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::LJournal);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    let cfg = |ft| RunConfig {
        num_nodes: opts.nodes,
        ft,
        ..RunConfig::default()
    };
    let base = best_of(reps(), || {
        run_ec(
            Workload::PageRank,
            &g,
            &cut,
            cfg(FtMode::None),
            vec![],
            ramfs(),
        )
    });
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "config", "total (s)", "ckpt (s)", "overhead"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "BASE",
        secs(base.elapsed),
        "-",
        "-"
    );
    for interval in [1u64, 2, 4] {
        let ck = best_of(reps(), || {
            run_ec(
                Workload::PageRank,
                &g,
                &cut,
                cfg(FtMode::Checkpoint {
                    interval,
                    incremental: false,
                }),
                vec![],
                hdfs(),
            )
        });
        println!(
            "{:<12} {:>10} {:>12} {:>9.0}%",
            format!("CKPT/{interval}"),
            secs(ck.elapsed),
            secs(ck.ckpt_time),
            ck.overhead_vs(&base)
        );
    }
}

//! Fig. 9: recovery time of Rebirth and Migration as the number of nodes
//! participating in recovery grows (PageRank, Wiki stand-in).
//!
//! Paper shape: both strategies speed up with more nodes — every survivor
//! contributes recovery bandwidth in parallel (the RAMCloud effect).

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, crash, ms, ramfs, reps, run_ec, BenchOpts, Summary, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig09",
        "recovery scalability with cluster size (PageRank, Wiki)",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::Wiki);
    println!("{:<8} {:>10} {:>10}", "nodes", "REB(ms)", "MIG(ms)");
    for nodes in [4usize, 6, 8, 12, 16] {
        let cut = HashEdgeCut.partition(&g, nodes);
        let run = |recovery, standbys| -> Summary {
            let mut best: Option<Summary> = None;
            for _ in 0..reps() {
                let s = run_ec(
                    Workload::PageRank,
                    &g,
                    &cut,
                    RunConfig {
                        num_nodes: nodes,
                        ft: FtMode::Replication {
                            tolerance: 1,
                            selfish_opt: true,
                            recovery,
                        },
                        standbys,
                        ..RunConfig::default()
                    },
                    vec![crash(1, 6)],
                    ramfs(),
                );
                if best
                    .as_ref()
                    .is_none_or(|b| s.recovery_total() < b.recovery_total())
                {
                    best = Some(s);
                }
            }
            best.expect("reps > 0")
        };
        let reb = run(RecoveryStrategy::Rebirth, 1);
        let mig = run(RecoveryStrategy::Migration, 0);
        println!(
            "{:<8} {:>10} {:>10}",
            nodes,
            ms(reb.recovery_total()),
            ms(mig.recovery_total())
        );
    }
}

//! Ablation: full vs incremental snapshots (§2.3 — Imitator-CKPT
//! "periodically launch checkpoint to create an incremental snapshot").
//!
//! Incremental snapshots persist only the masters whose values changed since
//! the last snapshot; for activation-front workloads (SSSP) almost nothing
//! changes per iteration, so the bytes written collapse, while dense
//! workloads (PageRank) see little gain — exactly why the paper pairs the
//! optimisation with behaviour-aware state selection.

use imitator::{FtMode, RunConfig};
use imitator_bench::{banner, hdfs, run_ec, secs, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "abl_incremental_ckpt",
        "full vs incremental snapshots (§2.3)",
        &opts,
    );
    println!(
        "{:<10} {:<10} {:>12} {:>14} {:>10}",
        "workload", "mode", "ckpt (s)", "DFS MiB", "total(s)"
    );
    for d in [Dataset::LJournal, Dataset::RoadCa] {
        let g = opts.cyclops_graph(d);
        let w = Workload::for_dataset(d, &g);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        for incremental in [false, true] {
            let dfs = hdfs();
            let s = run_ec(
                w,
                &g,
                &cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    ft: FtMode::Checkpoint {
                        interval: 1,
                        incremental,
                    },
                    ..RunConfig::default()
                },
                vec![],
                dfs.clone(),
            );
            println!(
                "{:<10} {:<10} {:>12} {:>14.2} {:>10}",
                w.name(),
                if incremental { "inc" } else { "full" },
                secs(s.ckpt_time),
                dfs.stats().writes.bytes as f64 / (1024.0 * 1024.0),
                secs(s.elapsed)
            );
        }
    }
}

//! Fig. 2(a): the cost of writing one checkpoint vs the average iteration
//! time, per algorithm and dataset (Cyclops suite, edge-cut).
//!
//! Paper shape: one checkpoint costs from ~0.55× (Wiki) to several times
//! (DBLP, SYN-GL) an iteration — never cheap.

use imitator::{FtMode, RunConfig};
use imitator_bench::{banner, best_of, hdfs, ramfs, reps, run_ec, secs, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner("fig02a", "cost of one checkpoint vs one iteration", &opts);
    println!(
        "{:<10} {:<9} {:>10} {:>12} {:>8}",
        "algorithm", "dataset", "iter (s)", "1 ckpt (s)", "ratio"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let w = Workload::for_dataset(d, &g);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        let cfg = |ft| RunConfig {
            num_nodes: opts.nodes,
            ft,
            ..RunConfig::default()
        };
        let n = reps();
        let base = best_of(n, || {
            run_ec(w, &g, &cut, cfg(FtMode::None), vec![], ramfs())
        });
        let ck = best_of(n, || {
            run_ec(
                w,
                &g,
                &cut,
                cfg(FtMode::Checkpoint {
                    interval: 1,
                    incremental: false,
                }),
                vec![],
                hdfs(),
            )
        });
        // Snapshots written once per iteration; the metadata snapshot at
        // load is excluded by dividing by the iteration count.
        let per_ckpt = ck.ckpt_time.as_secs_f64() / ck.iterations.max(1) as f64;
        let avg_iter = base.avg_iter.as_secs_f64();
        println!(
            "{:<10} {:<9} {:>10} {:>12.3} {:>7.1}x",
            w.name(),
            d.name(),
            secs(base.avg_iter),
            per_ckpt,
            per_ckpt / avg_iter.max(1e-9)
        );
    }
}

//! Fig. 13: runtime overhead of replication (REP) vs checkpoint (CKPT)
//! fault tolerance on the vertex-cut engine (PowerLyra), for PageRank over
//! the real-world stand-ins and the α-parameterised power-law family.
//!
//! Paper shape: REP ≤ 3.3% everywhere; CKPT 135-531%.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{
    alpha_family, banner, best_of, hdfs, ramfs, reps, run_vc, secs, BenchOpts, Workload,
};
use imitator_graph::gen::Dataset;
use imitator_partition::{HybridVertexCut, VertexCutPartitioner};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig13",
        "runtime overhead: BASE vs REP vs CKPT (PowerLyra)",
        &opts,
    );
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "graph", "BASE(s)", "REP(s)", "REP ovh", "CKPT(s)", "CKPT ovh"
    );
    let mut rows: Vec<(String, imitator_graph::Graph)> = Dataset::powerlyra_suite()
        .into_iter()
        .map(|d| (d.name().to_owned(), opts.powerlyra_graph(d)))
        .collect();
    for (alpha, g) in alpha_family(&opts) {
        rows.push((format!("α={alpha}"), g));
    }
    for (name, g) in rows {
        let cut = HybridVertexCut::default().partition(&g, opts.nodes);
        let cfg = |ft| RunConfig {
            num_nodes: opts.nodes,
            ft,
            ..RunConfig::default()
        };
        let n = reps();
        let base = best_of(n, || {
            run_vc(
                Workload::PageRank,
                &g,
                &cut,
                cfg(FtMode::None),
                vec![],
                ramfs(),
            )
        });
        let rep = best_of(n, || {
            run_vc(
                Workload::PageRank,
                &g,
                &cut,
                cfg(FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                }),
                vec![],
                ramfs(),
            )
        });
        let ckpt = best_of(n, || {
            run_vc(
                Workload::PageRank,
                &g,
                &cut,
                cfg(FtMode::Checkpoint {
                    interval: 1,
                    incremental: false,
                }),
                vec![],
                hdfs(),
            )
        });
        println!(
            "{:<10} {:>9} {:>9} {:>7.1}% {:>9} {:>7.0}%",
            name,
            secs(base.elapsed),
            secs(rep.elapsed),
            rep.overhead_vs(&base),
            secs(ckpt.elapsed),
            ckpt.overhead_vs(&base)
        );
    }
}

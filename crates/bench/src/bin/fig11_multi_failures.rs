//! Fig. 11: tolerating 1, 2 or 3 simultaneous machine failures (Cyclops,
//! PageRank/Wiki): (a) normal-execution overhead of carrying K mirrors,
//! (b) recovery time when 1, 2 or 3 nodes actually crash together.
//!
//! Paper shape: overhead stays below 10% even at K=3; Rebirth's recovery
//! grows with the crash count while Migration's grows more slowly.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, crash, ms, ramfs, reps, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig11",
        "tolerating multiple failures (PageRank, Wiki)",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::Wiki);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    let base = best_of(reps(), || {
        run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: FtMode::None,
                ..RunConfig::default()
            },
            vec![],
            ramfs(),
        )
    });
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "K", "overhead", "REB(ms)", "MIG(ms)"
    );
    for k in 1usize..=3 {
        let ft = |recovery| FtMode::Replication {
            tolerance: k,
            selfish_opt: true,
            recovery,
        };
        let normal = best_of(reps(), || {
            run_ec(
                Workload::PageRank,
                &g,
                &cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    ft: ft(RecoveryStrategy::Rebirth),
                    standbys: k,
                    ..RunConfig::default()
                },
                vec![],
                ramfs(),
            )
        });
        let failures: Vec<_> = (0..k).map(|i| crash(i + 1, 6)).collect();
        let reb = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: ft(RecoveryStrategy::Rebirth),
                standbys: k,
                ..RunConfig::default()
            },
            failures.clone(),
            ramfs(),
        );
        let mig = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft: ft(RecoveryStrategy::Migration),
                ..RunConfig::default()
            },
            failures,
            ramfs(),
        );
        println!(
            "{:<6} {:>9.1}% {:>12} {:>12}",
            k,
            normal.overhead_vs(&base),
            ms(reb.recovery_total()),
            ms(mig.recovery_total())
        );
    }
}

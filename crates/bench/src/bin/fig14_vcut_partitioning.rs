//! Fig. 14: the impact of the vertex-cut partitioner (random / grid /
//! hybrid) on (a) replication factor and (b) Imitator's overhead and
//! recovery time (PageRank, Twitter stand-in).
//!
//! Paper shape: replication factor random > grid > hybrid (15.96 / 8.34 /
//! 5.56 on the testbed); fewer replicas → slightly higher FT overhead but
//! faster recovery.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, crash, hdfs, ms, ramfs, reps, run_vc, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{
    GridVertexCut, HybridVertexCut, RandomVertexCut, VertexCut, VertexCutPartitioner,
};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig14",
        "vertex-cut partitioners: replication factor, overhead, recovery",
        &opts,
    );
    let g = opts.powerlyra_graph(Dataset::Twitter);
    // Hybrid's in-degree threshold is scaled to the bench-sized graph (the
    // paper's θ=100 targets graphs 1000× larger).
    let theta = (2.0 * g.stats().avg_degree) as usize;
    let cuts: [(&str, VertexCut); 3] = [
        ("random", RandomVertexCut.partition(&g, opts.nodes)),
        ("grid", GridVertexCut.partition(&g, opts.nodes)),
        (
            "hybrid",
            HybridVertexCut::with_threshold(theta).partition(&g, opts.nodes),
        ),
    ];
    println!(
        "{:<8} {:>6} {:>9} {:>10} {:>10}",
        "cut", "rf", "REP ovh", "REB(ms)", "MIG(ms)"
    );
    for (name, cut) in &cuts {
        let cfg = |ft, standbys| RunConfig {
            num_nodes: opts.nodes,
            ft,
            standbys,
            ..RunConfig::default()
        };
        let n = reps();
        let base = best_of(n, || {
            run_vc(
                Workload::PageRank,
                &g,
                cut,
                cfg(FtMode::None, 0),
                vec![],
                ramfs(),
            )
        });
        let rep_mode = |recovery| FtMode::Replication {
            tolerance: 1,
            selfish_opt: true,
            recovery,
        };
        let rep = best_of(n, || {
            run_vc(
                Workload::PageRank,
                &g,
                cut,
                cfg(rep_mode(RecoveryStrategy::Migration), 0),
                vec![],
                ramfs(),
            )
        });
        let reb = run_vc(
            Workload::PageRank,
            &g,
            cut,
            cfg(rep_mode(RecoveryStrategy::Rebirth), 1),
            vec![crash(1, 6)],
            hdfs(),
        );
        let mig = run_vc(
            Workload::PageRank,
            &g,
            cut,
            cfg(rep_mode(RecoveryStrategy::Migration), 0),
            vec![crash(1, 6)],
            hdfs(),
        );
        println!(
            "{:<8} {:>6.2} {:>8.1}% {:>10} {:>10}",
            name,
            cut.replication_factor(),
            rep.overhead_vs(&base),
            ms(reb.recovery_total()),
            ms(mig.recovery_total())
        );
    }
}

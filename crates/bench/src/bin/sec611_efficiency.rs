//! §6.11: theoretical efficiency of checkpoint- vs replication-based fault
//! tolerance under Young's optimal-interval model, fed with *measured*
//! costs from this reproduction (PageRank, Twitter stand-in, vertex-cut).
//!
//! Young's model: optimal interval T ≈ sqrt(2 · C · MTBF) for per-interval
//! cost C; efficiency = useful time / total expected time, accounting for
//! the per-interval overhead and the expected recovery cost per failure.
//!
//! Paper shape: CKPT's optimal interval is ~16× REP's (9768s vs 623s);
//! both efficiencies are high (98.4% vs 99.9%) because failures are rare —
//! but REP's negligible overhead and fast recovery matter because graph
//! jobs are much shorter than the MTBF.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, best_of, crash, hdfs, ramfs, reps, run_vc, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{HybridVertexCut, VertexCutPartitioner};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "sec611",
        "Young-model efficiency of CKPT vs REP (measured costs)",
        &opts,
    );
    let g = opts.powerlyra_graph(Dataset::Twitter);
    let cut = HybridVertexCut::default().partition(&g, opts.nodes);
    let cfg = |ft, standbys| RunConfig {
        num_nodes: opts.nodes,
        ft,
        standbys,
        ..RunConfig::default()
    };
    let n = reps();
    let base = best_of(n, || {
        run_vc(
            Workload::PageRank,
            &g,
            &cut,
            cfg(FtMode::None, 0),
            vec![],
            ramfs(),
        )
    });
    let ckpt = best_of(n, || {
        run_vc(
            Workload::PageRank,
            &g,
            &cut,
            cfg(
                FtMode::Checkpoint {
                    interval: 1,
                    incremental: false,
                },
                0,
            ),
            vec![],
            hdfs(),
        )
    });
    let rep = best_of(n, || {
        run_vc(
            Workload::PageRank,
            &g,
            &cut,
            cfg(
                FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: true,
                    recovery: RecoveryStrategy::Migration,
                },
                0,
            ),
            vec![],
            ramfs(),
        )
    });
    let ck_rec = run_vc(
        Workload::PageRank,
        &g,
        &cut,
        cfg(
            FtMode::Checkpoint {
                interval: 4,
                incremental: false,
            },
            1,
        ),
        vec![crash(1, 6)],
        hdfs(),
    );
    let rep_rec = run_vc(
        Workload::PageRank,
        &g,
        &cut,
        cfg(
            FtMode::Replication {
                tolerance: 1,
                selfish_opt: true,
                recovery: RecoveryStrategy::Migration,
            },
            0,
        ),
        vec![crash(1, 6)],
        hdfs(),
    );

    // Measured per-interval costs. CKPT's cost is one snapshot; REP's is the
    // per-iteration FT overhead accumulated over the iterations an interval
    // spans (conservatively: its total overhead for this run).
    let iters = base.iterations.max(1) as f64;
    let ckpt_cost = ckpt.ckpt_time.as_secs_f64() / iters; // one snapshot
    let rep_cost = ((rep.elapsed.as_secs_f64() - base.elapsed.as_secs_f64()) / iters).max(1e-6);
    // The paper's MTBF assumption: 7.3 days for a 50-node cluster.
    let mtbf_secs = 7.3 * 24.0 * 3600.0;
    let iter_time = base.avg_iter.as_secs_f64();

    println!("measured inputs:");
    println!("  avg iteration           {iter_time:.4} s");
    println!("  one checkpoint          {ckpt_cost:.4} s");
    println!("  REP per-iteration cost  {rep_cost:.6} s");
    println!(
        "  recovery: CKPT {:.3} s, REP {:.3} s",
        ck_rec.recovery_total().as_secs_f64(),
        rep_rec.recovery_total().as_secs_f64()
    );
    println!("  assumed MTBF            {mtbf_secs:.0} s (7.3 days, 50-node cluster)");

    println!("\nYoung's model:");
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "scheme", "interval C(s)", "optimal T(s)", "efficiency"
    );
    for (name, per_interval_cost, recovery) in [
        ("CKPT", ckpt_cost, ck_rec.recovery_total().as_secs_f64()),
        ("REP", rep_cost, rep_rec.recovery_total().as_secs_f64()),
    ] {
        // Interpret the per-iteration overhead as the per-interval cost at
        // one interval per iteration; Young: T_opt = sqrt(2 C MTBF).
        let t_opt = (2.0 * per_interval_cost * mtbf_secs).sqrt();
        // Efficiency: fraction of time doing useful work with overhead every
        // T_opt plus expected recovery (R + T_opt/2 of lost work) per MTBF.
        let overhead_rate = per_interval_cost / t_opt;
        let recovery_rate = (recovery + t_opt / 2.0) / mtbf_secs;
        let efficiency = 100.0 * (1.0 - overhead_rate - recovery_rate);
        println!(
            "{:<8} {:>14.4} {:>14.0} {:>11.2}%",
            name, per_interval_cost, t_opt, efficiency
        );
    }
}

//! Performance baseline: times the engine's compute kernels (serial scan,
//! sparse frontier, scoped-thread pool, dst-grouped gather) and one
//! end-to-end PageRank run per engine, then writes the numbers to
//! `BENCH_engine.json` for regression tracking.
//!
//! ```sh
//! cargo run --release -p imitator-bench --bin perf_baseline
//! ```
//!
//! Honours `IMITATOR_SCALE` / `IMITATOR_NODES` / `IMITATOR_SEED` /
//! `IMITATOR_REPEAT` like every other harness binary. Kernel timings keep
//! the best of `reps()` passes; the JSON is a flat name → seconds map so a
//! later run can be diffed field by field.

use std::time::{Duration, Instant};

use imitator::{DetectorKind, FtMode, RecoveryStrategy, RunConfig};
use imitator_algos::PageRank;
use imitator_bench::{banner, best_of, crash, ramfs, reps, run_ec, run_vc, BenchOpts, Workload};
use imitator_cluster::{Cluster, NodeId, TransportKind, TICKS_PER_MS};
use imitator_engine::{
    build_edge_cut_graphs, build_vertex_cut_graphs, ec_compute, ec_compute_par, ec_compute_scan,
    vc_partial_gather, vc_partial_gather_par, Degrees, FtPlan, VcGatherIndex,
};
use imitator_graph::gen;
use imitator_metrics::CommKind;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner};

/// Best-of-`n` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "perf_baseline",
        "engine kernel + end-to-end baseline",
        &opts,
    );
    // The widest thread variant the suite times below; on boxes with fewer
    // cores those numbers measure scheduler contention, not speedup.
    const MAX_BENCH_THREADS: usize = 4;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores < MAX_BENCH_THREADS {
        eprintln!("======================================================================");
        eprintln!("WARNING: {cores} core(s) available but this suite times t{MAX_BENCH_THREADS} variants.");
        eprintln!("Multi-thread results below are oversubscribed: they measure context-");
        eprintln!("switch overhead, NOT parallel speedup. Ignore tN>t1 comparisons here");
        eprintln!(
            "and use the pinned multicore CI bench job (or a machine with >= {MAX_BENCH_THREADS}"
        );
        eprintln!("cores) for honest scaling figures. meta.cores in BENCH_engine.json");
        eprintln!("records this box's parallelism so downstream diffs can tell.");
        eprintln!("======================================================================");
    }
    let n = reps().max(5);
    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, secs: f64| {
        println!("  {name:<40} {:>10.3} ms", secs * 1e3);
        results.push((name.to_string(), secs));
    };

    let verts = ((20_000.0 * opts.scale) as usize).max(1_000);
    let g = gen::power_law(verts, 2.0, 10, opts.seed);
    let degrees = Degrees::of(&g);
    let plan = FtPlan::none(g.num_vertices());
    let pr = PageRank::new(0.85, 0.0);

    // Edge-cut kernels: one node's slice of a dense superstep.
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    let lgs = build_edge_cut_graphs(&g, &cut, &plan, &pr, &degrees);
    record(
        "ec_compute_scan",
        time_best(n, || {
            ec_compute_scan(&lgs[0], &pr, &degrees, 0);
        }),
    );
    record(
        "ec_compute_frontier",
        time_best(n, || {
            ec_compute(&lgs[0], &pr, &degrees, 0);
        }),
    );
    for threads in [1usize, 2, 4] {
        record(
            &format!("ec_compute_par_t{threads}"),
            time_best(n, || {
                ec_compute_par(&lgs[0], &pr, &degrees, 0, threads);
            }),
        );
    }

    // Vertex-cut kernels.
    let vcut = RandomVertexCut.partition(&g, opts.nodes);
    let vlgs = build_vertex_cut_graphs(&g, &vcut, &plan, &pr, &degrees);
    record(
        "vc_gather_edge_order",
        time_best(n, || {
            vc_partial_gather(&vlgs[0], &pr);
        }),
    );
    let index = VcGatherIndex::build(&vlgs[0]);
    record(
        "vc_gather_index_build",
        time_best(n, || {
            VcGatherIndex::build(&vlgs[0]);
        }),
    );
    let mut partials = Vec::new();
    for threads in [1usize, 2, 4] {
        record(
            &format!("vc_gather_grouped_t{threads}"),
            time_best(n, || {
                vc_partial_gather_par(&vlgs[0], &pr, &index, threads, &mut partials);
            }),
        );
    }

    // Communication fabric: lock-free send + O(1) drain throughput, and the
    // barrier round trip every superstep pays.
    {
        let cluster: Cluster<u64> = Cluster::new(opts.nodes.max(2), 0, Duration::ZERO);
        let sender = cluster.take_ctx(NodeId::new(0));
        let receiver = cluster.take_ctx(NodeId::new(1));
        record(
            "fabric_send_drain_100k",
            time_best(n, || {
                for i in 0..100_000u64 {
                    sender.send(NodeId::new(1), i);
                }
                assert_eq!(receiver.drain().len(), 100_000);
            }),
        );
    }
    // The same throughput probe over loopback TCP: every frame crosses a
    // real socket (encode, length-prefix, kernel round trip, decode) and
    // the receiver spins on drain until the link delivered everything —
    // the honest price of a wire relative to the in-process fast path.
    {
        let cluster: Cluster<u64> =
            Cluster::with_transport(opts.nodes.max(2), 0, Duration::ZERO, TransportKind::Tcp);
        let sender = cluster.take_ctx(NodeId::new(0));
        let receiver = cluster.take_ctx(NodeId::new(1));
        record(
            "fabric_send_drain_100k_tcp",
            time_best(n, || {
                for i in 0..100_000u64 {
                    sender.send(NodeId::new(1), i);
                }
                let mut got = 0usize;
                while got < 100_000 {
                    got += receiver.drain().len();
                }
            }),
        );
        cluster.shutdown_transport();
    }
    // One sync round = a burst of sends fenced by the barrier every
    // superstep pays — the communication heartbeat — timed per wire
    // backend. Channel is the lock-free bound; TCP adds the codec, the
    // kernel, and the pre-barrier delivery fence.
    for (name, kind) in [
        ("sync_round_x100_channel", TransportKind::Channel),
        ("sync_round_x100_tcp", TransportKind::Tcp),
    ] {
        record(
            name,
            time_best(n, || {
                let cluster: Cluster<u64> = Cluster::with_transport(2, 0, Duration::ZERO, kind);
                let a = cluster.take_ctx(NodeId::new(0));
                let b = cluster.take_ctx(NodeId::new(1));
                let peer = std::thread::spawn(move || {
                    for _ in 0..100 {
                        b.enter_barrier();
                        b.drain();
                    }
                });
                for round in 0..100u64 {
                    for i in 0..1_000u64 {
                        a.send(NodeId::new(1), round * 1_000 + i);
                    }
                    a.enter_barrier();
                }
                peer.join().expect("peer thread");
                cluster.shutdown_transport();
            }),
        );
    }
    // Columnar wire codec: encode/decode throughput of a 100k-record sync
    // frame (the shape the sync fast path batches), plus the byte gauge the
    // CI bytes-regression step tracks. The scalar codec this replaced spent
    // 13 bytes per f64 sync record (4 pos + 8 value + 1 activate).
    let bytes_per_sync;
    {
        use imitator::wire::{decode_sync_frame, encode_sync_frame, SyncRecEnc};
        let values: Vec<[u8; 8]> = (0..100_000u64)
            .map(|i| f64::from_bits(i ^ 0x9E37_79B9_7F4A_7C15).to_le_bytes())
            .collect();
        let recs: Vec<SyncRecEnc<'_>> = values
            .iter()
            .enumerate()
            .map(|(i, v)| SyncRecEnc {
                pos: (i as u32) * 3,
                activate: i % 3 == 0,
                value: v,
                span: None,
            })
            .collect();
        let mut frame = Vec::new();
        record(
            "sync_encode_100k",
            time_best(n, || {
                frame.clear();
                encode_sync_frame(&recs, &mut frame);
            }),
        );
        bytes_per_sync = frame.len() as f64 / recs.len() as f64;
        record(
            "sync_decode_100k",
            time_best(n, || {
                let out = decode_sync_frame::<f64>(&frame, |_| {
                    unreachable!("full frames need no delta base")
                })
                .expect("self-encoded frame decodes");
                assert_eq!(out.len(), recs.len());
            }),
        );
    }
    record(
        "fabric_barrier_x1000",
        time_best(n, || {
            let cluster: Cluster<()> = Cluster::new(opts.nodes, 0, Duration::ZERO);
            let peers: Vec<_> = (1..opts.nodes)
                .map(|p| {
                    let ctx = cluster.take_ctx(NodeId::from_index(p));
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            ctx.enter_barrier();
                        }
                    })
                })
                .collect();
            let me = cluster.take_ctx(NodeId::new(0));
            for _ in 0..1000 {
                me.enter_barrier();
            }
            for p in peers {
                p.join().expect("peer thread");
            }
        }),
    );

    // End-to-end PageRank per engine, serial vs default thread pool, plus a
    // pipeline-off variant at t4 to isolate the compute/ship overlap win.
    let cfg = |threads, pipeline| RunConfig {
        num_nodes: opts.nodes,
        max_iters: 20,
        ft: FtMode::None,
        threads_per_node: threads,
        pipeline,
        ..RunConfig::default()
    };
    for (suffix, threads, pipeline) in [
        ("t1", 1usize, true),
        ("t4", 4, true),
        ("t4_nopipe", 4, false),
    ] {
        let s = best_of(reps(), || {
            run_ec(
                Workload::PageRank,
                &g,
                &cut,
                cfg(threads, pipeline),
                vec![],
                ramfs(),
            )
        });
        record(
            &format!("ec_pagerank_e2e_{suffix}"),
            s.elapsed.as_secs_f64(),
        );
        let s = best_of(reps(), || {
            run_vc(
                Workload::PageRank,
                &g,
                &vcut,
                cfg(threads, pipeline),
                vec![],
                ramfs(),
            )
        });
        record(
            &format!("vc_pagerank_e2e_{suffix}"),
            s.elapsed.as_secs_f64(),
        );
    }

    // Recovery latency: one crash mid-run under replication FT, per strategy
    // and thread count. The recorded figure is the recovery episode's wall
    // time (reload + reconstruct + replay), not the whole run — the quantity
    // the parallel recovery paths are supposed to shrink.
    for (name, strategy, standbys) in [
        ("recovery_rebirth_e2e", RecoveryStrategy::Rebirth, 1usize),
        ("recovery_migration_e2e", RecoveryStrategy::Migration, 0),
    ] {
        for threads in [1usize, 4] {
            let cfg = RunConfig {
                num_nodes: opts.nodes,
                max_iters: 20,
                ft: FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: false,
                    recovery: strategy,
                },
                standbys,
                threads_per_node: threads,
                ..RunConfig::default()
            };
            let mut best = f64::INFINITY;
            for _ in 0..reps() {
                let s = run_ec(
                    Workload::PageRank,
                    &g,
                    &cut,
                    cfg,
                    vec![crash(1, 5)],
                    ramfs(),
                );
                assert_eq!(s.recoveries.len(), 1, "crash must trigger one episode");
                best = best.min(s.recovery_total().as_secs_f64());
            }
            record(&format!("{name}_t{threads}"), best);
        }
    }

    // Failure detection: observed heartbeat latency (crash → confirmed
    // death, as counted by the detector itself in silence ticks) and the
    // wire cost of the liveness traffic. p50 should sit near the configured
    // timeout; p99 absorbs scheduler noise. The byte gauge is the total
    // heartbeat traffic of one 20-iteration run — the standing overhead a
    // run pays for not needing an oracle.
    let hb_overhead_bytes;
    {
        let hb_cfg = RunConfig {
            num_nodes: opts.nodes,
            max_iters: 20,
            ft: FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            threads_per_node: 4,
            detector: DetectorKind::Heartbeat,
            hb_interval: Duration::from_millis(1),
            hb_timeout: Duration::from_millis(6),
            ..RunConfig::default()
        };
        let mut samples: Vec<f64> = Vec::new();
        for rep in 0..reps().max(5) as u64 {
            let s = run_ec(
                Workload::PageRank,
                &g,
                &cut,
                hb_cfg,
                vec![crash(1, 3 + (rep % 4))],
                ramfs(),
            );
            assert!(
                s.suspicion.confirmed >= 1,
                "heartbeat run must confirm the crash, got {:?}",
                s.suspicion
            );
            let ms = s.suspicion.detect_ticks as f64
                / s.suspicion.confirmed as f64
                / TICKS_PER_MS as f64;
            samples.push(ms / 1e3); // seconds, like every other entry
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let pct = |p: f64| {
            let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
            samples[rank.saturating_sub(1).min(samples.len() - 1)]
        };
        record("detection_latency_p50", pct(50.0));
        record("detection_latency_p99", pct(99.0));
        // Byte gauge from a crash-free run: pure liveness overhead, no
        // recovery traffic mixed in.
        let s = run_ec(Workload::PageRank, &g, &cut, hb_cfg, vec![], ramfs());
        hb_overhead_bytes = s.fabric.kind(CommKind::Heartbeat).bytes as f64;
    }

    // Checkpoint write cost: full snapshots every epoch vs the delta-epoch
    // cadence (full every 4th, dirty-only in between) on the same run. The
    // full-snapshot run also yields the bytes-per-checkpoint gauge (DFS
    // payload bytes / epochs written, before replication amplification).
    let mut bytes_per_ckpt = 0.0;
    for (name, incremental) in [("ckpt_write_full", false), ("ckpt_write_incr", true)] {
        let cfg = RunConfig {
            num_nodes: opts.nodes,
            max_iters: 20,
            ft: FtMode::Checkpoint {
                interval: 2,
                incremental,
            },
            threads_per_node: 4,
            ..RunConfig::default()
        };
        let mut best = f64::INFINITY;
        for _ in 0..reps() {
            let dfs = ramfs();
            let s = run_ec(Workload::PageRank, &g, &cut, cfg, vec![], dfs.clone());
            best = best.min(s.ckpt_time.as_secs_f64());
            if !incremental {
                let epochs = (s.iterations / 2).max(1);
                bytes_per_ckpt = dfs.stats().writes.bytes as f64 / epochs as f64;
            }
        }
        record(name, best);
    }

    // Flat JSON, hand-rolled (no serde in the sanctioned dependency list).
    // `commit` stamps the exact tree the numbers were measured at, so a
    // diff between two BENCH_engine.json files is attributable.
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"vertices\": {}, \"edges\": {}, \"nodes\": {}, \"seed\": {}, \"reps\": {}, \"cores\": {}, \"commit\": \"{}\"}},\n",
        g.num_vertices(),
        g.num_edges(),
        opts.nodes,
        opts.seed,
        n,
        cores,
        commit
    ));
    json.push_str("  \"seconds\": {\n");
    for (i, (name, secs)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {secs:.6}{comma}\n"));
    }
    json.push_str("  },\n");
    // Wire-size gauges: deterministic byte counts (not timings), tracked by
    // the non-blocking CI bytes-regression step.
    json.push_str("  \"bytes\": {\n");
    json.push_str(&format!("    \"bytes_per_sync\": {bytes_per_sync:.4},\n"));
    json.push_str(&format!("    \"bytes_per_ckpt\": {bytes_per_ckpt:.1},\n"));
    json.push_str(&format!(
        "    \"hb_overhead_bytes\": {hb_overhead_bytes:.1}\n"
    ));
    json.push_str("  }\n}\n");
    println!("  {:<40} {bytes_per_sync:>10.4} B", "bytes_per_sync");
    println!("  {:<40} {bytes_per_ckpt:>10.1} B", "bytes_per_ckpt");
    println!("  {:<40} {hb_overhead_bytes:>10.1} B", "hb_overhead_bytes");
    std::fs::write("BENCH_engine.json", json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json ({} entries)", results.len());
}

//! Fig. 12: the §6.9 case study — PageRank/LJournal, 20 iterations, one
//! machine failure between iterations 6 and 7, under every strategy.
//! Prints the committed-iteration timeline series the figure plots.
//!
//! Paper shape: BASE/REP/CKPT without failure run at three distinct slopes;
//! with a failure, Rebirth resumes at full speed after a short gap,
//! Migration after a similar gap but slightly slower afterwards (fewer
//! machines), CKPT pays a long rollback-and-replay detour.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, crash, hdfs, ramfs, run_ec, BenchOpts, Summary, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use std::time::Duration;

fn series(name: &str, s: &Summary) {
    print!("{name:<18}");
    for (iter, t) in &s.timeline {
        print!(" {iter}:{:.2}", t.as_secs_f64());
    }
    println!();
    if let Some(r) = s.recoveries.first() {
        println!(
            "{:<18} recovery {:.2}s ({})",
            "",
            r.total().as_secs_f64(),
            r.strategy
        );
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig12",
        "case study: execution timelines with one failure at iter 6",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::LJournal);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    let run = |ft, standbys, inject: bool, dfs: imitator_storage::Dfs| {
        run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                ft,
                standbys,
                detection_delay: Duration::from_millis(50),
                ..RunConfig::default()
            },
            if inject { vec![crash(2, 6)] } else { vec![] },
            dfs,
        )
    };
    let rep = |r| FtMode::Replication {
        tolerance: 1,
        selfish_opt: true,
        recovery: r,
    };
    println!("series format: iteration:wall-clock-seconds");
    series("BASE", &run(FtMode::None, 0, false, ramfs()));
    series(
        "REP",
        &run(rep(RecoveryStrategy::Rebirth), 1, false, ramfs()),
    );
    series(
        "CKPT/4",
        &run(
            FtMode::Checkpoint {
                interval: 4,
                incremental: false,
            },
            1,
            false,
            hdfs(),
        ),
    );
    series(
        "REP+REBIRTH",
        &run(rep(RecoveryStrategy::Rebirth), 1, true, ramfs()),
    );
    series(
        "REP+MIGRATION",
        &run(rep(RecoveryStrategy::Migration), 0, true, ramfs()),
    );
    series(
        "CKPT/4+FAIL",
        &run(
            FtMode::Checkpoint {
                interval: 4,
                incremental: false,
            },
            1,
            true,
            hdfs(),
        ),
    );
}

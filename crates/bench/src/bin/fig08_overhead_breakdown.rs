//! Fig. 8: overhead breakdown of replication-based fault tolerance, with
//! and without the selfish-vertex optimisation: (a) extra replicas among
//! all replicas, (b) fault-tolerance-only sync records among all records.
//!
//! Paper shape: without the optimisation GWeb/LJournal pay up to ~3%
//! message overhead; with it everything drops below 0.1%.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, ramfs, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "fig08",
        "extra replicas & redundant messages, w/ and w/o selfish opt",
        &opts,
    );
    println!(
        "{:<10} {:>14} {:>14} {:>13} {:>13}",
        "dataset", "replicas w/o", "replicas w/", "msgs w/o", "msgs w/"
    );
    for d in Dataset::cyclops_suite() {
        let g = opts.cyclops_graph(d);
        let w = Workload::for_dataset(d, &g);
        let cut = HashEdgeCut.partition(&g, opts.nodes);
        let total_replicas: usize = g.vertices().map(|v| cut.replica_parts(v).len()).sum();
        let run = |selfish_opt| {
            run_ec(
                w,
                &g,
                &cut,
                RunConfig {
                    num_nodes: opts.nodes,
                    ft: FtMode::Replication {
                        tolerance: 1,
                        selfish_opt,
                        recovery: RecoveryStrategy::Migration,
                    },
                    ..RunConfig::default()
                },
                vec![],
                ramfs(),
            )
        };
        let without = run(false);
        let with = run(true);
        let frac = |extra: usize| 100.0 * extra as f64 / (total_replicas + extra).max(1) as f64;
        println!(
            "{:<10} {:>13.3}% {:>13.3}% {:>12.3}% {:>12.3}%",
            d.name(),
            frac(without.extra_replicas),
            frac(with.extra_replicas),
            100.0 * without.ft_comm.message_ratio(&without.comm),
            100.0 * with.ft_comm.message_ratio(&with.comm),
        );
    }
    println!("(replica columns count extra FT replicas among all replicas; the\n optimisation does not remove the replicas — it removes their sync traffic)");
}

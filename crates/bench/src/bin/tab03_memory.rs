//! Table 3: per-node memory consumption of the edge-cut engine without
//! fault tolerance and when tolerating 1, 2 or 3 failures (PageRank, Wiki).
//!
//! Paper shape: FT/1 costs ~30% more resident graph state (mirror full
//! state dominates under edge-cut because edges are replicated into it);
//! each additional mirror adds less.

use imitator::{FtMode, RecoveryStrategy, RunConfig};
use imitator_bench::{banner, ramfs, run_ec, BenchOpts, Workload};
use imitator_graph::gen::Dataset;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn main() {
    let opts = BenchOpts::from_env();
    banner(
        "tab03",
        "per-node memory vs fault-tolerance level (PageRank, Wiki)",
        &opts,
    );
    let g = opts.cyclops_graph(Dataset::Wiki);
    let cut = HashEdgeCut.partition(&g, opts.nodes);
    println!(
        "{:<8} {:>14} {:>14} {:>9}",
        "config", "max node (MiB)", "total (MiB)", "vs base"
    );
    let mut base_total = 0usize;
    for k in 0usize..=3 {
        let ft = if k == 0 {
            FtMode::None
        } else {
            FtMode::Replication {
                tolerance: k,
                selfish_opt: true,
                recovery: RecoveryStrategy::Migration,
            }
        };
        let s = run_ec(
            Workload::PageRank,
            &g,
            &cut,
            RunConfig {
                num_nodes: opts.nodes,
                max_iters: 1,
                ft,
                ..RunConfig::default()
            },
            vec![],
            ramfs(),
        );
        let total: usize = s.mem_bytes.iter().sum();
        let max = s.mem_bytes.iter().copied().max().unwrap_or(0);
        if k == 0 {
            base_total = total;
        }
        let mib = |b: usize| b as f64 / (1024.0 * 1024.0);
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>8.1}%",
            if k == 0 {
                "w/o FT".to_owned()
            } else {
                format!("FT/{k}")
            },
            mib(max),
            mib(total),
            100.0 * (total as f64 / base_total as f64 - 1.0)
        );
    }
}

//! Experiment harness for the Imitator reproduction.
//!
//! One binary per table and figure of the paper's evaluation (see
//! `DESIGN.md` §3 for the index); this library holds what they share:
//! scaled dataset construction, workload dispatch over the four algorithms,
//! engine-agnostic run summaries, and table printing.
//!
//! Every binary honours three environment variables:
//!
//! * `IMITATOR_SCALE` — multiplies the default dataset sizes (default 1.0;
//!   the defaults are ~1/100th of the paper's sizes for the Cyclops suite
//!   and ~1/1000th for the PowerLyra suite);
//! * `IMITATOR_NODES` — simulated cluster size (default 8);
//! * `IMITATOR_SEED` — generator seed (default 42).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use imitator::{run_edge_cut, run_vertex_cut, RunConfig, RunReport};
use imitator_algos::{Als, CommunityDetection, PageRank, Sssp};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_graph::{gen, gen::Dataset, Graph, Vid};
use imitator_metrics::{CommBreakdown, CommStats, SuspicionStats};
use imitator_partition::{EdgeCut, VertexCut};
use imitator_storage::{Dfs, DfsConfig};

pub use imitator::RecoveryReport;

/// Common experiment options, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Multiplier on the default dataset sizes.
    pub scale: f64,
    /// Simulated cluster size.
    pub nodes: usize,
    /// Generator seed.
    pub seed: u64,
}

impl BenchOpts {
    /// Reads `IMITATOR_SCALE` / `IMITATOR_NODES` / `IMITATOR_SEED`.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        BenchOpts {
            scale: get("IMITATOR_SCALE")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0),
            nodes: get("IMITATOR_NODES")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8),
            seed: get("IMITATOR_SEED")
                .and_then(|v| v.parse().ok())
                .unwrap_or(42),
        }
    }

    /// Generates a Cyclops-suite dataset at bench scale (~1/100 paper size).
    pub fn cyclops_graph(&self, d: Dataset) -> Graph {
        d.generate(0.01 * self.scale, self.seed)
    }

    /// Generates a PowerLyra-suite dataset at bench scale (~1/1000 paper
    /// size — these graphs are an order of magnitude larger).
    pub fn powerlyra_graph(&self, d: Dataset) -> Graph {
        d.generate(0.001 * self.scale, self.seed)
    }
}

/// Prints the experiment banner.
pub fn banner(id: &str, what: &str, opts: &BenchOpts) {
    println!("== {id}: {what}");
    println!(
        "   (scale {} · {} nodes · seed {} — shapes, not absolute numbers, are the contract)",
        opts.scale, opts.nodes, opts.seed
    );
}

/// The paper's workload per dataset (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// PageRank, fixed 20 iterations.
    PageRank,
    /// Alternating least squares on a bipartite rating graph.
    Als {
        /// User/item ID boundary.
        num_users: usize,
    },
    /// Label-propagation community detection.
    CommunityDetection,
    /// Single-source shortest paths from vertex 0.
    Sssp,
}

impl Workload {
    /// The workload the paper pairs with `d` (Table 1).
    pub fn for_dataset(d: Dataset, g: &Graph) -> Workload {
        match d {
            Dataset::SynGl => Workload::Als {
                num_users: g.num_vertices() * 10 / 11,
            },
            Dataset::Dblp => Workload::CommunityDetection,
            Dataset::RoadCa => Workload::Sssp,
            _ => Workload::PageRank,
        }
    }

    /// Iteration budget matching the paper's setup (PageRank runs 20
    /// iterations; the others until quiescence).
    pub fn max_iters(&self) -> u64 {
        match self {
            Workload::PageRank => 20,
            Workload::Als { .. } => 10,
            Workload::CommunityDetection => 30,
            Workload::Sssp => 5_000,
        }
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::PageRank => "PageRank",
            Workload::Als { .. } => "ALS",
            Workload::CommunityDetection => "CD",
            Workload::Sssp => "SSSP",
        }
    }
}

/// Engine-agnostic, value-type-agnostic run outcome.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Committed iterations.
    pub iterations: u64,
    /// Total wall time.
    pub elapsed: Duration,
    /// Mean committed-iteration time.
    pub avg_iter: Duration,
    /// Total traffic.
    pub comm: CommStats,
    /// Fault-tolerance-only traffic.
    pub ft_comm: CommStats,
    /// Time spent checkpointing.
    pub ckpt_time: Duration,
    /// Recovery episodes.
    pub recoveries: Vec<RecoveryReport>,
    /// Per-node resident graph bytes after load.
    pub mem_bytes: Vec<usize>,
    /// Extra FT replicas created at load.
    pub extra_replicas: usize,
    /// `(iteration, offset)` commit stamps.
    pub timeline: Vec<(u64, Duration)>,
    /// Redundant sync records suppressed across the run.
    pub suppressed_syncs: u64,
    /// Fabric traffic split by kind (sync / gather / recovery / control /
    /// heartbeat) — the denominator for heartbeat-overhead figures.
    pub fabric: CommBreakdown,
    /// Failure-detector activity (all-zero under the oracle detector).
    pub suspicion: SuspicionStats,
}

fn summarize<V>(r: RunReport<V>) -> Summary {
    Summary {
        iterations: r.iterations,
        elapsed: r.elapsed,
        avg_iter: r.avg_iteration(),
        comm: r.comm,
        ft_comm: r.ft_comm,
        ckpt_time: r.ckpt_time,
        recoveries: r.recoveries,
        mem_bytes: r.mem_bytes,
        extra_replicas: r.extra_replicas,
        timeline: r.timeline,
        suppressed_syncs: r.suppressed_syncs,
        fabric: r.fabric,
        suspicion: r.suspicion,
    }
}

impl Summary {
    /// Total recovery wall time across episodes.
    pub fn recovery_total(&self) -> Duration {
        self.recoveries.iter().map(RecoveryReport::total).sum()
    }

    /// Runtime overhead of this run relative to `base`, in percent.
    pub fn overhead_vs(&self, base: &Summary) -> f64 {
        100.0 * (self.elapsed.as_secs_f64() / base.elapsed.as_secs_f64() - 1.0)
    }
}

/// Runs `workload` on the edge-cut engine.
pub fn run_ec(
    workload: Workload,
    g: &Graph,
    cut: &EdgeCut,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> Summary {
    let mut cfg = cfg;
    cfg.max_iters = cfg.max_iters.min(workload.max_iters());
    match workload {
        Workload::PageRank => summarize(run_edge_cut(
            g,
            cut,
            Arc::new(PageRank::new(0.85, 0.0)),
            cfg,
            failures,
            dfs,
        )),
        Workload::Als { num_users } => summarize(run_edge_cut(
            g,
            cut,
            Arc::new(Als::for_bipartite(8, 0.1, 1e-4, num_users)),
            cfg,
            failures,
            dfs,
        )),
        Workload::CommunityDetection => summarize(run_edge_cut(
            g,
            cut,
            Arc::new(CommunityDetection),
            cfg,
            failures,
            dfs,
        )),
        Workload::Sssp => summarize(run_edge_cut(
            g,
            cut,
            Arc::new(Sssp::from_source(Vid::new(0))),
            cfg,
            failures,
            dfs,
        )),
    }
}

/// Runs `workload` on the vertex-cut engine.
pub fn run_vc(
    workload: Workload,
    g: &Graph,
    cut: &VertexCut,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> Summary {
    let mut cfg = cfg;
    cfg.max_iters = cfg.max_iters.min(workload.max_iters());
    match workload {
        Workload::PageRank => summarize(run_vertex_cut(
            g,
            cut,
            Arc::new(PageRank::new(0.85, 0.0)),
            cfg,
            failures,
            dfs,
        )),
        Workload::Als { num_users } => summarize(run_vertex_cut(
            g,
            cut,
            Arc::new(Als::for_bipartite(8, 0.1, 1e-4, num_users)),
            cfg,
            failures,
            dfs,
        )),
        Workload::CommunityDetection => summarize(run_vertex_cut(
            g,
            cut,
            Arc::new(CommunityDetection),
            cfg,
            failures,
            dfs,
        )),
        Workload::Sssp => summarize(run_vertex_cut(
            g,
            cut,
            Arc::new(Sssp::from_source(Vid::new(0))),
            cfg,
            failures,
            dfs,
        )),
    }
}

/// Number of repetitions for wall-clock measurements
/// (`IMITATOR_REPEAT`, default 3); reports keep the fastest run, the
/// standard defence against scheduler noise on a shared machine.
pub fn reps() -> usize {
    std::env::var("IMITATOR_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Runs `f` `n` times and keeps the summary with the smallest wall time.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn best_of<F: FnMut() -> Summary>(n: usize, mut f: F) -> Summary {
    assert!(n > 0, "need at least one repetition");
    let mut best: Option<Summary> = None;
    for _ in 0..n {
        let s = f();
        if best.as_ref().is_none_or(|b| s.elapsed < b.elapsed) {
            best = Some(s);
        }
    }
    best.expect("n > 0")
}

/// A single crash of `node` at `iteration` (before the barrier).
pub fn crash(node: usize, iteration: u64) -> FailurePlan {
    FailurePlan {
        node: NodeId::from_index(node),
        iteration,
        point: FailPoint::BeforeBarrier,
    }
}

/// The HDFS-like DFS used by checkpoint and edge-ckpt experiments.
pub fn hdfs() -> Dfs {
    Dfs::new(DfsConfig::hdfs_like())
}

/// A cost-free DFS for experiments where storage is not under test.
pub fn ramfs() -> Dfs {
    Dfs::new(DfsConfig::instant())
}

/// The synthetic power-law family of Table 4: `(α, graph)` at bench scale.
pub fn alpha_family(opts: &BenchOpts) -> Vec<(f64, Graph)> {
    [2.2, 2.1, 2.0, 1.9, 1.8]
        .into_iter()
        .map(|alpha| {
            (
                alpha,
                gen::power_law_natural((10_000.0 * opts.scale) as usize, alpha, opts.seed),
            )
        })
        .collect()
}

/// Formats a duration as seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a duration in milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Formats bytes as GiB.
pub fn gib(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator::FtMode;
    use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

    #[test]
    fn workload_mapping_matches_table1() {
        let opts = BenchOpts {
            scale: 0.1,
            nodes: 4,
            seed: 1,
        };
        let g = opts.cyclops_graph(Dataset::Dblp);
        assert_eq!(
            Workload::for_dataset(Dataset::Dblp, &g),
            Workload::CommunityDetection
        );
        assert_eq!(Workload::for_dataset(Dataset::RoadCa, &g), Workload::Sssp);
        assert_eq!(Workload::for_dataset(Dataset::GWeb, &g), Workload::PageRank);
        assert!(matches!(
            Workload::for_dataset(Dataset::SynGl, &g),
            Workload::Als { .. }
        ));
    }

    #[test]
    fn run_ec_produces_consistent_summary() {
        let opts = BenchOpts {
            scale: 0.05,
            nodes: 3,
            seed: 2,
        };
        let g = opts.cyclops_graph(Dataset::GWeb);
        let cut = HashEdgeCut.partition(&g, 3);
        let cfg = RunConfig {
            num_nodes: 3,
            max_iters: 5,
            ft: FtMode::None,
            ..RunConfig::default()
        };
        let s = run_ec(Workload::PageRank, &g, &cut, cfg, vec![], ramfs());
        assert_eq!(s.iterations, 5);
        assert!(s.comm.messages > 0);
        assert_eq!(s.mem_bytes.len(), 3);
    }

    #[test]
    fn alpha_family_density_increases() {
        let opts = BenchOpts {
            scale: 0.2,
            nodes: 4,
            seed: 3,
        };
        let fam = alpha_family(&opts);
        assert_eq!(fam.len(), 5);
        for w in fam.windows(2) {
            assert!(w[1].1.num_edges() > w[0].1.num_edges());
        }
    }
}

//! Criterion micro-benchmarks: snapshot and edge-ckpt codec throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use imitator_graph::Vid;
use imitator_storage::codec::{decode, Encode};

fn bench_codec(c: &mut Criterion) {
    let values: Vec<(u32, f64)> = (0..100_000u32).map(|i| (i, f64::from(i) * 0.5)).collect();
    let bytes = values.to_bytes();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_100k_pairs", |b| b.iter(|| values.to_bytes()));
    group.bench_function("decode_100k_pairs", |b| {
        b.iter(|| decode::<Vec<(u32, f64)>>(&bytes).unwrap())
    });
    group.finish();

    let edges: Vec<(Vid, Vid, f32)> = (0..100_000u32)
        .map(|i| (Vid::new(i), Vid::new(i.wrapping_mul(7) % 100_000), 1.5))
        .collect();
    c.bench_function("edge_ckpt_roundtrip_100k", |b| {
        b.iter(|| {
            // Mirror what the core crate's edge-ckpt codec does: triples of
            // raw ids + weight.
            let mut buf = Vec::new();
            (edges.len() as u32).encode(&mut buf);
            for &(s, d, w) in &edges {
                s.raw().encode(&mut buf);
                d.raw().encode(&mut buf);
                w.encode(&mut buf);
            }
            buf
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);

//! Criterion micro-benchmark: per-superstep fan-out cost — spawning fresh
//! scoped threads every phase (the pre-pool driver) vs dispatching to the
//! persistent worker pool the driver now keeps parked between supersteps.
//! The work per job is deliberately small so the numbers isolate
//! spawn/wake/park latency rather than compute throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imitator_engine::WorkerPool;

fn bench_dispatch(c: &mut Criterion) {
    let data: Arc<Vec<u64>> = Arc::new((0..64_000u64).collect());
    let mut group = c.benchmark_group("superstep_fanout");
    for threads in [2usize, 4, 8] {
        let chunk = data.len() / threads;
        group.bench_function(BenchmarkId::new("scoped_spawn", threads), |b| {
            b.iter(|| {
                let mut outs = vec![0u64; threads];
                std::thread::scope(|s| {
                    for (i, out) in outs.iter_mut().enumerate() {
                        let d = &data;
                        s.spawn(move || {
                            *out = d[i * chunk..(i + 1) * chunk].iter().sum();
                        });
                    }
                });
                outs.iter().sum::<u64>()
            })
        });
        group.bench_function(BenchmarkId::new("pool_dispatch", threads), |b| {
            let pool = WorkerPool::new(threads);
            b.iter(|| {
                let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..threads)
                    .map(|i| {
                        let d = Arc::clone(&data);
                        Box::new(move || d[i * chunk..(i + 1) * chunk].iter().sum::<u64>())
                            as Box<dyn FnOnce() -> u64 + Send>
                    })
                    .collect();
                pool.run(jobs).into_iter().sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);

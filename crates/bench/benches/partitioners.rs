//! Criterion micro-benchmarks: partitioner throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imitator_graph::gen;
use imitator_partition::{
    EdgeCutPartitioner, FennelEdgeCut, GridVertexCut, HashEdgeCut, HybridVertexCut,
    RandomVertexCut, VertexCutPartitioner,
};

fn bench_partitioners(c: &mut Criterion) {
    let g = gen::power_law(20_000, 2.0, 10, 7);
    let parts = 16;
    let mut group = c.benchmark_group("partition");
    group.bench_function(BenchmarkId::new("edge-cut", "hash"), |b| {
        b.iter(|| HashEdgeCut.partition(&g, parts))
    });
    group.bench_function(BenchmarkId::new("edge-cut", "fennel"), |b| {
        b.iter(|| FennelEdgeCut::default().partition(&g, parts))
    });
    group.bench_function(BenchmarkId::new("vertex-cut", "random"), |b| {
        b.iter(|| RandomVertexCut.partition(&g, parts))
    });
    group.bench_function(BenchmarkId::new("vertex-cut", "grid"), |b| {
        b.iter(|| GridVertexCut.partition(&g, parts))
    });
    group.bench_function(BenchmarkId::new("vertex-cut", "hybrid"), |b| {
        b.iter(|| HybridVertexCut::with_threshold(40).partition(&g, parts))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);

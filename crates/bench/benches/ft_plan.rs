//! Criterion micro-benchmark: fault-tolerance placement (§4) throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imitator::plan::compute_ft_plan;
use imitator_graph::gen;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

fn bench_plan(c: &mut Criterion) {
    let g = gen::power_law_selfish(50_000, 2.0, 8, 0.15, 11);
    let cut = HashEdgeCut.partition(&g, 16);
    let mut group = c.benchmark_group("compute_ft_plan");
    for k in [1usize, 3] {
        group.bench_function(BenchmarkId::new("tolerance", k), |b| {
            b.iter(|| compute_ft_plan(&g, &cut, k, true, true, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);

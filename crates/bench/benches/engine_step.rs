//! Criterion micro-benchmarks: one engine superstep's compute work per
//! algorithm (single-node slices of the distributed iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imitator_algos::{CommunityDetection, PageRank, Sssp};
use imitator_engine::{
    build_edge_cut_graphs, build_vertex_cut_graphs, ec_compute, ec_compute_par, ec_compute_scan,
    vc_partial_gather, vc_partial_gather_par, Degrees, FtPlan, VcGatherIndex, VertexProgram,
};
use imitator_graph::{gen, Vid};
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner};

fn bench_ec_compute(c: &mut Criterion) {
    let g = gen::power_law(20_000, 2.0, 10, 3);
    let cut = HashEdgeCut.partition(&g, 4);
    let plan = FtPlan::none(g.num_vertices());
    let degrees = Degrees::of(&g);
    let mut group = c.benchmark_group("ec_compute");

    let pr = PageRank::new(0.85, 0.0);
    let lgs = build_edge_cut_graphs(&g, &cut, &plan, &pr, &degrees);
    group.bench_function(BenchmarkId::new("step", "pagerank"), |b| {
        b.iter(|| ec_compute(&lgs[0], &pr, &degrees, 0))
    });

    let cd = CommunityDetection;
    let lgs = build_edge_cut_graphs(&g, &cut, &plan, &cd, &degrees);
    group.bench_function(BenchmarkId::new("step", "cd"), |b| {
        b.iter(|| ec_compute(&lgs[0], &cd, &degrees, 0))
    });

    let sssp = Sssp::from_source(Vid::new(0));
    let lgs = build_edge_cut_graphs(&g, &cut, &plan, &sssp, &degrees);
    group.bench_function(BenchmarkId::new("step", "sssp-dense"), |b| {
        b.iter(|| ec_compute(&lgs[0], &sssp, &degrees, 0))
    });
    group.finish();
}

/// Sparse frontier vs the historical full scan, and the scoped-thread pool
/// vs serial, on the same dense PageRank superstep.
fn bench_ec_variants(c: &mut Criterion) {
    let g = gen::power_law(20_000, 2.0, 10, 3);
    let cut = HashEdgeCut.partition(&g, 4);
    let plan = FtPlan::none(g.num_vertices());
    let degrees = Degrees::of(&g);
    let pr = PageRank::new(0.85, 0.0);
    let lgs = build_edge_cut_graphs(&g, &cut, &plan, &pr, &degrees);
    let mut group = c.benchmark_group("ec_compute_variants");
    group.bench_function(BenchmarkId::new("pagerank", "scan"), |b| {
        b.iter(|| ec_compute_scan(&lgs[0], &pr, &degrees, 0))
    });
    group.bench_function(BenchmarkId::new("pagerank", "frontier"), |b| {
        b.iter(|| ec_compute(&lgs[0], &pr, &degrees, 0))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("pagerank-par", threads), |b| {
            b.iter(|| ec_compute_par(&lgs[0], &pr, &degrees, 0, threads))
        });
    }
    group.finish();
}

fn bench_vc_gather(c: &mut Criterion) {
    let g = gen::power_law(20_000, 2.0, 10, 5);
    let cut = RandomVertexCut.partition(&g, 4);
    let plan = FtPlan::none(g.num_vertices());
    let degrees = Degrees::of(&g);
    let pr = PageRank::new(0.85, 0.0);
    let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &pr, &degrees);
    c.bench_function("vc_partial_gather/pagerank", |b| {
        b.iter(|| vc_partial_gather(&lgs[0], &pr))
    });
    // Dst-grouped zero-alloc gather, serial and parallel.
    let index = VcGatherIndex::build(&lgs[0]);
    let mut group = c.benchmark_group("vc_gather_variants");
    for threads in [1usize, 2, 4] {
        let mut partials = Vec::new();
        group.bench_function(BenchmarkId::new("pagerank-grouped", threads), |b| {
            b.iter(|| vc_partial_gather_par(&lgs[0], &pr, &index, threads, &mut partials))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let g = gen::power_law(20_000, 2.0, 10, 9);
    let cut = HashEdgeCut.partition(&g, 8);
    let degrees = Degrees::of(&g);
    let pr = PageRank::new(0.85, 0.0);
    let none = FtPlan::none(g.num_vertices());
    c.bench_function("build_edge_cut_graphs/no-ft", |b| {
        b.iter(|| build_edge_cut_graphs(&g, &cut, &none, &pr, &degrees))
    });
    let _ = pr.init(Vid::new(0), &degrees);
}

criterion_group!(
    benches,
    bench_ec_compute,
    bench_ec_variants,
    bench_vc_gather,
    bench_build
);
criterion_main!(benches);

//! Criterion micro-benchmark: the fast-path communication fabric — lock-free
//! route lookup on send, O(1) whole-queue inbox drains, and barrier round
//! trips — at the cluster sizes the simulator actually runs (8/16/50).
//!
//! The send path should not slow down with cluster size (the sender table is
//! an indexed slice behind an epoch check, not a locked map), and a drain
//! should cost one lock regardless of queue depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imitator_cluster::{Cluster, NodeId};
use std::time::{Duration, Instant};

const BATCH: u64 = 64;

/// Pairwise throughput: `BATCH` sends into one peer's inbox, then a single
/// drain takes the whole queue.
fn bench_send_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_send_drain");
    for nodes in [8usize, 16, 50] {
        group.throughput(Throughput::Elements(BATCH));
        group.bench_function(BenchmarkId::new("nodes", nodes), |b| {
            let cluster: Cluster<u64> = Cluster::new(nodes, 0, Duration::ZERO);
            let sender = cluster.take_ctx(NodeId::new(0));
            let receiver = cluster.take_ctx(NodeId::new(1));
            b.iter_custom(|rounds| {
                let start = Instant::now();
                for r in 0..rounds {
                    for i in 0..BATCH {
                        sender.send(NodeId::new(1), r.wrapping_mul(BATCH) + i);
                    }
                    let got = receiver.drain();
                    assert_eq!(got.len(), BATCH as usize);
                }
                start.elapsed()
            })
        });
    }
    group.finish();
}

/// One superstep's worth of fan-out: node 0 routes one message to every
/// peer, every peer drains — exercises the route table across destinations.
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_fanout_round");
    for nodes in [8usize, 16, 50] {
        group.throughput(Throughput::Elements(nodes as u64 - 1));
        group.bench_function(BenchmarkId::new("nodes", nodes), |b| {
            let cluster: Cluster<u64> = Cluster::new(nodes, 0, Duration::ZERO);
            let ctxs: Vec<_> = (0..nodes)
                .map(|p| cluster.take_ctx(NodeId::from_index(p)))
                .collect();
            b.iter_custom(|rounds| {
                let start = Instant::now();
                for r in 0..rounds {
                    for p in 1..nodes {
                        ctxs[0].send(NodeId::from_index(p), r);
                    }
                    for ctx in &ctxs[1..] {
                        assert_eq!(ctx.drain().len(), 1);
                    }
                }
                start.elapsed()
            })
        });
    }
    group.finish();
}

/// Barrier round-trip latency with every node on its own thread.
fn bench_barrier_rtt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_barrier_rtt");
    for nodes in [8usize, 16, 50] {
        group.bench_function(BenchmarkId::new("nodes", nodes), |b| {
            b.iter_custom(|rounds| {
                let cluster: Cluster<()> = Cluster::new(nodes, 0, Duration::ZERO);
                let peers: Vec<_> = (1..nodes)
                    .map(|p| {
                        let ctx = cluster.take_ctx(NodeId::from_index(p));
                        std::thread::spawn(move || {
                            for _ in 0..rounds {
                                ctx.enter_barrier();
                            }
                        })
                    })
                    .collect();
                let me = cluster.take_ctx(NodeId::new(0));
                let start = Instant::now();
                for _ in 0..rounds {
                    me.enter_barrier();
                }
                let elapsed = start.elapsed();
                for p in peers {
                    p.join().expect("peer thread");
                }
                elapsed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_send_drain, bench_fanout, bench_barrier_rtt);
criterion_main!(benches);

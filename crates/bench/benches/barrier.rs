//! Criterion micro-benchmark: coordination-service barrier round trips —
//! the fixed cost every BSP superstep pays twice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imitator_cluster::{Cluster, NodeId};
use std::time::{Duration, Instant};

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_round");
    for nodes in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("nodes", nodes), |b| {
            b.iter_custom(|rounds| {
                let cluster: Cluster<()> = Cluster::new(nodes, 0, Duration::ZERO);
                let peers: Vec<_> = (1..nodes)
                    .map(|p| {
                        let ctx = cluster.take_ctx(NodeId::from_index(p));
                        std::thread::spawn(move || {
                            for _ in 0..rounds {
                                ctx.enter_barrier();
                            }
                        })
                    })
                    .collect();
                let me = cluster.take_ctx(NodeId::new(0));
                let start = Instant::now();
                for _ in 0..rounds {
                    me.enter_barrier();
                }
                let elapsed = start.elapsed();
                for p in peers {
                    p.join().expect("peer thread");
                }
                elapsed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrier);
criterion_main!(benches);

//! Property tests for the measurement substrate: online summaries agree
//! with naive recomputation, phase timers are order- and merge-consistent,
//! and memory sizing is monotone in content.

use std::time::Duration;

use proptest::prelude::*;

use imitator_metrics::{CommStats, MemSize, PhaseTimes, Summary};

proptest! {
    #[test]
    fn summary_matches_naive_statistics(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: Summary = xs.iter().copied().collect();
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let naive_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let naive_var = xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        prop_assert_eq!(s.min(), naive_min);
        prop_assert_eq!(s.max(), naive_max);
        prop_assert!((s.stddev() - naive_var.sqrt()).abs() < 1e-5 * (1.0 + naive_var.sqrt()));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn summary_is_insensitive_to_order(mut xs in proptest::collection::vec(0f64..1e3, 2..50)) {
        let a: Summary = xs.iter().copied().collect();
        xs.reverse();
        let b: Summary = xs.iter().copied().collect();
        prop_assert!((a.mean() - b.mean()).abs() < 1e-9);
        prop_assert_eq!(a.min(), b.min());
        prop_assert_eq!(a.max(), b.max());
    }

    #[test]
    fn comm_stats_add_is_commutative_and_associative(
        (a, b, c) in (any::<(u32, u32)>(), any::<(u32, u32)>(), any::<(u32, u32)>())
    ) {
        let s = |p: (u32, u32)| CommStats::new(u64::from(p.0), u64::from(p.1));
        prop_assert_eq!(s(a) + s(b), s(b) + s(a));
        prop_assert_eq!((s(a) + s(b)) + s(c), s(a) + (s(b) + s(c)));
    }

    #[test]
    fn phase_times_total_equals_sum_of_records(
        records in proptest::collection::vec(("[a-d]", 0u64..10_000), 0..50)
    ) {
        let mut p = PhaseTimes::new();
        let mut expected = Duration::ZERO;
        for (name, micros) in &records {
            let d = Duration::from_micros(*micros);
            p.record(name, d);
            expected += d;
        }
        prop_assert_eq!(p.total(), expected);
        prop_assert!(p.len() <= 4); // names drawn from four letters
    }

    #[test]
    fn phase_times_merge_is_total_preserving(
        a in proptest::collection::vec(("[a-c]", 0u64..1_000), 0..20),
        b in proptest::collection::vec(("[a-c]", 0u64..1_000), 0..20)
    ) {
        let build = |records: &[(String, u64)]| {
            let mut p = PhaseTimes::new();
            for (n, us) in records {
                p.record(n, Duration::from_micros(*us));
            }
            p
        };
        let pa = build(&a);
        let pb = build(&b);
        let mut merged = pa.clone();
        merged.merge(&pb);
        prop_assert_eq!(merged.total(), pa.total() + pb.total());
    }

    #[test]
    fn vec_mem_size_is_monotone_in_len(xs in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut shorter = xs.clone();
        shorter.truncate(xs.len() / 2);
        shorter.shrink_to_fit();
        let mut full = xs;
        full.shrink_to_fit();
        prop_assert!(full.mem_bytes() >= shorter.mem_bytes());
    }

    #[test]
    fn nested_heap_accounting_is_additive(inner_sizes in proptest::collection::vec(0usize..64, 0..20)) {
        let v: Vec<Vec<u8>> = inner_sizes.iter().map(|&n| vec![0u8; n]).collect();
        let expected_inner: usize = v.iter().map(|i| i.capacity()).sum();
        let expected = std::mem::size_of::<Vec<Vec<u8>>>()
            + v.capacity() * std::mem::size_of::<Vec<u8>>()
            + expected_inner;
        prop_assert_eq!(v.mem_bytes(), expected);
    }
}

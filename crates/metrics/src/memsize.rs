//! Deep memory-size accounting.
//!
//! The paper measures memory behaviour with `jstat` on the JVM (Tables 3
//! and 7). We have no JVM; instead every runtime structure implements
//! [`MemSize`], a recursive "bytes resident on the heap plus inline size"
//! estimate, which gives the same quantity (bytes of graph state held by a
//! node) without garbage-collector noise.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Deep size of a value in bytes: inline size plus owned heap allocations.
///
/// Implementations should count capacity (allocated), not just length, for
/// growable containers — that matches what a memory profiler observes.
///
/// # Examples
///
/// ```
/// use imitator_metrics::MemSize;
///
/// let v: Vec<u32> = Vec::with_capacity(16);
/// // 16 slots * 4 bytes + the Vec header itself.
/// assert_eq!(v.mem_bytes(), 16 * 4 + std::mem::size_of::<Vec<u32>>());
/// ```
pub trait MemSize {
    /// Bytes owned by `self`, including `size_of::<Self>()` for the inline part.
    fn mem_bytes(&self) -> usize;

    /// Bytes owned by `self` beyond its inline representation (heap only).
    ///
    /// Container impls use this to avoid double-counting the inline part of
    /// elements that are stored inline in the container's buffer.
    fn heap_bytes(&self) -> usize {
        self.mem_bytes() - std::mem::size_of_val(self)
    }
}

macro_rules! impl_memsize_inline {
    ($($t:ty),* $(,)?) => {
        $(impl MemSize for $t {
            fn mem_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            fn heap_bytes(&self) -> usize {
                0
            }
        })*
    };
}

impl_memsize_inline!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl MemSize for String {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.capacity()
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Option<T>>() + self.as_ref().map_or(0, MemSize::heap_bytes)
    }
}

impl<T: MemSize> MemSize for Box<T> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Box<T>>() + self.as_ref().mem_bytes()
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn mem_bytes(&self) -> usize {
        let slots = self.capacity() * std::mem::size_of::<T>();
        let heap: usize = self.iter().map(MemSize::heap_bytes).sum();
        std::mem::size_of::<Vec<T>>() + slots + heap
    }
}

impl<A: MemSize, B: MemSize> MemSize for (A, B) {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<(A, B)>() + self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<A: MemSize, B: MemSize, C: MemSize> MemSize for (A, B, C) {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<(A, B, C)>()
            + self.0.heap_bytes()
            + self.1.heap_bytes()
            + self.2.heap_bytes()
    }
}

impl<K: MemSize, V: MemSize, S> MemSize for HashMap<K, V, S> {
    fn mem_bytes(&self) -> usize {
        // A hash table allocates ~(K, V) plus one control byte per slot; use
        // capacity when available via len-based lower bound * 8/7 load factor.
        let slot = std::mem::size_of::<(K, V)>() + 1;
        let slots = (self.capacity().max(self.len())) * slot;
        let heap: usize = self
            .iter()
            .map(|(k, v)| k.heap_bytes() + v.heap_bytes())
            .sum();
        std::mem::size_of::<Self>() + slots + heap
    }
}

impl<T: MemSize, S> MemSize for HashSet<T, S> {
    fn mem_bytes(&self) -> usize {
        let slot = std::mem::size_of::<T>() + 1;
        let slots = (self.capacity().max(self.len())) * slot;
        let heap: usize = self.iter().map(MemSize::heap_bytes).sum();
        std::mem::size_of::<Self>() + slots + heap
    }
}

impl<K: MemSize, V: MemSize> MemSize for BTreeMap<K, V> {
    fn mem_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<(K, V)>() + 2 * std::mem::size_of::<usize>();
        let heap: usize = self
            .iter()
            .map(|(k, v)| k.heap_bytes() + v.heap_bytes())
            .sum();
        std::mem::size_of::<Self>() + self.len() * per_entry + heap
    }
}

impl<T: MemSize> MemSize for [T] {
    fn mem_bytes(&self) -> usize {
        self.iter().map(MemSize::mem_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_inline_sized() {
        assert_eq!(0u64.mem_bytes(), 8);
        assert_eq!(true.mem_bytes(), 1);
        assert_eq!(1.5f64.heap_bytes(), 0);
    }

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u32> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(v.mem_bytes(), std::mem::size_of::<Vec<u32>>() + 100 * 4);
    }

    #[test]
    fn nested_vec_counts_inner_heap() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let expected = std::mem::size_of::<Vec<Vec<u8>>>()
            + 2 * std::mem::size_of::<Vec<u8>>() // outer slots
            + 10
            + 20; // inner heaps
        assert_eq!(v.mem_bytes(), expected);
    }

    #[test]
    fn string_counts_capacity() {
        let s = String::with_capacity(64);
        assert_eq!(s.mem_bytes(), std::mem::size_of::<String>() + 64);
    }

    #[test]
    fn option_none_is_inline() {
        let none: Option<Vec<u8>> = None;
        assert_eq!(none.mem_bytes(), std::mem::size_of::<Option<Vec<u8>>>());
    }

    #[test]
    fn option_some_adds_heap_only_once() {
        let some: Option<Vec<u8>> = Some(Vec::with_capacity(8));
        assert_eq!(some.mem_bytes(), std::mem::size_of::<Option<Vec<u8>>>() + 8);
    }

    #[test]
    fn hashmap_is_at_least_entries() {
        let mut m = HashMap::new();
        for i in 0..10u64 {
            m.insert(i, i);
        }
        assert!(m.mem_bytes() >= 10 * 16);
    }

    #[test]
    fn tuple_counts_components() {
        let t = (1u64, String::with_capacity(32));
        assert_eq!(t.mem_bytes(), std::mem::size_of_val(&t) + 32);
    }
}

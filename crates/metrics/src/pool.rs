//! Worker-pool and pipelining observability.
//!
//! Each node runs a persistent worker pool and (by default) pipelines its
//! supersteps: a compute/gather chunk's sync batch is staged and shipped
//! while later chunks are still computing. [`PoolStats`] records how much
//! that machinery actually did — chunk jobs dispatched, peak worker
//! occupancy, envelopes shipped ahead of the tail fence, and main-thread
//! staging time that overlapped with outstanding compute — so run reports
//! can show whether multicore paid off rather than assuming it.

use std::time::Duration;

/// Per-node (mergeable to per-run) pool/pipelining counters.
///
/// # Examples
///
/// ```
/// use imitator_metrics::PoolStats;
/// use std::time::Duration;
///
/// let mut a = PoolStats { jobs: 10, peak_busy: 3, early_batches: 4, overlap: Duration::from_millis(2) };
/// let b = PoolStats { jobs: 5, peak_busy: 4, early_batches: 1, overlap: Duration::from_millis(9) };
/// a.merge(&b);
/// assert_eq!((a.jobs, a.peak_busy, a.early_batches), (15, 4, 5));
/// assert_eq!(a.overlap, Duration::from_millis(9));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Chunk jobs dispatched to the pool (counted even in inline mode).
    pub jobs: u64,
    /// Peak number of simultaneously busy workers (0 in inline mode —
    /// jobs run on the driving thread itself).
    pub peak_busy: u64,
    /// Sync/gather envelopes shipped *before* the phase's tail fence,
    /// i.e. while later chunks were still computing. 0 when pipelining
    /// is disabled.
    pub early_batches: u64,
    /// Main-thread staging/shipping time that overlapped with outstanding
    /// chunk compute (work the strict phase ordering used to serialize).
    pub overlap: Duration,
}

impl PoolStats {
    /// Merges another node's view: activity counters add, occupancy and
    /// overlap take the maximum (nodes run concurrently, so the run-level
    /// figure is the busiest node's).
    pub fn merge(&mut self, other: &Self) {
        self.jobs += other.jobs;
        self.early_batches += other.early_batches;
        self.peak_busy = self.peak_busy.max(other.peak_busy);
        self.overlap = self.overlap.max(other.overlap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_activity_and_maxes_occupancy() {
        let mut a = PoolStats {
            jobs: 7,
            peak_busy: 2,
            early_batches: 3,
            overlap: Duration::from_millis(5),
        };
        a.merge(&PoolStats {
            jobs: 1,
            peak_busy: 6,
            early_batches: 0,
            overlap: Duration::from_millis(1),
        });
        assert_eq!(a.jobs, 8);
        assert_eq!(a.peak_busy, 6);
        assert_eq!(a.early_batches, 3);
        assert_eq!(a.overlap, Duration::from_millis(5));
    }

    #[test]
    fn default_is_zero() {
        let p = PoolStats::default();
        assert_eq!((p.jobs, p.peak_busy, p.early_batches), (0, 0, 0));
        assert_eq!(p.overlap, Duration::ZERO);
    }
}

//! Recovery-attempt bookkeeping.
//!
//! A recovery episode may be interrupted by further failures: survivors
//! abort the in-flight attempt, enlarge the failure set, and restart. These
//! counters record how many attempts an episode took and how many of them
//! were aborted, so the run report can distinguish a clean single-pass
//! recovery from a cascading-failure scenario.

/// Attempt/abort counters for one recovery episode.
///
/// # Examples
///
/// ```
/// use imitator_metrics::RecoveryCounters;
///
/// let mut c = RecoveryCounters::default();
/// c.attempts = 3;
/// c.aborts = 2;
/// let other = RecoveryCounters { attempts: 1, aborts: 0 };
/// c.merge(&other);
/// assert_eq!((c.attempts, c.aborts), (3, 2));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Recovery attempts started (≥ 1 for any completed episode).
    pub attempts: u32,
    /// Attempts aborted because a barrier inside recovery reported new
    /// failures (`attempts - aborts` successful passes, normally 1).
    pub aborts: u32,
}

impl RecoveryCounters {
    /// Merges per-node views of the same episode. Nodes observe the same
    /// restart sequence, but a node that joined late (a reborn standby) may
    /// have seen fewer attempts — the cluster-wide figure is the maximum.
    pub fn merge(&mut self, other: &Self) {
        self.attempts = self.attempts.max(other.attempts);
        self.aborts = self.aborts.max(other.aborts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_maxima() {
        let mut a = RecoveryCounters {
            attempts: 2,
            aborts: 1,
        };
        a.merge(&RecoveryCounters {
            attempts: 4,
            aborts: 0,
        });
        assert_eq!(
            a,
            RecoveryCounters {
                attempts: 4,
                aborts: 1
            }
        );
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(RecoveryCounters::default().attempts, 0);
    }
}

//! Message and byte accounting.
//!
//! The paper quantifies the cost of fault tolerance partly as *redundant
//! messages among the total messages during normal execution* (Fig. 8(b)) and
//! as *communication cost per iteration in GB* (Table 6). Engines record every
//! logical message through these counters, tagging fault-tolerance-only
//! traffic separately from baseline traffic so both numerator and denominator
//! of those ratios are available.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// A plain (single-threaded) message/byte tally.
///
/// # Examples
///
/// ```
/// use imitator_metrics::CommStats;
///
/// let mut a = CommStats::new(10, 4096);
/// a.record(5, 2048);
/// assert_eq!(a.messages, 15);
/// assert_eq!(a.bytes, 6144);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CommStats {
    /// Number of logical messages.
    pub messages: u64,
    /// Total payload bytes (wire-size estimate).
    pub bytes: u64,
}

impl CommStats {
    /// Creates a tally with the given initial counts.
    pub fn new(messages: u64, bytes: u64) -> Self {
        CommStats { messages, bytes }
    }

    /// Adds `messages` messages totalling `bytes` bytes.
    pub fn record(&mut self, messages: u64, bytes: u64) {
        self.messages += messages;
        self.bytes += bytes;
    }

    /// Returns the fraction `self.messages / total.messages`, or 0.0 when
    /// `total` is empty. Used for the "redundant message" ratios of Fig. 8(b).
    pub fn message_ratio(&self, total: &CommStats) -> f64 {
        if total.messages == 0 {
            0.0
        } else {
            self.messages as f64 / total.messages as f64
        }
    }

    /// Returns the fraction `self.bytes / total.bytes`, or 0.0 when `total`
    /// is empty.
    pub fn byte_ratio(&self, total: &CommStats) -> f64 {
        if total.bytes == 0 {
            0.0
        } else {
            self.bytes as f64 / total.bytes as f64
        }
    }
}

impl Add for CommStats {
    type Output = CommStats;

    fn add(self, rhs: CommStats) -> CommStats {
        CommStats::new(self.messages + rhs.messages, self.bytes + rhs.bytes)
    }
}

impl AddAssign for CommStats {
    fn add_assign(&mut self, rhs: CommStats) {
        self.messages += rhs.messages;
        self.bytes += rhs.bytes;
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} msgs / {} bytes", self.messages, self.bytes)
    }
}

/// A thread-safe message/byte tally shared between simulated cluster nodes.
///
/// Nodes run on separate threads; each node records into the same
/// `AtomicCommStats` without locking.
///
/// # Examples
///
/// ```
/// use imitator_metrics::AtomicCommStats;
///
/// let stats = AtomicCommStats::default();
/// stats.record(2, 128);
/// assert_eq!(stats.snapshot().messages, 2);
/// ```
#[derive(Debug, Default)]
pub struct AtomicCommStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl AtomicCommStats {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `messages` messages totalling `bytes` bytes.
    pub fn record(&self, messages: u64, bytes: u64) {
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of the counters.
    pub fn snapshot(&self) -> CommStats {
        CommStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero and returns the previous values.
    pub fn take(&self) -> CommStats {
        CommStats {
            messages: self.messages.swap(0, Ordering::Relaxed),
            bytes: self.bytes.swap(0, Ordering::Relaxed),
        }
    }
}

impl Clone for AtomicCommStats {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        AtomicCommStats {
            messages: AtomicU64::new(snap.messages),
            bytes: AtomicU64::new(snap.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_accumulates() {
        let mut s = CommStats::default();
        s.record(1, 10);
        s.record(2, 20);
        assert_eq!(s, CommStats::new(3, 30));
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = CommStats::new(1, 2);
        let b = CommStats::new(3, 4);
        let mut c = a;
        c += b;
        assert_eq!(a + b, c);
    }

    #[test]
    fn ratios_handle_zero_totals() {
        let part = CommStats::new(5, 50);
        let empty = CommStats::default();
        assert_eq!(part.message_ratio(&empty), 0.0);
        assert_eq!(part.byte_ratio(&empty), 0.0);
        let total = CommStats::new(10, 100);
        assert!((part.message_ratio(&total) - 0.5).abs() < 1e-12);
        assert!((part.byte_ratio(&total) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn atomic_records_from_many_threads() {
        let stats = Arc::new(AtomicCommStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        stats.record(1, 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot(), CommStats::new(8000, 64000));
    }

    #[test]
    fn take_resets() {
        let stats = AtomicCommStats::new();
        stats.record(4, 40);
        assert_eq!(stats.take(), CommStats::new(4, 40));
        assert_eq!(stats.snapshot(), CommStats::default());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CommStats::default()).is_empty());
    }
}

//! Message and byte accounting.
//!
//! The paper quantifies the cost of fault tolerance partly as *redundant
//! messages among the total messages during normal execution* (Fig. 8(b)) and
//! as *communication cost per iteration in GB* (Table 6). Engines record every
//! logical message through these counters, tagging fault-tolerance-only
//! traffic separately from baseline traffic so both numerator and denominator
//! of those ratios are available.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// A plain (single-threaded) message/byte tally.
///
/// # Examples
///
/// ```
/// use imitator_metrics::CommStats;
///
/// let mut a = CommStats::new(10, 4096);
/// a.record(5, 2048);
/// assert_eq!(a.messages, 15);
/// assert_eq!(a.bytes, 6144);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CommStats {
    /// Number of logical messages.
    pub messages: u64,
    /// Total payload bytes (wire-size estimate).
    pub bytes: u64,
}

impl CommStats {
    /// Creates a tally with the given initial counts.
    pub fn new(messages: u64, bytes: u64) -> Self {
        CommStats { messages, bytes }
    }

    /// Adds `messages` messages totalling `bytes` bytes.
    pub fn record(&mut self, messages: u64, bytes: u64) {
        self.messages += messages;
        self.bytes += bytes;
    }

    /// Returns the fraction `self.messages / total.messages`, or 0.0 when
    /// `total` is empty. Used for the "redundant message" ratios of Fig. 8(b).
    pub fn message_ratio(&self, total: &CommStats) -> f64 {
        if total.messages == 0 {
            0.0
        } else {
            self.messages as f64 / total.messages as f64
        }
    }

    /// Returns the fraction `self.bytes / total.bytes`, or 0.0 when `total`
    /// is empty.
    pub fn byte_ratio(&self, total: &CommStats) -> f64 {
        if total.bytes == 0 {
            0.0
        } else {
            self.bytes as f64 / total.bytes as f64
        }
    }
}

impl Add for CommStats {
    type Output = CommStats;

    fn add(self, rhs: CommStats) -> CommStats {
        CommStats::new(self.messages + rhs.messages, self.bytes + rhs.bytes)
    }
}

impl AddAssign for CommStats {
    fn add_assign(&mut self, rhs: CommStats) {
        self.messages += rhs.messages;
        self.bytes += rhs.bytes;
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} msgs / {} bytes", self.messages, self.bytes)
    }
}

/// The kind of traffic a message carries, for the per-kind fabric counters.
///
/// The paper distinguishes replica-synchronisation traffic (the piggyback
/// channel fault tolerance rides on) from the gather traffic vertex-cut
/// engines already pay and from recovery-only traffic; splitting the tallies
/// lets reports show where the wire budget actually goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommKind {
    /// Replica synchronisation records (`VertexSync` batches).
    Sync,
    /// Vertex-cut partial gather contributions.
    Gather,
    /// Recovery traffic: rebirth batches, migration rounds, full-sync replays.
    Recovery,
    /// Everything else (control, tests, unclassified).
    Control,
    /// Failure-detector heartbeat probes (liveness traffic, §detection).
    Heartbeat,
}

impl CommKind {
    /// All kinds, in counter-array order.
    pub const ALL: [CommKind; 5] = [
        CommKind::Sync,
        CommKind::Gather,
        CommKind::Recovery,
        CommKind::Control,
        CommKind::Heartbeat,
    ];

    fn index(self) -> usize {
        match self {
            CommKind::Sync => 0,
            CommKind::Gather => 1,
            CommKind::Recovery => 2,
            CommKind::Control => 3,
            CommKind::Heartbeat => 4,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CommKind::Sync => "sync",
            CommKind::Gather => "gather",
            CommKind::Recovery => "recovery",
            CommKind::Control => "control",
            CommKind::Heartbeat => "heartbeat",
        }
    }
}

/// A point-in-time split of fabric traffic by [`CommKind`], plus the total
/// time threads spent blocked in global barriers — the "compute vs comm-wait
/// vs barrier" observability the comm layer reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommBreakdown {
    /// Per-kind tallies, indexed by `CommKind::ALL` order.
    pub by_kind: [CommStats; 5],
    /// Summed wall-clock time all threads spent blocked in global barriers.
    pub barrier_wait: std::time::Duration,
    /// Messages retransmitted by an unreliable transport's pre-barrier
    /// fence (zero on the in-process channel transport, which never loses
    /// a message). Retransmissions are physical traffic only — they are
    /// *not* re-recorded in the logical per-kind tallies above.
    pub retries: u64,
    /// Duplicate deliveries suppressed by the transport's per-link
    /// sequence-number filter before they could reach a node's inbox.
    pub redelivered: u64,
}

impl CommBreakdown {
    /// The tally for one kind.
    pub fn kind(&self, kind: CommKind) -> CommStats {
        self.by_kind[kind.index()]
    }

    /// Sum over all kinds (equals the total counters when every send is
    /// tagged).
    pub fn total(&self) -> CommStats {
        self.by_kind
            .iter()
            .fold(CommStats::default(), |acc, s| acc + *s)
    }
}

impl fmt::Display for CommBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, kind) in CommKind::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", kind.label(), self.by_kind[i])?;
        }
        write!(f, ", barrier-wait: {:?}", self.barrier_wait)?;
        if self.retries > 0 || self.redelivered > 0 {
            write!(
                f,
                ", retries: {}, redelivered: {}",
                self.retries, self.redelivered
            )?;
        }
        Ok(())
    }
}

/// A thread-safe message/byte tally shared between simulated cluster nodes.
///
/// Nodes run on separate threads; each node records into the same
/// `AtomicCommStats` without locking. Besides the headline message/byte
/// totals it keeps per-[`CommKind`] counters and a barrier-wait timer so the
/// fabric can report where traffic and wall-clock go.
///
/// # Examples
///
/// ```
/// use imitator_metrics::{AtomicCommStats, CommKind};
///
/// let stats = AtomicCommStats::default();
/// stats.record(2, 128);
/// stats.record_kind(CommKind::Sync, 1, 64);
/// assert_eq!(stats.snapshot().messages, 3);
/// assert_eq!(stats.breakdown().kind(CommKind::Sync).bytes, 64);
/// ```
#[derive(Debug, Default)]
pub struct AtomicCommStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    kind_messages: [AtomicU64; 5],
    kind_bytes: [AtomicU64; 5],
    barrier_wait_nanos: AtomicU64,
    retries: AtomicU64,
    redelivered: AtomicU64,
}

impl AtomicCommStats {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `messages` messages totalling `bytes` bytes, tagged
    /// [`CommKind::Control`].
    pub fn record(&self, messages: u64, bytes: u64) {
        self.record_kind(CommKind::Control, messages, bytes);
    }

    /// Adds `messages` messages totalling `bytes` bytes of the given kind.
    pub fn record_kind(&self, kind: CommKind, messages: u64, bytes: u64) {
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        let i = kind.index();
        self.kind_messages[i].fetch_add(messages, Ordering::Relaxed);
        self.kind_bytes[i].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds time one thread spent blocked in a global barrier.
    pub fn record_barrier_wait(&self, wait: std::time::Duration) {
        self.barrier_wait_nanos
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds `n` transport-level retransmissions (pre-barrier fence resends
    /// of messages the wire lost). Not double-counted in the logical
    /// per-kind tallies, which record each message once at send time.
    pub fn record_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` duplicate deliveries suppressed by the transport's per-link
    /// sequence filter.
    pub fn record_redelivered(&self, n: u64) {
        self.redelivered.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of the headline counters.
    pub fn snapshot(&self) -> CommStats {
        CommStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Returns a point-in-time per-kind split plus the barrier-wait total.
    pub fn breakdown(&self) -> CommBreakdown {
        let mut out = CommBreakdown::default();
        for kind in CommKind::ALL {
            let i = kind.index();
            out.by_kind[i] = CommStats {
                messages: self.kind_messages[i].load(Ordering::Relaxed),
                bytes: self.kind_bytes[i].load(Ordering::Relaxed),
            };
        }
        out.barrier_wait =
            std::time::Duration::from_nanos(self.barrier_wait_nanos.load(Ordering::Relaxed));
        out.retries = self.retries.load(Ordering::Relaxed);
        out.redelivered = self.redelivered.load(Ordering::Relaxed);
        out
    }

    /// Resets the headline counters to zero and returns the previous values
    /// (per-kind counters and the barrier timer reset alongside).
    pub fn take(&self) -> CommStats {
        for i in 0..5 {
            self.kind_messages[i].store(0, Ordering::Relaxed);
            self.kind_bytes[i].store(0, Ordering::Relaxed);
        }
        self.barrier_wait_nanos.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.redelivered.store(0, Ordering::Relaxed);
        CommStats {
            messages: self.messages.swap(0, Ordering::Relaxed),
            bytes: self.bytes.swap(0, Ordering::Relaxed),
        }
    }
}

impl Clone for AtomicCommStats {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let br = self.breakdown();
        let out = AtomicCommStats {
            messages: AtomicU64::new(snap.messages),
            bytes: AtomicU64::new(snap.bytes),
            ..AtomicCommStats::default()
        };
        for kind in CommKind::ALL {
            let i = kind.index();
            out.kind_messages[i].store(br.by_kind[i].messages, Ordering::Relaxed);
            out.kind_bytes[i].store(br.by_kind[i].bytes, Ordering::Relaxed);
        }
        out.barrier_wait_nanos
            .store(br.barrier_wait.as_nanos() as u64, Ordering::Relaxed);
        out.retries.store(br.retries, Ordering::Relaxed);
        out.redelivered.store(br.redelivered, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_accumulates() {
        let mut s = CommStats::default();
        s.record(1, 10);
        s.record(2, 20);
        assert_eq!(s, CommStats::new(3, 30));
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = CommStats::new(1, 2);
        let b = CommStats::new(3, 4);
        let mut c = a;
        c += b;
        assert_eq!(a + b, c);
    }

    #[test]
    fn ratios_handle_zero_totals() {
        let part = CommStats::new(5, 50);
        let empty = CommStats::default();
        assert_eq!(part.message_ratio(&empty), 0.0);
        assert_eq!(part.byte_ratio(&empty), 0.0);
        let total = CommStats::new(10, 100);
        assert!((part.message_ratio(&total) - 0.5).abs() < 1e-12);
        assert!((part.byte_ratio(&total) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn atomic_records_from_many_threads() {
        let stats = Arc::new(AtomicCommStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        stats.record(1, 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot(), CommStats::new(8000, 64000));
    }

    #[test]
    fn take_resets() {
        let stats = AtomicCommStats::new();
        stats.record(4, 40);
        assert_eq!(stats.take(), CommStats::new(4, 40));
        assert_eq!(stats.snapshot(), CommStats::default());
        assert_eq!(stats.breakdown(), CommBreakdown::default());
    }

    #[test]
    fn kinds_split_and_sum_to_total() {
        let stats = AtomicCommStats::new();
        stats.record_kind(CommKind::Sync, 2, 20);
        stats.record_kind(CommKind::Gather, 1, 10);
        stats.record_kind(CommKind::Recovery, 3, 30);
        stats.record(1, 5); // control
        stats.record_kind(CommKind::Heartbeat, 6, 198);
        let br = stats.breakdown();
        assert_eq!(br.kind(CommKind::Sync), CommStats::new(2, 20));
        assert_eq!(br.kind(CommKind::Gather), CommStats::new(1, 10));
        assert_eq!(br.kind(CommKind::Recovery), CommStats::new(3, 30));
        assert_eq!(br.kind(CommKind::Control), CommStats::new(1, 5));
        assert_eq!(br.kind(CommKind::Heartbeat), CommStats::new(6, 198));
        assert_eq!(br.total(), stats.snapshot());
    }

    #[test]
    fn barrier_wait_accumulates_and_clones() {
        let stats = AtomicCommStats::new();
        stats.record_barrier_wait(std::time::Duration::from_micros(3));
        stats.record_barrier_wait(std::time::Duration::from_micros(4));
        assert_eq!(
            stats.breakdown().barrier_wait,
            std::time::Duration::from_micros(7)
        );
        let copy = stats.clone();
        assert_eq!(copy.breakdown(), stats.breakdown());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CommStats::default()).is_empty());
    }

    #[test]
    fn retries_and_redeliveries_tally_reset_and_clone() {
        let stats = AtomicCommStats::new();
        stats.record_retries(3);
        stats.record_redelivered(2);
        stats.record_retries(1);
        let br = stats.breakdown();
        assert_eq!((br.retries, br.redelivered), (4, 2));
        // Net-fault counters are physical traffic, not logical messages.
        assert_eq!(stats.snapshot(), CommStats::default());
        let copy = stats.clone();
        assert_eq!(copy.breakdown(), br);
        stats.take();
        let br = stats.breakdown();
        assert_eq!((br.retries, br.redelivered), (0, 0));
    }
}

//! Measurement substrate for the Imitator reproduction.
//!
//! The paper's evaluation reports four kinds of quantities:
//!
//! * **communication cost** — message and byte counts per node and per iteration
//!   (Fig. 8(b), Table 6), provided here by [`CommStats`] / [`AtomicCommStats`];
//! * **time breakdowns** — per-phase wall-clock times such as the
//!   reload/reconstruct/replay split of recovery (Fig. 2(c), Fig. 9),
//!   provided by [`Stopwatch`] and [`PhaseTimes`];
//! * **memory consumption** — deep byte sizes of resident graph state
//!   (Tables 3 and 7), provided by the [`MemSize`] trait;
//! * **distributions** — iteration-time summaries, provided by [`Summary`].
//!
//! Everything here is engine-agnostic so that both the edge-cut (Cyclops) and
//! vertex-cut (PowerLyra) engines, as well as the fault-tolerance layers,
//! report through one vocabulary.
//!
//! # Examples
//!
//! ```
//! use imitator_metrics::{CommStats, MemSize, Stopwatch};
//!
//! let mut comm = CommStats::default();
//! comm.record(3, 1024);
//! assert_eq!(comm.messages, 3);
//!
//! let values: Vec<u64> = vec![1, 2, 3];
//! assert!(values.mem_bytes() >= 24);
//!
//! let sw = Stopwatch::start();
//! let _elapsed = sw.elapsed();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod counters;
mod memsize;
mod pool;
mod summary;
mod suspicion;
mod timer;

pub use comm::{AtomicCommStats, CommBreakdown, CommKind, CommStats};
pub use counters::RecoveryCounters;
pub use memsize::MemSize;
pub use pool::PoolStats;
pub use summary::Summary;
pub use suspicion::SuspicionStats;
pub use timer::{PhaseTimes, Stopwatch};

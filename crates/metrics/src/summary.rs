//! Distribution summaries for repeated measurements.
//!
//! Harness binaries run each configuration several times and report
//! mean/min/max (the paper reports averages over iterations and runs);
//! [`Summary`] is the tiny reducer used everywhere for that.

use std::fmt;

/// An online mean/min/max/variance accumulator over `f64` samples.
///
/// # Examples
///
/// ```
/// use imitator_metrics::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample (Welford's online algorithm).
    pub fn add(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample, or 0.0 with no samples.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 with no samples.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population standard deviation, or 0.0 with fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} min={:.4} max={:.4} n={}",
            self.mean(),
            self.min(),
            self.max(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn tracks_min_max_with_negatives() {
        let s: Summary = [-5.0, 3.0, 0.5].into_iter().collect();
        assert_eq!(s.min(), -5.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn stddev_matches_closed_form() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let s: Summary = [1.5, 2.5, 6.0].into_iter().collect();
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn extend_appends() {
        let mut s: Summary = [1.0].into_iter().collect();
        s.extend([2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_never_empty() {
        assert!(format!("{}", Summary::new()).contains("n=0"));
    }
}

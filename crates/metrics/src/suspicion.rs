//! Failure-detection suspicion accounting.
//!
//! The heartbeat detector (`crates/cluster/src/detector.rs`) declares a node
//! *suspected* when its heartbeats go quiet, *retracts* the suspicion if the
//! node turns out to be merely slow, and *confirms* it (handing the node to
//! recovery) when the silence outlives the fence. These counters quantify
//! that lifecycle — in particular the observed detection latency the paper's
//! detection-delay ablation is about, as opposed to the configured constant.

use std::fmt;

/// Counters for one run's suspicion lifecycle.
///
/// # Examples
///
/// ```
/// use imitator_metrics::SuspicionStats;
///
/// let mut a = SuspicionStats { suspected: 2, retracted: 1, confirmed: 1, detect_ticks: 40 };
/// let b = SuspicionStats { suspected: 1, retracted: 0, confirmed: 1, detect_ticks: 55 };
/// a.merge(&b);
/// assert_eq!(a.suspected, 2);
/// assert_eq!(a.detect_ticks, 55);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuspicionStats {
    /// Times any node transitioned alive → suspected.
    pub suspected: u64,
    /// Suspicions withdrawn because liveness evidence arrived pre-fence.
    pub retracted: u64,
    /// Suspicions confirmed as failures and handed to recovery.
    pub confirmed: u64,
    /// Cumulative detector ticks between a confirmed node's last sign of
    /// life and the confirmation — the *observed* detection latency.
    pub detect_ticks: u64,
}

impl SuspicionStats {
    /// True when no suspicion activity was recorded at all.
    pub fn is_empty(&self) -> bool {
        *self == SuspicionStats::default()
    }

    /// Folds another snapshot in. All four counters come from the one shared
    /// per-cluster detector, so parallel node threads observe the same
    /// monotonically-growing totals: element-wise max (not sum) merges
    /// duplicate snapshots without double counting.
    pub fn merge(&mut self, other: &SuspicionStats) {
        self.suspected = self.suspected.max(other.suspected);
        self.retracted = self.retracted.max(other.retracted);
        self.confirmed = self.confirmed.max(other.confirmed);
        self.detect_ticks = self.detect_ticks.max(other.detect_ticks);
    }
}

impl fmt::Display for SuspicionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} suspected / {} retracted / {} confirmed, {} detect tick(s)",
            self.suspected, self.retracted, self.confirmed, self.detect_ticks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        assert!(SuspicionStats::default().is_empty());
        let s = SuspicionStats {
            suspected: 1,
            ..SuspicionStats::default()
        };
        assert!(!s.is_empty());
    }

    #[test]
    fn merge_takes_element_wise_max() {
        let mut a = SuspicionStats {
            suspected: 3,
            retracted: 0,
            confirmed: 2,
            detect_ticks: 10,
        };
        let b = SuspicionStats {
            suspected: 1,
            retracted: 4,
            confirmed: 2,
            detect_ticks: 90,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SuspicionStats {
                suspected: 3,
                retracted: 4,
                confirmed: 2,
                detect_ticks: 90,
            }
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SuspicionStats::default()).is_empty());
    }
}

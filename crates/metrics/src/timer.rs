//! Wall-clock phase timing.
//!
//! Recovery in the paper is broken into *reload*, *reconstruct* and *replay*
//! phases (Fig. 2(c), Fig. 9); normal execution is broken into compute,
//! communicate and barrier. [`PhaseTimes`] keeps an ordered list of named
//! durations so harness binaries can print the same breakdowns.

use std::fmt;
use std::time::{Duration, Instant};

/// A started wall-clock timer.
///
/// # Examples
///
/// ```
/// use imitator_metrics::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let d = sw.elapsed();
/// assert!(d.as_nanos() > 0 || d.is_zero());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Restarts the stopwatch, returning the time elapsed before the restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.started;
        self.started = now;
        d
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// An ordered collection of named phase durations.
///
/// Phases keep insertion order (so reports print reload → reconstruct →
/// replay in protocol order) and repeated records into the same phase
/// accumulate.
///
/// # Examples
///
/// ```
/// use imitator_metrics::PhaseTimes;
/// use std::time::Duration;
///
/// let mut p = PhaseTimes::new();
/// p.record("reload", Duration::from_millis(5));
/// p.record("replay", Duration::from_millis(2));
/// p.record("reload", Duration::from_millis(5));
/// assert_eq!(p.get("reload"), Some(Duration::from_millis(10)));
/// assert_eq!(p.total(), Duration::from_millis(12));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimes {
    /// Creates an empty set of phase times.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to phase `name`, creating the phase if needed.
    pub fn record(&mut self, name: &str, d: Duration) {
        if let Some((_, t)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *t += d;
        } else {
            self.phases.push((name.to_owned(), d));
        }
    }

    /// Returns the accumulated duration of phase `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Iterates phases in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.phases.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Merges another `PhaseTimes` into this one, phase by phase.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (name, d) in other.iter() {
            self.record(name, d);
        }
    }

    /// Merges another `PhaseTimes` taking the per-phase *maximum* instead of
    /// the sum — a barrier-synchronised phase across nodes finishes when its
    /// slowest participant does.
    pub fn merge_max(&mut self, other: &PhaseTimes) {
        for (name, d) in other.iter() {
            if let Some((_, t)) = self.phases.iter_mut().find(|(n, _)| n == name) {
                *t = (*t).max(d);
            } else {
                self.phases.push((name.to_owned(), d));
            }
        }
    }

    /// Number of distinct phases recorded.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.phases.is_empty() {
            return write!(f, "(no phases)");
        }
        for (i, (name, d)) in self.phases.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={:.3}s", name, d.as_secs_f64())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_lap_restarts() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(2));
        let second = sw.elapsed();
        assert!(second < first);
    }

    #[test]
    fn phases_keep_insertion_order() {
        let mut p = PhaseTimes::new();
        p.record("b", Duration::from_secs(1));
        p.record("a", Duration::from_secs(2));
        let order: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec!["b", "a"]);
    }

    #[test]
    fn repeated_records_accumulate() {
        let mut p = PhaseTimes::new();
        p.record("x", Duration::from_secs(1));
        p.record("x", Duration::from_secs(3));
        assert_eq!(p.get("x"), Some(Duration::from_secs(4)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn merge_accumulates_by_name() {
        let mut a = PhaseTimes::new();
        a.record("x", Duration::from_secs(1));
        let mut b = PhaseTimes::new();
        b.record("x", Duration::from_secs(2));
        b.record("y", Duration::from_secs(5));
        a.merge(&b);
        assert_eq!(a.get("x"), Some(Duration::from_secs(3)));
        assert_eq!(a.get("y"), Some(Duration::from_secs(5)));
        assert_eq!(a.total(), Duration::from_secs(8));
    }

    #[test]
    fn merge_max_takes_per_phase_maxima() {
        let mut a = PhaseTimes::new();
        a.record("reload", Duration::from_secs(3));
        a.record("replay", Duration::from_secs(1));
        let mut b = PhaseTimes::new();
        b.record("reload", Duration::from_secs(2));
        b.record("replay", Duration::from_secs(4));
        b.record("fence", Duration::from_secs(5));
        a.merge_max(&b);
        assert_eq!(a.get("reload"), Some(Duration::from_secs(3)));
        assert_eq!(a.get("replay"), Some(Duration::from_secs(4)));
        assert_eq!(a.get("fence"), Some(Duration::from_secs(5)));
        let order: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec!["reload", "replay", "fence"]);
    }

    #[test]
    fn display_never_empty() {
        assert_eq!(format!("{}", PhaseTimes::new()), "(no phases)");
        let mut p = PhaseTimes::new();
        p.record("reload", Duration::from_millis(1500));
        assert!(format!("{}", p).contains("reload"));
    }
}

//! Behavioural tests of the simulated cluster: message-delivery guarantees
//! the runners depend on, barrier all-reduce correctness, standby adoption
//! under concurrency, and delayed failure detection.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use imitator_cluster::{BarrierOutcome, Cluster, Coordinator, NodeId};

#[test]
fn per_sender_fifo_order_is_preserved() {
    let c: Cluster<u64> = Cluster::new(2, 0, Duration::ZERO);
    let a = c.take_ctx(NodeId::new(0));
    let b = c.take_ctx(NodeId::new(1));
    let t = std::thread::spawn(move || {
        for i in 0..1_000u64 {
            b.send(NodeId::new(0), i);
        }
        b.enter_barrier();
    });
    a.enter_barrier();
    let got: Vec<u64> = a.drain().into_iter().map(|e| e.msg).collect();
    assert_eq!(got, (0..1_000).collect::<Vec<_>>());
    t.join().unwrap();
}

#[test]
fn all_pre_barrier_sends_visible_after_barrier() {
    // The BSP delivery guarantee Algorithm 1 relies on: every message sent
    // before the sender entered the barrier is in the inbox afterwards.
    let n = 6;
    let c: Cluster<(u32, u64)> = Cluster::new(n, 0, Duration::ZERO);
    let handles: Vec<_> = (0..n)
        .map(|p| {
            let ctx = c.take_ctx(NodeId::from_index(p));
            std::thread::spawn(move || {
                for round in 0..20u64 {
                    for q in 0..n {
                        if q != p {
                            ctx.send(NodeId::from_index(q), (p as u32, round));
                        }
                    }
                    ctx.enter_barrier();
                    let msgs = ctx.drain();
                    assert_eq!(msgs.len(), n - 1, "round {round} on node {p}");
                    for m in msgs {
                        assert_eq!(m.msg.1, round, "stale message leaked across rounds");
                    }
                    ctx.enter_barrier();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn standby_adoption_is_exclusive() {
    // Two standbys, one dispatch: exactly one thread adopts the identity.
    let c: Cluster<()> = Cluster::new(2, 2, Duration::ZERO);
    let _a = c.take_ctx(NodeId::new(0));
    let b = c.take_ctx(NodeId::new(1));
    b.die();
    let waiters: Vec<_> = (0..2)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || {
                c.wait_standby(Duration::from_millis(400))
                    .map(|ctx| ctx.id())
            })
        })
        .collect();
    assert!(c.dispatch_standby(NodeId::new(1)));
    let adopted: Vec<_> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
    let hits = adopted.iter().flatten().count();
    assert_eq!(hits, 1, "exactly one standby must adopt: {adopted:?}");
}

#[test]
fn delayed_detection_blocks_then_fails_barrier() {
    let c: Cluster<()> = Cluster::new(2, 0, Duration::from_millis(60));
    let a = c.take_ctx(NodeId::new(0));
    let b = c.take_ctx(NodeId::new(1));
    let start = std::time::Instant::now();
    b.die();
    let outcome = a.enter_barrier();
    assert!(outcome.is_fail());
    assert!(
        start.elapsed() >= Duration::from_millis(60),
        "barrier released before the heartbeat timeout"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// barrier_sum really all-reduces: every participant sees the exact sum
    /// of everyone's contributions, every round.
    #[test]
    fn barrier_sum_allreduce(
        contributions in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000, 1..6), // per-node values, rounds = inner len
            2..5
        )
    ) {
        let nodes = contributions.len();
        let rounds = contributions.iter().map(Vec::len).min().unwrap();
        let coord = Arc::new(Coordinator::new(nodes, 0, Duration::ZERO));
        let expected: Vec<u64> = (0..rounds)
            .map(|r| contributions.iter().map(|c| c[r]).sum())
            .collect();
        let handles: Vec<_> = contributions
            .iter()
            .enumerate()
            .map(|(p, vals)| {
                let coord = Arc::clone(&coord);
                let vals = vals[..rounds].to_vec();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for (r, v) in vals.into_iter().enumerate() {
                        let (outcome, sum) = coord.barrier_sum(NodeId::from_index(p), v);
                        assert_eq!(outcome, BarrierOutcome::Clean);
                        assert_eq!(sum, expected[r], "round {r} on node {p}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

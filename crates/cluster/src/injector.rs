//! Deterministic fail-stop and network-fault injection.
//!
//! The paper's case study (§6.9) injects a machine failure between the 6th
//! and 7th iterations of a PageRank run. [`FailureInjector`] expresses such
//! schedules: a set of `(node, iteration, point)` plans that the engine
//! consults at the two protocol points where a crash produces distinct
//! recovery behaviour (before the barrier → peers roll back the iteration;
//! after the barrier → the committed iteration survives).
//!
//! Crashes are only half of what a real network does to a protocol. The
//! same module therefore also describes *message*-level faults —
//! [`NetFaults`] / [`LinkFaults`] — which the lossy transport backend
//! applies per link and per [`CommKind`]: drop, duplicate, reorder, and
//! delay, all derived from one seed so a chaos schedule reproduces from its
//! index alone. [`TransportKind`] selects which wire backend a cluster runs
//! on.

use imitator_metrics::CommKind;
use parking_lot::Mutex;

use crate::NodeId;

/// Where within an iteration the crash strikes.
///
/// The first two points strike during normal superstep execution; the
/// remaining ones strike *inside* the recovery protocol itself, modelling
/// the paper's cascading-failure scenarios (§5.3). For recovery-phase
/// points the `iteration` of the [`FailurePlan`] is the iteration that the
/// in-flight recovery episode resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailPoint {
    /// During compute/communicate, i.e. detected at `enter_barrier`;
    /// survivors must roll back the current iteration (Algorithm 1 line 9).
    BeforeBarrier,
    /// After commit, i.e. detected at `leave_barrier`; no rollback needed
    /// (Algorithm 1 lines 16-19).
    AfterBarrier,
    /// At the start of the given Migration round (1..=8), before the node
    /// drains or applies that round's protocol traffic.
    MigrationRound(u8),
    /// During the reload phase of a standby-based recovery: survivors crash
    /// right after the standby-dispatch decision, the reborn node after
    /// receiving its first batch. Checkpoint recovery reuses this point for
    /// its reload; note that a checkpoint *newbie* keys the plan's
    /// `iteration` by the snapshot epoch it reloaded to (it never learns
    /// the episode's resume iteration), while every other use keys by the
    /// resume iteration.
    RebirthReload,
    /// While the reborn node reconstructs its graph from received batches.
    RebirthReconstruct,
    /// While the reborn node replays activation state to rejoin the run.
    RebirthReplay,
    /// Mid checkpoint write: the node dies after writing a torn (unsealed)
    /// snapshot part, leaving a detectably-incomplete epoch behind.
    CkptWrite,
    /// The node does not crash at all: it goes silent for the given number
    /// of detector ticks at the start of the iteration (GC pause, overload).
    /// Under the heartbeat detector a long enough stall gets the node
    /// suspected — and, past the fence, treated exactly like a crash — so
    /// this point exercises false-suspicion retraction and fencing.
    Stall(u64),
}

/// One scheduled crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailurePlan {
    /// The node to crash.
    pub node: NodeId,
    /// The (0-based) iteration during which it crashes.
    pub iteration: u64,
    /// The protocol point at which it crashes.
    pub point: FailPoint,
}

/// Per-link message-fault probabilities, in per-mille (`150` = 15 %).
///
/// Applied independently to each first transmission on a link; at most one
/// fault fires per message (the thresholds are cumulative over one roll).
/// Retransmissions issued by the pre-barrier fence are exempt, so a lossy
/// run always makes progress — exactly the kernel-TCP contract a real
/// deployment would rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaults {
    /// Probability the message is silently dropped (resent at the fence).
    pub drop_pm: u16,
    /// Probability the message is delivered twice (the duplicate must be
    /// suppressed by the receiver-side sequence filter).
    pub dup_pm: u16,
    /// Probability the message is held back and delivered *after* the next
    /// message on the same link (adjacent reorder).
    pub reorder_pm: u16,
    /// Probability the message is delayed until the sender's next fence.
    pub delay_pm: u16,
}

impl LinkFaults {
    /// No faults on this link class.
    pub const NONE: LinkFaults = LinkFaults {
        drop_pm: 0,
        dup_pm: 0,
        reorder_pm: 0,
        delay_pm: 0,
    };

    /// Whether every probability is zero.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }
}

/// A deterministic network-fault schedule for the lossy transport: one
/// [`LinkFaults`] knob per traffic [`CommKind`], plus the seed every
/// per-link random stream derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFaults {
    /// Seed for the per-link deterministic fault streams.
    pub seed: u64,
    /// Faults applied to replica-synchronisation traffic.
    pub sync: LinkFaults,
    /// Faults applied to vertex-cut gather traffic.
    pub gather: LinkFaults,
    /// Faults applied to recovery traffic (rebirth batches, migration
    /// rounds, full-sync replays).
    pub recovery: LinkFaults,
    /// Faults applied to everything else.
    pub control: LinkFaults,
    /// Faults applied to failure-detector heartbeat probes. Heartbeats are
    /// fire-and-forget (never fenced or retransmitted), so a dropped probe
    /// is simply lost — the detector must tolerate it via its timeout.
    pub heartbeat: LinkFaults,
}

impl NetFaults {
    /// The same fault knobs for every traffic kind.
    pub fn uniform(seed: u64, f: LinkFaults) -> Self {
        NetFaults {
            seed,
            sync: f,
            gather: f,
            recovery: f,
            control: f,
            heartbeat: f,
        }
    }

    /// A moderate seeded schedule for chaos sweeps: every kind sees a
    /// nonzero drop *and* duplicate probability (so any schedule exercises
    /// retransmission and duplicate suppression), with the exact mix varied
    /// by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed ^ 0x6C62_272E_07BB_0142;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut knob = || LinkFaults {
            drop_pm: 40 + (next() % 110) as u16,
            dup_pm: 40 + (next() % 110) as u16,
            reorder_pm: (next() % 120) as u16,
            delay_pm: (next() % 80) as u16,
        };
        // The heartbeat knob is drawn *after* the four original kinds so
        // pre-existing seeded schedules keep their exact fault streams.
        NetFaults {
            seed,
            sync: knob(),
            gather: knob(),
            recovery: knob(),
            control: knob(),
            heartbeat: knob(),
        }
    }

    /// The fault knobs for one traffic kind.
    pub fn for_kind(&self, kind: CommKind) -> LinkFaults {
        match kind {
            CommKind::Sync => self.sync,
            CommKind::Gather => self.gather,
            CommKind::Recovery => self.recovery,
            CommKind::Control => self.control,
            CommKind::Heartbeat => self.heartbeat,
        }
    }
}

/// Which wire backend a [`Cluster`](crate::Cluster) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process lock-free channels: reliable, ordered, zero-copy. The
    /// default, and the backend the refactor goldens pin bit-identically.
    #[default]
    Channel,
    /// The channel backend wrapped in deterministic seeded message faults.
    Lossy(NetFaults),
    /// Real loopback TCP sockets: each node keeps persistent connections
    /// to its peers and ships length-prefixed encoded frames.
    Tcp,
}

/// A schedule of fail-stop crashes, consumed as they fire.
///
/// # Examples
///
/// ```
/// use imitator_cluster::{FailPoint, FailureInjector, FailurePlan, NodeId};
///
/// let inj = FailureInjector::new();
/// inj.schedule(FailurePlan {
///     node: NodeId::new(2),
///     iteration: 6,
///     point: FailPoint::BeforeBarrier,
/// });
/// assert!(!inj.should_fail(NodeId::new(2), 5, FailPoint::BeforeBarrier));
/// assert!(inj.should_fail(NodeId::new(2), 6, FailPoint::BeforeBarrier));
/// // consumed: fires exactly once
/// assert!(!inj.should_fail(NodeId::new(2), 6, FailPoint::BeforeBarrier));
/// ```
#[derive(Debug, Default)]
pub struct FailureInjector {
    plans: Mutex<Vec<FailurePlan>>,
}

impl FailureInjector {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a crash to the schedule.
    pub fn schedule(&self, plan: FailurePlan) {
        self.plans.lock().push(plan);
    }

    /// Returns `true` (and consumes the plan) if `node` is scheduled to
    /// crash at this iteration and point.
    pub fn should_fail(&self, node: NodeId, iteration: u64, point: FailPoint) -> bool {
        let mut plans = self.plans.lock();
        if let Some(pos) = plans
            .iter()
            .position(|p| p.node == node && p.iteration == iteration && p.point == point)
        {
            plans.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Returns the stall length in detector ticks (and consumes the plan)
    /// if `node` is scheduled to stall at this iteration.
    pub fn should_stall(&self, node: NodeId, iteration: u64) -> Option<u64> {
        let mut plans = self.plans.lock();
        let pos = plans.iter().position(|p| {
            p.node == node && p.iteration == iteration && matches!(p.point, FailPoint::Stall(_))
        })?;
        match plans.swap_remove(pos).point {
            FailPoint::Stall(ticks) => Some(ticks),
            _ => unreachable!("position matched Stall"),
        }
    }

    /// Crashes not yet fired.
    pub fn pending(&self) -> usize {
        self.plans.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_never_fires() {
        let inj = FailureInjector::new();
        assert!(!inj.should_fail(NodeId::new(0), 0, FailPoint::BeforeBarrier));
    }

    #[test]
    fn point_and_iteration_must_match() {
        let inj = FailureInjector::new();
        inj.schedule(FailurePlan {
            node: NodeId::new(1),
            iteration: 3,
            point: FailPoint::AfterBarrier,
        });
        assert!(!inj.should_fail(NodeId::new(1), 3, FailPoint::BeforeBarrier));
        assert!(!inj.should_fail(NodeId::new(1), 2, FailPoint::AfterBarrier));
        assert!(!inj.should_fail(NodeId::new(0), 3, FailPoint::AfterBarrier));
        assert!(inj.should_fail(NodeId::new(1), 3, FailPoint::AfterBarrier));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn recovery_phase_points_are_distinct() {
        let inj = FailureInjector::new();
        inj.schedule(FailurePlan {
            node: NodeId::new(2),
            iteration: 4,
            point: FailPoint::MigrationRound(3),
        });
        inj.schedule(FailurePlan {
            node: NodeId::new(2),
            iteration: 4,
            point: FailPoint::RebirthReload,
        });
        assert!(!inj.should_fail(NodeId::new(2), 4, FailPoint::MigrationRound(2)));
        assert!(!inj.should_fail(NodeId::new(2), 4, FailPoint::CkptWrite));
        assert!(inj.should_fail(NodeId::new(2), 4, FailPoint::MigrationRound(3)));
        assert!(inj.should_fail(NodeId::new(2), 4, FailPoint::RebirthReload));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn stall_plans_consume_separately_from_crashes() {
        let inj = FailureInjector::new();
        inj.schedule(FailurePlan {
            node: NodeId::new(1),
            iteration: 2,
            point: FailPoint::Stall(400),
        });
        inj.schedule(FailurePlan {
            node: NodeId::new(1),
            iteration: 2,
            point: FailPoint::BeforeBarrier,
        });
        assert_eq!(inj.should_stall(NodeId::new(1), 1), None);
        assert_eq!(inj.should_stall(NodeId::new(0), 2), None);
        assert_eq!(inj.should_stall(NodeId::new(1), 2), Some(400));
        assert_eq!(inj.should_stall(NodeId::new(1), 2), None); // consumed
        assert!(inj.should_fail(NodeId::new(1), 2, FailPoint::BeforeBarrier));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn simultaneous_failures_supported() {
        let inj = FailureInjector::new();
        for n in [1u32, 2, 3] {
            inj.schedule(FailurePlan {
                node: NodeId::new(n),
                iteration: 5,
                point: FailPoint::BeforeBarrier,
            });
        }
        assert_eq!(inj.pending(), 3);
        for n in [1u32, 2, 3] {
            assert!(inj.should_fail(NodeId::new(n), 5, FailPoint::BeforeBarrier));
        }
    }
}

//! The coordination service (ZooKeeper's role in the paper).
//!
//! Provides epoch-numbered global barriers whose *outcome* carries failure
//! information, membership tracking driven by a pluggable
//! [`FailureDetector`] (injector oracle or real heartbeat suspicion), and
//! bookkeeping for standby adoption. Algorithm 1's `enter_barrier` /
//! `leave_barrier` map directly onto [`Coordinator::barrier`]: consecutive
//! calls are consecutive barrier instances.
//!
//! Liveness transitions flow through exactly one funnel: the detector's
//! `scan` decides *who* is down, [`Coordinator::mark_failed`] applies it.
//! Barrier waits are sliced by [`PUMP_QUANTUM`] whenever the detector needs
//! pumping, so detection progresses even while every node is blocked.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use imitator_metrics::SuspicionStats;
use parking_lot::{Condvar, Mutex};

use crate::detector::{DetectorConfig, FailureDetector, PUMP_QUANTUM};
use crate::NodeId;

/// The result every participant observes for one barrier instance.
///
/// All nodes arriving at the same barrier instance observe the *same*
/// outcome — the agreement Algorithm 1 relies on to make all survivors
/// roll back and recover together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// No failure was pending when the barrier completed.
    Clean,
    /// These nodes have failed and not yet been recovered. Survivors must
    /// run recovery before resuming (Algorithm 1 lines 8-12 / 17-19).
    Failed(Vec<NodeId>),
}

impl BarrierOutcome {
    /// Whether this outcome reports failures (Algorithm 1's `state.is_fail()`).
    pub fn is_fail(&self) -> bool {
        matches!(self, BarrierOutcome::Failed(_))
    }
}

#[derive(Debug)]
struct Inner {
    /// Liveness per logical node (indexed by `NodeId`).
    alive: Vec<bool>,
    /// Nodes that have arrived at the current barrier epoch.
    arrived: Vec<bool>,
    arrived_count: usize,
    /// Current (incomplete) barrier epoch.
    epoch: u64,
    /// Sum of the values contributed by arrivals at the current epoch.
    sum: u64,
    /// Completed epochs, their outcomes, and their all-reduce sums
    /// (bounded history).
    results: VecDeque<(u64, BarrierOutcome, u64)>,
    /// Failures detected since the last completed barrier.
    pending_failure: bool,
    /// Failed nodes whose state has not been recovered yet.
    unrecovered: Vec<NodeId>,
    /// Standby nodes not yet assigned.
    standbys_available: usize,
}

impl Inner {
    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Completes the current epoch if every alive node has arrived.
    fn try_complete(&mut self) -> bool {
        let alive = self.alive_count();
        if alive == 0 || self.arrived_count < alive {
            return false;
        }
        // Only count arrivals from currently-alive nodes.
        let all_in = self
            .alive
            .iter()
            .zip(&self.arrived)
            .all(|(&a, &arr)| !a || arr);
        if !all_in {
            return false;
        }
        let outcome = if self.pending_failure {
            BarrierOutcome::Failed(self.unrecovered.clone())
        } else {
            BarrierOutcome::Clean
        };
        self.pending_failure = false;
        self.results.push_back((self.epoch, outcome, self.sum));
        if self.results.len() > 128 {
            self.results.pop_front();
        }
        self.epoch += 1;
        self.sum = 0;
        self.arrived.iter_mut().for_each(|a| *a = false);
        self.arrived_count = 0;
        true
    }

    fn result_for(&self, epoch: u64) -> Option<(BarrierOutcome, u64)> {
        self.results
            .iter()
            .find(|(e, _, _)| *e == epoch)
            .map(|(_, o, s)| (o.clone(), *s))
    }
}

/// The central coordination service shared by all nodes of a [`Cluster`].
///
/// [`Cluster`]: crate::Cluster
#[derive(Debug)]
pub struct Coordinator {
    inner: Mutex<Inner>,
    cond: Condvar,
    detector: Arc<FailureDetector>,
    /// Lock-free mirror of `Inner::alive`, maintained under the lock on
    /// every liveness transition. [`Coordinator::is_alive`] sits on the
    /// per-message fabric send path, where taking the barrier mutex would
    /// serialize all senders against waiting barriers.
    alive_fast: Box<[AtomicBool]>,
}

impl Coordinator {
    /// Creates a coordinator for `num_nodes` initially-alive nodes and
    /// `num_standbys` hot standbys, with oracle failure detection taking
    /// `detection_delay` (in virtual clock ticks) after a crash.
    pub fn new(num_nodes: usize, num_standbys: usize, detection_delay: Duration) -> Self {
        Self::with_detector(
            num_nodes,
            num_standbys,
            DetectorConfig::oracle(detection_delay),
            false,
        )
    }

    /// Creates a coordinator with an explicit failure-detector
    /// configuration. `wall_clock` selects real time over deterministic
    /// virtual ticks (used by the TCP transport).
    pub fn with_detector(
        num_nodes: usize,
        num_standbys: usize,
        cfg: DetectorConfig,
        wall_clock: bool,
    ) -> Self {
        Coordinator {
            inner: Mutex::new(Inner {
                alive: vec![true; num_nodes],
                arrived: vec![false; num_nodes],
                arrived_count: 0,
                epoch: 0,
                results: VecDeque::new(),
                sum: 0,
                pending_failure: false,
                unrecovered: Vec::new(),
                standbys_available: num_standbys,
            }),
            cond: Condvar::new(),
            detector: Arc::new(FailureDetector::new(num_nodes, cfg, wall_clock)),
            alive_fast: (0..num_nodes).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// The failure detector driving this coordinator's liveness.
    pub fn detector(&self) -> &Arc<FailureDetector> {
        &self.detector
    }

    /// Point-in-time suspicion counters from the detector.
    pub fn suspicion_stats(&self) -> SuspicionStats {
        self.detector.stats()
    }

    /// Number of logical node slots (alive or not).
    pub fn num_nodes(&self) -> usize {
        self.inner.lock().alive.len()
    }

    /// Currently alive logical nodes, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.inner
            .lock()
            .alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Whether `node` is currently considered alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive_fast
            .get(node.index())
            .is_some_and(|a| a.load(Ordering::Acquire))
    }

    /// Enters the next barrier instance and blocks until every alive node
    /// has arrived; returns that instance's agreed outcome.
    ///
    /// A node that is marked failed while peers wait stops being required,
    /// so the barrier still completes (with a `Failed` outcome) — this is
    /// how the paper's delayed recovery "at the next global barrier" works.
    pub fn barrier(&self, me: NodeId) -> BarrierOutcome {
        self.barrier_sum(me, 0).0
    }

    /// Like [`Coordinator::barrier`] but also all-reduces a sum: every
    /// participant contributes `value` and observes the total across the
    /// alive nodes of this barrier instance. The engines use this for the
    /// global active-vertex count that drives convergence.
    ///
    /// A node marked failed mid-barrier contributes nothing (its value, like
    /// its messages, is lost with it).
    pub fn barrier_sum(&self, me: NodeId, value: u64) -> (BarrierOutcome, u64) {
        self.barrier_sum_pump(me, value, &mut || {})
    }

    /// Like [`Coordinator::barrier_sum`], but while blocked the caller also
    /// pumps the failure detector: each [`PUMP_QUANTUM`] slice advances the
    /// clock, self-stamps the waiter's liveness (a barrier waiter is alive
    /// by construction — only silent *non*-waiters can stay suspected),
    /// runs `emit` (the node's heartbeat-emission hook), and scans for
    /// confirmable failures. With an idle detector this degrades to a pure
    /// blocking wait.
    ///
    /// A node that was fenced out by a false suspicion observes its own
    /// death here: instead of asserting, the barrier refuses the arrival
    /// and reports the node to itself so it can exit cleanly.
    pub fn barrier_sum_pump(
        &self,
        me: NodeId,
        value: u64,
        emit: &mut dyn FnMut(),
    ) -> (BarrierOutcome, u64) {
        let mut inner = self.inner.lock();
        if !inner.alive[me.index()] {
            let mut dead = inner.unrecovered.clone();
            if !dead.contains(&me) {
                dead.push(me);
            }
            return (BarrierOutcome::Failed(dead), 0);
        }
        debug_assert!(!inner.arrived[me.index()], "{me} entered the barrier twice");
        let my_epoch = inner.epoch;
        inner.arrived[me.index()] = true;
        inner.arrived_count += 1;
        inner.sum += value;
        if inner.try_complete() {
            self.cond.notify_all();
        }
        loop {
            if let Some(result) = inner.result_for(my_epoch) {
                return result;
            }
            if self.detector.needs_pump() {
                if self.cond.wait_for(&mut inner, PUMP_QUANTUM) {
                    drop(inner);
                    self.detector.tick();
                    self.detector.note_alive(me);
                    emit();
                    self.pump_detector();
                    inner = self.inner.lock();
                }
            } else {
                self.cond.wait(&mut inner);
            }
        }
    }

    /// One detection pass: asks the detector for newly-confirmed failures
    /// and applies them. This is the *only* caller of [`mark_failed`] in
    /// production paths — the funnel the transport-seam guard enforces.
    ///
    /// [`mark_failed`]: Coordinator::mark_failed
    pub fn pump_detector(&self) {
        for node in self.detector.scan(&|n| self.is_alive(n)) {
            self.mark_failed(node);
        }
    }

    /// Reports that `node` crashed. Under the zero-delay oracle the node is
    /// marked dead immediately (the legacy synchronous path); under a
    /// delayed oracle the death is queued in virtual time and drained by
    /// the pump loop; under the heartbeat detector this is a no-op —
    /// survivors must notice the missed heartbeats themselves.
    ///
    /// Called by the crashing node itself on its way out.
    pub fn report_death(&self, node: NodeId) {
        if self.detector.report_death(node) {
            self.mark_failed(node);
        } else {
            // Wake blocked waiters so they re-check `needs_pump` and start
            // slicing their waits (they may be parked in a plain wait).
            self.cond.notify_all();
        }
    }

    /// Immediately marks `node` failed (test hook; production path is
    /// [`Coordinator::report_death`]).
    pub fn mark_failed(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        if !inner.alive[node.index()] {
            return;
        }
        inner.alive[node.index()] = false;
        self.alive_fast[node.index()].store(false, Ordering::Release);
        if inner.arrived[node.index()] {
            inner.arrived[node.index()] = false;
            inner.arrived_count -= 1;
        }
        inner.pending_failure = true;
        if !inner.unrecovered.contains(&node) {
            inner.unrecovered.push(node);
        }
        if inner.try_complete() {
            // waiters released below
        }
        self.cond.notify_all();
    }

    /// Marks `node` alive again with recovered state (Rebirth: a standby
    /// adopted its logical ID). The node is expected at subsequent barriers.
    pub fn revive(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        assert!(!inner.alive[node.index()], "revive of live node {node}");
        inner.alive[node.index()] = true;
        self.alive_fast[node.index()].store(true, Ordering::Release);
        inner.unrecovered.retain(|&n| n != node);
        // New incarnation: fresh liveness, stale heartbeat evidence fenced.
        self.detector.on_revive(node);
        self.cond.notify_all();
    }

    /// Acknowledges that the state of `node` has been migrated to the
    /// survivors (Migration recovery): it stays dead but stops being
    /// reported by barrier outcomes.
    pub fn ack_recovered(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        inner.unrecovered.retain(|&n| n != node);
    }

    /// Whether any failure is currently unrecovered (neither revived nor
    /// acknowledged as migrated).
    ///
    /// This is the liveness poll for nodes sitting in a blocking receive
    /// while peers may be crashing: a barrier only reports failures to nodes
    /// that *enter* it, so a node waiting on messages (a reborn standby
    /// waiting for its state batches) would otherwise deadlock against
    /// survivors that have already aborted the attempt. Polling this flag
    /// lets it break out and join the abort protocol at its next barrier.
    pub fn has_unrecovered_failure(&self) -> bool {
        !self.inner.lock().unrecovered.is_empty()
    }

    /// Claims one hot standby, if any remain. Returns whether a standby was
    /// available (the caller then revives the target node and routes a fresh
    /// inbox to the adopting thread).
    pub fn claim_standby(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.standbys_available == 0 {
            return false;
        }
        inner.standbys_available -= 1;
        true
    }

    /// Standbys not yet claimed.
    pub fn standbys_available(&self) -> usize {
        self.inner.lock().standbys_available
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn coord(n: usize) -> Arc<Coordinator> {
        Arc::new(Coordinator::new(n, 0, Duration::ZERO))
    }

    #[test]
    fn clean_barrier_with_two_nodes() {
        let c = coord(2);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.barrier(NodeId::new(1)));
        assert_eq!(c.barrier(NodeId::new(0)), BarrierOutcome::Clean);
        assert_eq!(t.join().unwrap(), BarrierOutcome::Clean);
    }

    #[test]
    fn barrier_instances_are_sequential() {
        let c = coord(1);
        for _ in 0..5 {
            assert_eq!(c.barrier(NodeId::new(0)), BarrierOutcome::Clean);
        }
    }

    #[test]
    fn failure_releases_waiting_barrier_with_failed_outcome() {
        let c = coord(2);
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || c2.barrier(NodeId::new(0)));
        // Node 1 crashes instead of arriving.
        std::thread::sleep(Duration::from_millis(20));
        c.mark_failed(NodeId::new(1));
        assert_eq!(
            waiter.join().unwrap(),
            BarrierOutcome::Failed(vec![NodeId::new(1)])
        );
    }

    #[test]
    fn failure_after_arrival_is_reported_next_barrier() {
        let c = coord(2);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.barrier(NodeId::new(1)));
        assert_eq!(c.barrier(NodeId::new(0)), BarrierOutcome::Clean);
        t.join().unwrap();
        c.mark_failed(NodeId::new(1));
        assert_eq!(
            c.barrier(NodeId::new(0)),
            BarrierOutcome::Failed(vec![NodeId::new(1)])
        );
    }

    #[test]
    fn revive_clears_unrecovered_and_rejoins_barrier() {
        let c = coord(2);
        c.mark_failed(NodeId::new(1));
        assert_eq!(
            c.barrier(NodeId::new(0)),
            BarrierOutcome::Failed(vec![NodeId::new(1)])
        );
        c.revive(NodeId::new(1));
        assert!(c.is_alive(NodeId::new(1)));
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.barrier(NodeId::new(1)));
        assert_eq!(c.barrier(NodeId::new(0)), BarrierOutcome::Clean);
        t.join().unwrap();
    }

    #[test]
    fn ack_recovered_keeps_node_dead_but_clean() {
        let c = coord(3);
        c.mark_failed(NodeId::new(2));
        let c1 = Arc::clone(&c);
        let t = std::thread::spawn(move || c1.barrier(NodeId::new(1)));
        assert!(c.barrier(NodeId::new(0)).is_fail());
        t.join().unwrap();
        c.ack_recovered(NodeId::new(2));
        assert!(!c.is_alive(NodeId::new(2)));
        assert_eq!(c.alive_nodes(), vec![NodeId::new(0), NodeId::new(1)]);
        let c1 = Arc::clone(&c);
        let t = std::thread::spawn(move || c1.barrier(NodeId::new(1)));
        assert_eq!(c.barrier(NodeId::new(0)), BarrierOutcome::Clean);
        t.join().unwrap();
    }

    #[test]
    fn double_failure_reports_both() {
        let c = coord(3);
        c.mark_failed(NodeId::new(1));
        c.mark_failed(NodeId::new(2));
        match c.barrier(NodeId::new(0)) {
            BarrierOutcome::Failed(mut nodes) => {
                nodes.sort();
                assert_eq!(nodes, vec![NodeId::new(1), NodeId::new(2)]);
            }
            o => panic!("expected failure outcome, got {o:?}"),
        }
    }

    #[test]
    fn mark_failed_is_idempotent() {
        let c = coord(2);
        c.mark_failed(NodeId::new(1));
        c.mark_failed(NodeId::new(1));
        match c.barrier(NodeId::new(0)) {
            BarrierOutcome::Failed(nodes) => assert_eq!(nodes.len(), 1),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn delayed_detection_eventually_fires() {
        let c = Arc::new(Coordinator::new(2, 0, Duration::from_millis(10)));
        c.report_death(NodeId::new(1));
        assert!(c.is_alive(NodeId::new(1)), "death visible before delay");
        let outcome = c.barrier(NodeId::new(0)); // blocks until detection
        assert!(outcome.is_fail());
    }

    #[test]
    fn heartbeat_close_event_fails_waiting_barrier() {
        use crate::detector::DetectorConfig;
        let cfg = DetectorConfig::heartbeat(Duration::from_millis(1), Duration::from_millis(4));
        let c = Arc::new(Coordinator::with_detector(2, 0, cfg, false));
        // Node 1 crashes: its context close is the only trace it leaves.
        c.detector().observe_close(NodeId::new(1), 0);
        // Node 0's pumped barrier wait must advance virtual time, suspect
        // the silent node, confirm via the close event, and fail the epoch.
        let outcome = c.barrier(NodeId::new(0));
        assert_eq!(outcome, BarrierOutcome::Failed(vec![NodeId::new(1)]));
        let st = c.suspicion_stats();
        assert_eq!(st.confirmed, 1);
        assert!(st.detect_ticks > 0, "observed latency recorded");
    }

    #[test]
    fn fenced_node_observes_own_death_at_barrier() {
        let c = coord(2);
        c.mark_failed(NodeId::new(0));
        let (outcome, sum) = c.barrier_sum(NodeId::new(0), 7);
        match outcome {
            BarrierOutcome::Failed(dead) => assert!(dead.contains(&NodeId::new(0))),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(sum, 0, "a dead node's contribution is lost");
    }

    #[test]
    fn standby_pool_depletes() {
        let c = Arc::new(Coordinator::new(2, 1, Duration::ZERO));
        assert_eq!(c.standbys_available(), 1);
        assert!(c.claim_standby());
        assert!(!c.claim_standby());
    }

    #[test]
    fn many_nodes_many_rounds() {
        let n = 8;
        let c = coord(n);
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(c.barrier(NodeId::from_index(i)), BarrierOutcome::Clean);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

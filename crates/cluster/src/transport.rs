//! The pluggable wire layer.
//!
//! Everything above this module speaks to the network through two seams:
//!
//! * [`Transport`] — cluster-wide plumbing: claiming a node's wire
//!   endpoint, rerouting it when a standby adopts a crashed identity, the
//!   standby wake-up channel, and shutdown.
//! * [`Pipe`] — one node's endpoint: `send` / `drain` / `recv_timeout`
//!   plus the pre-barrier `flush` fence.
//!
//! Three backends implement the seam:
//!
//! * [`ChannelTransport`] — today's in-process crossbeam channels with the
//!   lock-free snapshot-routing fast path, byte-for-byte the pre-refactor
//!   behaviour (it is `lockstep`: reliable, ordered, settled-by-send, so
//!   no sequence numbers are stamped and `flush` is a no-op).
//! * [`LossyTransport`] — the channel backend wrapped in deterministic
//!   seeded per-link faults ([`NetFaults`]): drop, duplicate, reorder,
//!   delay, applied per [`CommKind`].
//! * [`TcpTransport`] — real loopback TCP sockets; each logical node keeps
//!   persistent connections to its peers and ships length-prefixed frames
//!   encoded via [`WireCodec`]; fabric-owned reader threads decode and
//!   enqueue into the destination's local inbox.
//!
//! # Reliability model
//!
//! The BSP protocols upstairs assume *all messages sent before a barrier
//! are queued at their receiver when the barrier completes*. Channels give
//! this for free. The unreliable backends restore it with transport-level
//! interposition, never with receiver cooperation (a receiver blocked in a
//! barrier cannot cooperate — any handshake that needs it deadlocks):
//!
//! * every first transmission on a link `(from, to)` carries a sequence
//!   number and the sender/receiver *slot epochs* (bumped when a standby
//!   adopts the slot);
//! * delivery bookkeeping ([`NetLayer`]) is updated synchronously at
//!   enqueue time — by the sending thread for the lossy backend, by the
//!   fabric reader thread for TCP — so duplicate and stale-epoch frames
//!   are suppressed before they can reach an inbox;
//! * [`Pipe::flush`], called by `enter_barrier*` before arriving at the
//!   coordinator, retransmits everything the wire lost and waits (bounded
//!   backoff) until the [`NetLayer`] confirms every frame this endpoint
//!   sent has been resolved at its destination.
//!
//! Because the fence runs strictly before the sender arrives at the
//! barrier, and the barrier cannot complete until every participant
//! arrives, the lockstep invariant holds on every backend — which is why
//! the failure-free goldens are bit-identical across all three.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use imitator_metrics::{AtomicCommStats, CommKind};
use parking_lot::Mutex;

use crate::cluster::{Cluster, Envelope, Fabric, RouteCache, StandbyEvent};
use crate::detector::FailureDetector;
use crate::injector::NetFaults;
use crate::NodeId;

/// How long a fence waits for in-flight frames before declaring the
/// transport wedged. Matches the recovery patience upstairs: anything this
/// slow is a bug, not a slow network.
const FENCE_PATIENCE: Duration = Duration::from_secs(30);

/// Nominal wire cost of one heartbeat, charged uniformly on every backend
/// so overhead numbers are comparable across transports: the TCP frame
/// size (4-byte length prefix + [`TCP_HEADER`], empty payload).
pub(crate) const HB_WIRE_BYTES: u64 = 4 + TCP_HEADER as u64;

/// Binary encoding for messages that cross a real (serialised) wire.
///
/// The channel and lossy backends move owned values and never touch this;
/// [`TcpTransport`] requires it. Implementations must round-trip:
/// `decode_wire(encode_wire(m)) == Some(m)`.
pub trait WireCodec: Sized {
    /// Appends the encoded message to `buf`.
    fn encode_wire(&self, buf: &mut Vec<u8>);
    /// Decodes one message from `bytes` (`None` on corruption).
    fn decode_wire(bytes: &[u8]) -> Option<Self>;
}

impl WireCodec for u64 {
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl WireCodec for u32 {
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl WireCodec for () {
    fn encode_wire(&self, _buf: &mut Vec<u8>) {}
    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

/// Cluster-wide wire plumbing: the seam [`Cluster`](crate::Cluster) talks
/// through. One instance per cluster, shared by every handle.
pub(crate) trait Transport<M: Send + 'static>: Send + Sync {
    /// The shared local-queue fabric (routing table, parked inboxes,
    /// standby channel). All backends deliver into these queues; they
    /// differ in the path a message takes to get there.
    fn fabric(&self) -> &Fabric<M>;

    /// Claims the wire endpoint for node `id` around its local inbox.
    fn open(
        &self,
        cluster: &Cluster<M>,
        id: NodeId,
        inbox: Receiver<Envelope<M>>,
    ) -> Box<dyn Pipe<M>>;

    /// Called under the routing-table republish when a standby adopts slot
    /// `id`: bump the slot epoch so stale in-flight frames are discarded
    /// and the adopter's fresh sequence numbers cannot collide.
    fn on_adopt(&self, _id: NodeId) {}

    /// Hands a wake-up event to one thread blocked in `standby_wait`.
    fn standby_send(&self, ev: StandbyEvent<M>) {
        self.fabric()
            .standby_tx
            .send(ev)
            .expect("standby channel lives as long as the fabric");
    }

    /// Blocks a standby thread until an event arrives or `patience`
    /// elapses.
    fn standby_wait(&self, patience: Duration) -> Option<StandbyEvent<M>> {
        self.fabric().standby_rx.recv_timeout(patience).ok()
    }

    /// Releases transport resources (listener sockets, reader threads).
    /// Idempotent; also invoked on drop by backends that own OS handles.
    fn shutdown(&self) {}
}

/// One node's wire endpoint. Owned by its `NodeCtx`; exactly one thread
/// uses it at a time (interior mutability, like the route cache it wraps).
pub(crate) trait Pipe<M>: Send {
    /// Enqueues `env` toward `to`. The traffic `kind` is metadata for
    /// fault injection only — accounting happened upstairs.
    fn send(&self, to: NodeId, env: Envelope<M>, kind: CommKind) -> bool;

    /// Drains every message currently queued locally.
    fn drain(&self) -> Vec<Envelope<M>>;

    /// Blocks up to `timeout` for one message.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>>;

    /// The pre-barrier fence: retransmits what the wire lost and waits
    /// until everything this endpoint sent has been resolved at its
    /// destination. No-op on lockstep backends.
    fn flush(&self) {}

    /// Best-effort, unacknowledged liveness beacon toward `to`. Unlike
    /// [`send`](Pipe::send), heartbeats carry no payload, take no part in
    /// the fence (a lost heartbeat is *information*, not data loss — the
    /// next one supersedes it), and are routed to the shared
    /// [`FailureDetector`] rather than to an inbox. Default: no-op, so the
    /// oracle-mode wire is byte-identical to before the detector existed.
    fn send_heartbeat(&self, _to: NodeId, _seq: u64) {}
}

// ---------------------------------------------------------------------------
// Channel backend — the pre-refactor fast path, verbatim.
// ---------------------------------------------------------------------------

/// The in-process channel backend: reliable, ordered, settled-by-send.
pub(crate) struct ChannelTransport<M> {
    fabric: Arc<Fabric<M>>,
}

impl<M> ChannelTransport<M> {
    pub(crate) fn new(fabric: Arc<Fabric<M>>) -> Self {
        ChannelTransport { fabric }
    }
}

impl<M: Send + 'static> Transport<M> for ChannelTransport<M> {
    fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }

    fn open(
        &self,
        cluster: &Cluster<M>,
        id: NodeId,
        inbox: Receiver<Envelope<M>>,
    ) -> Box<dyn Pipe<M>> {
        let det = Arc::clone(cluster.coordinator().detector());
        let birth = det.birth(id);
        Box::new(ChannelPipe {
            me: id,
            birth,
            inbox,
            cache: RefCell::new(self.fabric.snapshot()),
            fabric: Arc::clone(&self.fabric),
            det,
        })
    }
}

/// The channel endpoint: a private inbox plus the generation-checked
/// cached snapshot of the sender table (see the fast-path notes in
/// `cluster.rs`).
struct ChannelPipe<M> {
    me: NodeId,
    birth: u64,
    inbox: Receiver<Envelope<M>>,
    cache: RefCell<RouteCache<M>>,
    fabric: Arc<Fabric<M>>,
    det: Arc<FailureDetector>,
}

impl<M: Send + 'static> Pipe<M> for ChannelPipe<M> {
    fn send(&self, to: NodeId, env: Envelope<M>, _kind: CommKind) -> bool {
        self.fabric
            .push_cached(&mut self.cache.borrow_mut(), to, env)
    }

    fn drain(&self) -> Vec<Envelope<M>> {
        let mut q = self.inbox.drain_all();
        let out: Vec<Envelope<M>> = q.drain(..).collect();
        self.inbox.recycle(q);
        out
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    fn send_heartbeat(&self, _to: NodeId, seq: u64) {
        // Lockstep wire: the beacon lands instantly. Per-peer copies of
        // the same seq collapse in the detector's dedup.
        self.det.observe_hb(self.me, self.birth, seq);
    }
}

// ---------------------------------------------------------------------------
// Shared reliability bookkeeping for the non-lockstep backends.
// ---------------------------------------------------------------------------

/// Receiver-side per-link delivery state. `seen`/`delivered` are scoped to
/// the *sender's* slot epoch: when a standby adopts the sender's identity
/// its fresh sequence numbers must not collide with the dead
/// predecessor's, so a frame from a newer epoch resets the link.
struct LinkRx {
    src_epoch: u64,
    delivered: u64,
    seen: HashSet<u64>,
}

/// Shared delivery bookkeeping: per-slot epochs plus per-ordered-link
/// receive state, updated synchronously at enqueue time.
pub(crate) struct NetLayer {
    n: usize,
    epochs: Box<[AtomicU64]>,
    links: Box<[Mutex<LinkRx>]>,
}

impl NetLayer {
    fn new(n: usize) -> Self {
        NetLayer {
            n,
            epochs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            links: (0..n * n)
                .map(|_| {
                    Mutex::new(LinkRx {
                        src_epoch: 0,
                        delivered: 0,
                        seen: HashSet::new(),
                    })
                })
                .collect(),
        }
    }

    fn epoch(&self, id: NodeId) -> u64 {
        self.epochs[id.index()].load(Ordering::Acquire)
    }

    fn bump_epoch(&self, id: NodeId) {
        self.epochs[id.index()].fetch_add(1, Ordering::Release);
    }

    fn link(&self, from: NodeId, to: NodeId) -> &Mutex<LinkRx> {
        &self.links[from.index() * self.n + to.index()]
    }

    /// How many distinct frames of `src_epoch` have been resolved on
    /// `(from, to)` — zero until the first frame of that epoch arrives.
    fn delivered(&self, from: NodeId, to: NodeId, src_epoch: u64) -> u64 {
        let l = self.link(from, to).lock();
        if l.src_epoch == src_epoch {
            l.delivered
        } else {
            0
        }
    }

    /// Resolves one frame at its destination: suppresses duplicates and
    /// stale-sender frames, counts it delivered, and enqueues it into the
    /// destination inbox unless the destination slot was re-identified
    /// since the frame was stamped (in which case the message is lost,
    /// exactly like a send into a crashed node's rotting inbox).
    fn resolve<M>(
        &self,
        fabric: &Fabric<M>,
        cache: &mut RouteCache<M>,
        comm: &AtomicCommStats,
        to: NodeId,
        frame: Frame<M>,
    ) {
        let cur_dst = self.epoch(to);
        let mut l = self.link(frame.env.from, to).lock();
        if frame.src_epoch < l.src_epoch {
            return; // frame from a sender identity that no longer exists
        }
        if frame.src_epoch > l.src_epoch {
            l.src_epoch = frame.src_epoch;
            l.delivered = 0;
            l.seen.clear();
        }
        if !l.seen.insert(frame.seq) {
            comm.record_redelivered(1);
            return;
        }
        l.delivered += 1;
        drop(l);
        if frame.dst_epoch == cur_dst {
            fabric.push_cached(cache, to, frame.env);
        }
    }
}

/// One stamped in-flight message.
struct Frame<M> {
    seq: u64,
    src_epoch: u64,
    dst_epoch: u64,
    env: Envelope<M>,
}

/// Spins with bounded exponential backoff until `done()` holds.
///
/// # Panics
///
/// Panics after [`FENCE_PATIENCE`] — a fence that cannot settle means the
/// transport lost track of a frame, which must surface, not hang.
fn backoff_until(what: &str, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    let mut pause = Duration::from_micros(50);
    while !done() {
        assert!(
            start.elapsed() < FENCE_PATIENCE,
            "transport fence wedged waiting for {what}"
        );
        std::thread::sleep(pause);
        pause = (pause * 2).min(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Lossy backend.
// ---------------------------------------------------------------------------

/// The channel backend wrapped in deterministic seeded per-link faults.
pub(crate) struct LossyTransport<M> {
    fabric: Arc<Fabric<M>>,
    net: Arc<NetLayer>,
    faults: NetFaults,
    comm: Arc<AtomicCommStats>,
}

impl<M> LossyTransport<M> {
    pub(crate) fn new(
        fabric: Arc<Fabric<M>>,
        n: usize,
        faults: NetFaults,
        comm: Arc<AtomicCommStats>,
    ) -> Self {
        LossyTransport {
            fabric,
            net: Arc::new(NetLayer::new(n)),
            faults,
            comm,
        }
    }
}

impl<M: Send + Clone + 'static> Transport<M> for LossyTransport<M> {
    fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }

    fn open(
        &self,
        cluster: &Cluster<M>,
        id: NodeId,
        inbox: Receiver<Envelope<M>>,
    ) -> Box<dyn Pipe<M>> {
        let det = Arc::clone(cluster.coordinator().detector());
        let birth = det.birth(id);
        Box::new(LossyPipe {
            me: id,
            birth,
            my_epoch: self.net.epoch(id),
            inbox,
            cache: RefCell::new(self.fabric.snapshot()),
            fabric: Arc::clone(&self.fabric),
            net: Arc::clone(&self.net),
            faults: self.faults,
            comm: Arc::clone(&self.comm),
            det,
            tx: RefCell::new(HashMap::new()),
            hb_rng: RefCell::new(HashMap::new()),
        })
    }

    fn on_adopt(&self, id: NodeId) {
        self.net.bump_epoch(id);
    }
}

/// Per-destination sender state of one lossy endpoint.
struct TxLink<M> {
    rng: u64,
    next_seq: u64,
    /// Frames the wire "lost"; retransmitted fault-free at the fence.
    dropped: Vec<Frame<M>>,
    /// A frame held back for reorder (released after the next send on the
    /// link) or delay (released at the fence).
    held: Option<(Frame<M>, bool /* release on next send */)>,
}

impl<M> TxLink<M> {
    fn new(seed: u64, me: NodeId, to: NodeId, epoch: u64) -> Self {
        // Per-link stream: depends only on identities and the seed, never
        // on thread timing.
        let salt = (u64::from(me.raw()) << 40) ^ (u64::from(to.raw()) << 16) ^ epoch;
        TxLink {
            rng: seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407),
            next_seq: 0,
            dropped: Vec::new(),
            held: None,
        }
    }

    fn roll(&mut self) -> u64 {
        splitmix_roll(&mut self.rng)
    }
}

/// One step of the seeded per-link splitmix stream, reduced to a
/// per-mille roll.
fn splitmix_roll(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % 1000
}

struct LossyPipe<M> {
    me: NodeId,
    birth: u64,
    my_epoch: u64,
    inbox: Receiver<Envelope<M>>,
    cache: RefCell<RouteCache<M>>,
    fabric: Arc<Fabric<M>>,
    net: Arc<NetLayer>,
    faults: NetFaults,
    comm: Arc<AtomicCommStats>,
    det: Arc<FailureDetector>,
    /// Per-destination heartbeat fault stream, deliberately separate from
    /// the data [`TxLink`] stream so enabling heartbeats cannot perturb
    /// the seeded fault pattern the data traffic sees.
    hb_rng: RefCell<HashMap<u32, u64>>,
    tx: RefCell<HashMap<u32, TxLink<M>>>,
}

impl<M: Send + Clone + 'static> LossyPipe<M> {
    fn resolve(&self, to: NodeId, frame: Frame<M>) {
        self.net.resolve(
            &self.fabric,
            &mut self.cache.borrow_mut(),
            &self.comm,
            to,
            frame,
        );
    }
}

impl<M: Send + Clone + 'static> Pipe<M> for LossyPipe<M> {
    fn send(&self, to: NodeId, env: Envelope<M>, kind: CommKind) -> bool {
        let mut tx = self.tx.borrow_mut();
        let link = tx
            .entry(to.raw())
            .or_insert_with(|| TxLink::new(self.faults.seed, self.me, to, self.my_epoch));
        let frame = Frame {
            seq: link.next_seq,
            src_epoch: self.my_epoch,
            dst_epoch: self.net.epoch(to),
            env,
        };
        link.next_seq += 1;

        let f = self.faults.for_kind(kind);
        let roll = link.roll();
        let dup_at = u64::from(f.drop_pm) + u64::from(f.dup_pm);
        let reorder_at = dup_at + u64::from(f.reorder_pm);
        let delay_at = reorder_at + u64::from(f.delay_pm);
        if roll < u64::from(f.drop_pm) {
            link.dropped.push(frame);
            return true; // lost on the wire; the fence will resend it
        }
        if roll >= dup_at && roll < delay_at && link.held.is_none() {
            // Hold back: reorder releases after the next delivery on the
            // link, delay not before the fence. Nothing was delivered, so
            // any previously held frame (there is none) stays put.
            link.held = Some((frame, roll < reorder_at));
            return true;
        }
        let dup = roll < dup_at;
        let copy = dup.then(|| Frame {
            seq: frame.seq,
            src_epoch: frame.src_epoch,
            dst_epoch: frame.dst_epoch,
            env: frame.env.clone(),
        });
        self.resolve(to, frame);
        if let Some(copy) = copy {
            self.resolve(to, copy); // suppressed by the sequence filter
        }
        if matches!(link.held, Some((_, true))) {
            // A later message was just delivered past the held frame;
            // release it now — the two arrive in swapped order.
            let (held, _) = link.held.take().expect("matched Some above");
            self.resolve(to, held);
        }
        true
    }

    fn drain(&self) -> Vec<Envelope<M>> {
        let mut q = self.inbox.drain_all();
        let out: Vec<Envelope<M>> = q.drain(..).collect();
        self.inbox.recycle(q);
        out
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    fn flush(&self) {
        let mut tx = self.tx.borrow_mut();
        let mut retries = 0u64;
        for (to, link) in tx.iter_mut() {
            let to = NodeId::new(*to);
            if let Some((held, _)) = link.held.take() {
                self.net.resolve(
                    &self.fabric,
                    &mut self.cache.borrow_mut(),
                    &self.comm,
                    to,
                    held,
                );
            }
            for frame in link.dropped.drain(..) {
                self.net.resolve(
                    &self.fabric,
                    &mut self.cache.borrow_mut(),
                    &self.comm,
                    to,
                    frame,
                );
                retries += 1;
            }
        }
        if retries > 0 {
            self.comm.record_retries(retries);
        }
    }

    fn send_heartbeat(&self, to: NodeId, seq: u64) {
        let mut hb = self.hb_rng.borrow_mut();
        let state = hb.entry(to.raw()).or_insert_with(|| {
            // Same shape as the TxLink seeding but a different multiplier:
            // an independent stream keyed by the same identities.
            let salt =
                (u64::from(self.me.raw()) << 40) ^ (u64::from(to.raw()) << 16) ^ self.my_epoch;
            self.faults.seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93)
        });
        let f = self.faults.heartbeat;
        let roll = splitmix_roll(state);
        let dup_at = u64::from(f.drop_pm) + u64::from(f.dup_pm);
        let reorder_at = dup_at + u64::from(f.reorder_pm);
        let delay_at = reorder_at + u64::from(f.delay_pm);
        if roll < u64::from(f.drop_pm) || (roll >= reorder_at && roll < delay_at) {
            // Dropped or delayed: a heartbeat is never retransmitted — the
            // next beacon supersedes it. (A reordered one still arrives;
            // the detector's monotonic seq check absorbs the disorder.)
            return;
        }
        self.det.observe_hb(self.me, self.birth, seq);
        if roll < dup_at {
            self.det.observe_hb(self.me, self.birth, seq); // dup, seq-dedup'd
        }
    }
}

// ---------------------------------------------------------------------------
// TCP backend.
// ---------------------------------------------------------------------------

/// Wire frame header: `[len u32][kind u8][from u32][src_epoch u64]
/// [dst_epoch u64][seq u64][payload]`, everything little-endian, `len`
/// covering all that follows it. `kind` selects the frame's routing:
/// [`FRAME_DATA`] goes through [`NetLayer::resolve`] into an inbox,
/// [`FRAME_HEARTBEAT`] (empty payload; the `src_epoch` slot carries the
/// detector *birth*, the `dst_epoch` slot is unused) goes straight to the
/// shared [`FailureDetector`].
const TCP_HEADER: usize = 1 + 4 + 8 + 8 + 8;

/// Frame kind: an application message.
const FRAME_DATA: u8 = 0;
/// Frame kind: a liveness beacon for the failure detector.
const FRAME_HEARTBEAT: u8 = 1;

/// How many times a transient connect or accept failure is retried before
/// the endpoint gives up (exponential backoff with deterministic jitter
/// between attempts).
const NET_RETRY_ATTEMPTS: u32 = 5;

/// Reader-thread poll quantum: readers block at most this long before
/// re-checking the shutdown flag, so `shutdown` can join them without
/// racing a blocked `read`.
const READ_POLL: Duration = Duration::from_millis(25);

/// Connects to `addr` with bounded exponential backoff. The jitter is
/// derived from the link identity and attempt number — deterministic, but
/// de-synchronised across links so a thundering herd of reconnects
/// spreads out.
fn connect_with_retry(addr: SocketAddr, me: NodeId, to: NodeId) -> Option<TcpStream> {
    let mut pause = Duration::from_micros(200);
    for attempt in 0..NET_RETRY_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Some(s);
            }
            Err(_) if attempt + 1 < NET_RETRY_ATTEMPTS => {
                let mut h = (u64::from(me.raw()) << 32) ^ u64::from(to.raw()) ^ u64::from(attempt);
                let jitter = Duration::from_micros(splitmix_roll(&mut h) % 200);
                std::thread::sleep(pause + jitter);
                pause *= 2;
            }
            Err(_) => return None,
        }
    }
    None
}

/// Real loopback TCP sockets: one listener per node slot, persistent
/// outbound connections per sender, fabric-owned reader threads decoding
/// frames into the destination's local inbox (data) or the shared
/// failure detector (heartbeats).
pub(crate) struct TcpTransport<M> {
    fabric: Arc<Fabric<M>>,
    net: Arc<NetLayer>,
    det: Arc<FailureDetector>,
    addrs: Arc<Vec<SocketAddr>>,
    done: Arc<AtomicBool>,
    acceptors: Mutex<Vec<std::thread::JoinHandle<()>>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl<M: Send + WireCodec + 'static> TcpTransport<M> {
    pub(crate) fn new(
        fabric: Arc<Fabric<M>>,
        n: usize,
        comm: Arc<AtomicCommStats>,
        det: Arc<FailureDetector>,
    ) -> Self {
        let net = Arc::new(NetLayer::new(n));
        let done = Arc::new(AtomicBool::new(false));
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        for slot in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")
                .unwrap_or_else(|e| panic!("bind loopback listener for slot {slot}: {e}"));
            addrs.push(l.local_addr().expect("listener has a local address"));
            listeners.push(l);
        }
        let mut acceptors = Vec::with_capacity(n);
        for (slot, listener) in listeners.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            let net = Arc::clone(&net);
            let comm = Arc::clone(&comm);
            let det = Arc::clone(&det);
            let done = Arc::clone(&done);
            let readers = Arc::clone(&readers);
            acceptors.push(std::thread::spawn(move || {
                let to = NodeId::from_index(slot);
                let mut errors = 0u32;
                let mut pause = Duration::from_micros(200);
                loop {
                    let stream = match listener.accept() {
                        Ok((stream, _)) => {
                            errors = 0;
                            pause = Duration::from_micros(200);
                            stream
                        }
                        Err(_) => {
                            // Transient accept failures (EMFILE, ECONNABORTED)
                            // are retried a bounded number of times.
                            errors += 1;
                            if done.load(Ordering::Acquire) || errors >= NET_RETRY_ATTEMPTS {
                                break;
                            }
                            std::thread::sleep(pause);
                            pause *= 2;
                            continue;
                        }
                    };
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let fabric = Arc::clone(&fabric);
                    let net = Arc::clone(&net);
                    let comm = Arc::clone(&comm);
                    let det = Arc::clone(&det);
                    let done = Arc::clone(&done);
                    readers.lock().push(std::thread::spawn(move || {
                        read_frames(stream, to, &fabric, &net, &comm, &det, &done)
                    }));
                }
            }));
        }
        TcpTransport {
            fabric,
            net,
            det,
            addrs: Arc::new(addrs),
            done,
            acceptors: Mutex::new(acceptors),
            readers,
        }
    }
}

impl<M> TcpTransport<M> {
    /// Idempotent teardown: raise the flag, nudge every acceptor awake,
    /// then join acceptors and readers so no thread outlives the
    /// transport (readers poll the flag every [`READ_POLL`]).
    fn shutdown_impl(&self) {
        if self.done.swap(true, Ordering::AcqRel) {
            return;
        }
        for addr in self.addrs.iter() {
            let _ = TcpStream::connect(addr);
        }
        for h in self.acceptors.lock().drain(..) {
            let _ = h.join();
        }
        for h in self.readers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Reads exactly `buf.len()` bytes, treating read timeouts as a cue to
/// re-check the shutdown flag. Returns `false` on EOF, error, or
/// shutdown.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], done: &AtomicBool) -> bool {
    use std::io::ErrorKind;
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return false, // peer closed (endpoint dropped)
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if done.load(Ordering::Acquire) {
                    return false; // shutting down; abandon the stream
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// One connection's reader loop: length-prefixed frames → decode →
/// resolve (dedup + epoch check) → local inbox; heartbeat frames short-
/// circuit into the failure detector, birth-guarded.
fn read_frames<M: Send + WireCodec + 'static>(
    mut stream: TcpStream,
    to: NodeId,
    fabric: &Fabric<M>,
    net: &NetLayer,
    comm: &AtomicCommStats,
    det: &FailureDetector,
    done: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut cache = fabric.snapshot();
    let mut len = [0u8; 4];
    let mut payload = Vec::new();
    loop {
        if !read_full(&mut stream, &mut len, done) {
            return; // peer closed, shutdown, or error
        }
        let len = u32::from_le_bytes(len) as usize;
        if len < TCP_HEADER {
            return;
        }
        payload.resize(len, 0);
        if !read_full(&mut stream, &mut payload, done) {
            return;
        }
        let word = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
        let kind = payload[0];
        let from = NodeId::new(u32::from_le_bytes(payload[1..5].try_into().unwrap()));
        let (src_epoch, dst_epoch, seq) = (word(5), word(13), word(21));
        match kind {
            FRAME_HEARTBEAT => {
                // src_epoch carries the sender's detector birth; a beacon
                // from a fenced predecessor incarnation is ignored there.
                det.observe_hb(from, src_epoch, seq);
            }
            FRAME_DATA => {
                let Some(msg) = M::decode_wire(&payload[TCP_HEADER..]) else {
                    return; // corrupt stream; drop the connection
                };
                net.resolve(
                    fabric,
                    &mut cache,
                    comm,
                    to,
                    Frame {
                        seq,
                        src_epoch,
                        dst_epoch,
                        env: Envelope { from, msg },
                    },
                );
            }
            _ => return, // unknown kind: corrupt stream
        }
    }
}

impl<M: Send + WireCodec + 'static> Transport<M> for TcpTransport<M> {
    fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }

    fn open(
        &self,
        _cluster: &Cluster<M>,
        id: NodeId,
        inbox: Receiver<Envelope<M>>,
    ) -> Box<dyn Pipe<M>> {
        Box::new(TcpPipe {
            me: id,
            birth: self.det.birth(id),
            my_epoch: self.net.epoch(id),
            inbox,
            net: Arc::clone(&self.net),
            addrs: Arc::clone(&self.addrs),
            conns: RefCell::new(HashMap::new()),
            sent: RefCell::new(HashMap::new()),
            buf: RefCell::new(Vec::new()),
        })
    }

    fn on_adopt(&self, id: NodeId) {
        self.net.bump_epoch(id);
    }

    fn shutdown(&self) {
        self.shutdown_impl();
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

struct TcpPipe<M> {
    me: NodeId,
    birth: u64,
    my_epoch: u64,
    inbox: Receiver<Envelope<M>>,
    net: Arc<NetLayer>,
    addrs: Arc<Vec<SocketAddr>>,
    conns: RefCell<HashMap<u32, TcpStream>>,
    /// Per-destination `(next_seq, cumulative frames written)`.
    sent: RefCell<HashMap<u32, u64>>,
    buf: RefCell<Vec<u8>>,
}

impl<M> TcpPipe<M> {
    /// Writes the frame in `self.buf` to the connection toward `to`,
    /// dialling it (bounded retry) on first use. A connection that errors
    /// mid-write is discarded so the next frame redials instead of
    /// writing into a dead socket.
    fn write_frame(&self, to: NodeId) -> bool {
        let mut conns = self.conns.borrow_mut();
        let stream = match conns.entry(to.raw()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                match connect_with_retry(self.addrs[to.index()], self.me, to) {
                    Some(s) => v.insert(s),
                    None => return false, // transport shut down
                }
            }
        };
        if stream.write_all(&self.buf.borrow()).is_err() {
            conns.remove(&to.raw());
            return false;
        }
        true
    }
}

impl<M: Send + WireCodec + 'static> Pipe<M> for TcpPipe<M> {
    fn send(&self, to: NodeId, env: Envelope<M>, _kind: CommKind) -> bool {
        let mut sent = self.sent.borrow_mut();
        let seq = sent.entry(to.raw()).or_insert(0);
        {
            let mut buf = self.buf.borrow_mut();
            buf.clear();
            buf.extend_from_slice(&[0u8; 4]); // length, patched below
            buf.push(FRAME_DATA);
            buf.extend_from_slice(&env.from.raw().to_le_bytes());
            buf.extend_from_slice(&self.my_epoch.to_le_bytes());
            buf.extend_from_slice(&self.net.epoch(to).to_le_bytes());
            buf.extend_from_slice(&seq.to_le_bytes());
            env.msg.encode_wire(&mut buf);
            let len = (buf.len() - 4) as u32;
            buf[0..4].copy_from_slice(&len.to_le_bytes());
        }
        if !self.write_frame(to) {
            return false;
        }
        *seq += 1;
        true
    }

    fn drain(&self) -> Vec<Envelope<M>> {
        let mut q = self.inbox.drain_all();
        let out: Vec<Envelope<M>> = q.drain(..).collect();
        self.inbox.recycle(q);
        out
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    fn flush(&self) {
        // TCP never loses a frame in-process; the fence only has to wait
        // until the destination reader threads have resolved everything
        // this endpoint wrote (the ack side of ack/retry — kernel TCP is
        // the retry side).
        let sent = self.sent.borrow();
        for (&to, &n) in sent.iter() {
            if n == 0 {
                continue;
            }
            let to = NodeId::new(to);
            backoff_until("tcp frame resolution", || {
                self.net.delivered(self.me, to, self.my_epoch) >= n
            });
        }
    }

    fn send_heartbeat(&self, to: NodeId, seq: u64) {
        {
            let mut buf = self.buf.borrow_mut();
            buf.clear();
            buf.extend_from_slice(&[0u8; 4]);
            buf.push(FRAME_HEARTBEAT);
            buf.extend_from_slice(&self.me.raw().to_le_bytes());
            buf.extend_from_slice(&self.birth.to_le_bytes()); // src_epoch slot: detector birth
            buf.extend_from_slice(&0u64.to_le_bytes()); // dst_epoch slot: unused
            buf.extend_from_slice(&seq.to_le_bytes());
            let len = (buf.len() - 4) as u32;
            buf[0..4].copy_from_slice(&len.to_le_bytes());
        }
        // Best-effort: no seq accounting, no fence participation — a lost
        // beacon is superseded by the next one.
        let _ = self.write_frame(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::{LinkFaults, TransportKind};
    use crate::{BarrierOutcome, Cluster};

    fn lossy_kind(seed: u64, f: LinkFaults) -> TransportKind {
        TransportKind::Lossy(NetFaults::uniform(seed, f))
    }

    fn pair(kind: TransportKind) -> (Cluster<u64>, crate::NodeCtx<u64>, crate::NodeCtx<u64>) {
        let c: Cluster<u64> = Cluster::with_transport(2, 1, Duration::ZERO, kind);
        let a = c.take_ctx(NodeId::new(0));
        let b = c.take_ctx(NodeId::new(1));
        (c, a, b)
    }

    /// Everything sent before the sender's barrier is drainable after it,
    /// no matter how hostile the link: the fence restores the lockstep
    /// invariant.
    #[test]
    fn lossy_fence_restores_pre_barrier_delivery() {
        let faults = LinkFaults {
            drop_pm: 300,
            dup_pm: 200,
            reorder_pm: 200,
            delay_pm: 100,
        };
        let (c, a, b) = pair(lossy_kind(7, faults));
        let t = std::thread::spawn(move || {
            for i in 0..500u64 {
                b.send(NodeId::new(0), i);
            }
            b.enter_barrier();
            b
        });
        a.enter_barrier();
        let mut got: Vec<u64> = a.drain().into_iter().map(|e| e.msg).collect();
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<u64>>());
        t.join().unwrap();
        let br = c.comm_breakdown();
        assert!(br.retries > 0, "drops must surface as fence retries");
        assert!(br.redelivered > 0, "dups must be suppressed and counted");
        c.shutdown_transport();
    }

    /// The same seed produces the same fault pattern.
    #[test]
    fn lossy_faults_are_deterministic() {
        let faults = LinkFaults {
            drop_pm: 250,
            dup_pm: 250,
            reorder_pm: 0,
            delay_pm: 0,
        };
        let run = || {
            let (c, a, b) = pair(lossy_kind(99, faults));
            for i in 0..200u64 {
                a.send(NodeId::new(1), i);
            }
            let t = std::thread::spawn(move || b.enter_barrier());
            a.enter_barrier();
            t.join().unwrap();
            let br = c.comm_breakdown();
            (br.retries, br.redelivered)
        };
        assert_eq!(run(), run());
        let (retries, redelivered) = run();
        assert!(retries > 0 && redelivered > 0);
    }

    #[test]
    fn tcp_roundtrip_with_sender_identity() {
        let (c, a, b) = pair(TransportKind::Tcp);
        assert!(a.send(NodeId::new(1), 4242));
        let got = b.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(got.from, NodeId::new(0));
        assert_eq!(got.msg, 4242);
        drop((a, b));
        c.shutdown_transport();
    }

    #[test]
    fn tcp_fence_holds_pre_barrier_invariant() {
        let (c, a, b) = pair(TransportKind::Tcp);
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                b.send(NodeId::new(0), i);
            }
            assert_eq!(b.enter_barrier(), BarrierOutcome::Clean);
            b
        });
        a.enter_barrier();
        let got: Vec<u64> = a.drain().into_iter().map(|e| e.msg).collect();
        // One link, one connection: TCP also preserves order.
        assert_eq!(got, (0..1000).collect::<Vec<u64>>());
        t.join().unwrap();
        c.shutdown_transport();
    }

    #[test]
    fn tcp_die_then_adopt_drops_stale_frames() {
        let (c, a, b) = pair(TransportKind::Tcp);
        a.send(NodeId::new(1), 7);
        b.die();
        assert!(a.enter_barrier().is_fail());
        assert!(c.coordinator().claim_standby());
        let b2 = c.adopt(NodeId::new(1));
        // The pre-crash frame must not surface in the adopted inbox even
        // if its reader thread resolves it after the adoption.
        std::thread::sleep(Duration::from_millis(50));
        assert!(b2.drain().is_empty());
        a.send(NodeId::new(1), 8);
        assert_eq!(b2.recv_timeout(Duration::from_secs(5)).unwrap().msg, 8);
        drop((a, b2));
        c.shutdown_transport();
    }

    #[test]
    fn wire_codec_scalar_roundtrip() {
        let mut buf = Vec::new();
        0xDEAD_BEEF_u32.encode_wire(&mut buf);
        assert_eq!(u32::decode_wire(&buf), Some(0xDEAD_BEEF));
        buf.clear();
        42u64.encode_wire(&mut buf);
        assert_eq!(u64::decode_wire(&buf), Some(42));
        assert_eq!(u64::decode_wire(&buf[1..]), None);
    }
}

//! Simulated cluster runtime for the Imitator reproduction.
//!
//! Stands in for the paper's 50-node EC2-like cluster: every logical node is
//! a thread with private state and a typed message inbox; nodes communicate
//! *only* through messages and the coordination service, exactly as the real
//! system communicates only through the network and ZooKeeper.
//!
//! * [`Cluster`] owns the routing fabric and hands each node a [`NodeCtx`].
//! * [`Coordinator`] provides the ZooKeeper role (§3.2): global barriers
//!   whose outcome reports node failures (Algorithm 1's
//!   `enter_barrier`/`leave_barrier`), membership, and standby assignment.
//! * [`FailureInjector`] schedules fail-stop crashes at chosen iterations
//!   and protocol points, like the paper's injected machine failures (§6.9).
//!
//! Fail-stop is modelled faithfully: a killed node simply stops executing
//! and is detected after a configurable heartbeat delay; messages it sent
//! before dying may already be queued at peers (who roll back, per
//! Algorithm 1), and messages sent *to* it are dropped.
//!
//! # Examples
//!
//! ```
//! use imitator_cluster::{Cluster, BarrierOutcome};
//! use std::time::Duration;
//!
//! let cluster: Cluster<u32> = Cluster::new(2, 0, Duration::ZERO);
//! let a = cluster.take_ctx(imitator_cluster::NodeId::new(0));
//! let b = cluster.take_ctx(imitator_cluster::NodeId::new(1));
//! let t = std::thread::spawn(move || {
//!     b.send(imitator_cluster::NodeId::new(0), 42);
//!     b.enter_barrier()
//! });
//! assert_eq!(a.enter_barrier(), BarrierOutcome::Clean);
//! assert_eq!(t.join().unwrap(), BarrierOutcome::Clean);
//! assert_eq!(a.drain()[0].msg, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod coord;
mod detector;
mod injector;
mod transport;

pub use cluster::{Cluster, Envelope, NodeCtx};
pub use coord::{BarrierOutcome, Coordinator};
pub use detector::{
    Clock, DetectorConfig, DetectorKind, FailureDetector, VirtualClock, WallClock, PUMP_QUANTUM,
    TICKS_PER_MS,
};
pub use injector::{FailPoint, FailureInjector, FailurePlan, LinkFaults, NetFaults, TransportKind};
pub use transport::WireCodec;

use std::fmt;

/// A logical node (machine) identifier, stable across recovery: when a
/// standby is adopted through Rebirth it assumes the crashed node's logical
/// ID, as in the paper (§5.3.1, "the new coming node's logic ID of this
/// job").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node ID from a raw index.
    pub fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Creates a node ID from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// The raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The ID as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

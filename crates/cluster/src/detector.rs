//! Pluggable failure detection: the oracle the injector used to whisper
//! through, and a real heartbeat/suspicion detector.
//!
//! The paper assumes a conservative heartbeat detector ("about 500 ms");
//! earlier PRs cheated by letting [`FailureInjector`](crate::FailureInjector)
//! tell the [`Coordinator`](crate::Coordinator) who died. This module makes
//! detection honest while keeping every run deterministic:
//!
//! * **[`DetectorKind::Oracle`]** — the legacy path. A crash is reported
//!   directly; an optional `detection_delay` is expressed in virtual clock
//!   ticks drained by the same scan loop the heartbeat detector uses (the
//!   bespoke sleep-thread timer is gone).
//! * **[`DetectorKind::Heartbeat`]** — nodes emit sequence-numbered
//!   heartbeats through the transport seam. A node whose heartbeats go
//!   silent past `hb_timeout` becomes *suspected*; fresh evidence of life
//!   (a later heartbeat, a barrier-wait self-stamp) *retracts* the
//!   suspicion; silence past the fence — or a process-exit close event —
//!   *confirms* it, and only confirmed nodes are handed to recovery.
//!
//! Determinism rests on the [`Clock`] trait: under the Channel and Lossy
//! transports time is *virtual* — a shared tick counter advanced only while
//! some node is pumping (waiting in a barrier or a timed receive), rate
//! limited to one tick per [`PUMP_QUANTUM`] of wall time no matter how many
//! pumpers race. Detection therefore always lands at the same barrier epoch
//! as the oracle would have picked, which is all the golden hashes observe.
//! Under TCP a wall clock is used instead (real sockets already imply real
//! time).
//!
//! False positives are fenced idempotently: a confirm of a node that never
//! closed marks the slot *fenced*; the zombie discovers this through
//! [`FailureDetector::is_stale`] (its `birth` epoch no longer matches, or
//! its slot is down) and exits instead of racing its replacement.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use imitator_metrics::SuspicionStats;
use parking_lot::Mutex;

use crate::NodeId;

/// The wall-time width of one detector tick, and the slice length of every
/// pumped wait (barrier waits, timed receives, stalls).
pub const PUMP_QUANTUM: Duration = Duration::from_micros(200);

/// Detector ticks per millisecond (`1 ms / PUMP_QUANTUM`).
pub const TICKS_PER_MS: u64 = 5;

/// Converts a configured duration to detector ticks (at least 1 for any
/// nonzero duration, so a sub-quantum delay still takes effect).
pub fn duration_ticks(d: Duration) -> u64 {
    if d.is_zero() {
        0
    } else {
        ((d.as_micros() / PUMP_QUANTUM.as_micros()) as u64).max(1)
    }
}

/// A monotone tick source. Implementations must be cheap and thread-safe:
/// `now` sits on hot pump paths, `advance` is called once per pump slice.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current tick.
    fn now(&self) -> u64;
    /// Gives the clock an opportunity to move forward (no-op for clocks
    /// that track real time on their own).
    fn advance(&self);
}

/// Deterministic virtual time: ticks advance only when pumped, and at most
/// once per [`PUMP_QUANTUM`] of wall time across *all* pumpers — so four
/// barrier waiters don't make time run four times faster than one, and time
/// stands still while every node is busy computing.
#[derive(Debug)]
pub struct VirtualClock {
    start: Instant,
    ticks: AtomicU64,
    last_advance_us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at tick zero.
    pub fn new() -> Self {
        VirtualClock {
            start: Instant::now(),
            ticks: AtomicU64::new(0),
            last_advance_us: AtomicU64::new(0),
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }

    fn advance(&self) {
        let now_us = self.start.elapsed().as_micros() as u64;
        let last = self.last_advance_us.load(Ordering::Acquire);
        if now_us.saturating_sub(last) >= PUMP_QUANTUM.as_micros() as u64
            && self
                .last_advance_us
                .compare_exchange(last, now_us, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.ticks.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// Real time quantised to detector ticks; used under the TCP transport
/// where sockets already make timing physical.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock starting at tick zero.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        (self.start.elapsed().as_micros() / PUMP_QUANTUM.as_micros()) as u64
    }

    fn advance(&self) {}
}

/// Which failure-detection subsystem a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorKind {
    /// Crashes are reported by the crashing node itself (the injector
    /// oracle), optionally after a virtual detection delay.
    #[default]
    Oracle,
    /// Survivors notice crashes through missed heartbeats; suspicion must
    /// outlive the fence (or see a close event) before recovery starts.
    Heartbeat,
}

/// Failure-detection configuration carried on `RunConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Which detector drives coordinator liveness.
    pub kind: DetectorKind,
    /// Oracle mode: how long after a reported crash the cluster notices.
    pub detection_delay: Duration,
    /// Heartbeat mode: how often each node emits a heartbeat.
    pub hb_interval: Duration,
    /// Heartbeat mode: silence longer than this makes a node *suspected*.
    pub hb_timeout: Duration,
    /// Heartbeat mode: silence longer than `fence_multiplier × hb_timeout`
    /// *confirms* a suspicion even without a close event (the node is
    /// fenced out; if it was merely slow it must exit, not rejoin).
    pub fence_multiplier: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            kind: DetectorKind::Oracle,
            detection_delay: Duration::ZERO,
            hb_interval: Duration::from_millis(10),
            hb_timeout: Duration::from_millis(60),
            fence_multiplier: 40,
        }
    }
}

impl DetectorConfig {
    /// An oracle detector with the given detection delay (the legacy
    /// `Coordinator::new` contract).
    pub fn oracle(detection_delay: Duration) -> Self {
        DetectorConfig {
            detection_delay,
            ..DetectorConfig::default()
        }
    }

    /// A heartbeat detector with the given emission interval and suspicion
    /// timeout.
    pub fn heartbeat(hb_interval: Duration, hb_timeout: Duration) -> Self {
        DetectorConfig {
            kind: DetectorKind::Heartbeat,
            hb_interval,
            hb_timeout,
            ..DetectorConfig::default()
        }
    }
}

/// Per-logical-node detector state.
#[derive(Debug, Clone)]
struct Slot {
    /// Incarnation counter, bumped on revive. Evidence (heartbeats, close
    /// events) stamped with an older birth is ignored — a fenced zombie
    /// cannot disturb its replacement.
    birth: u64,
    /// Tick of the last evidence of life.
    last_hb: u64,
    /// Highest heartbeat sequence number accepted (duplicates from lossy
    /// links or redundant per-peer delivery are ignored).
    last_seq: u64,
    /// Next sequence number this node will emit.
    next_seq: u64,
    /// Tick of the last emitted heartbeat (`None` = emit immediately).
    last_emit: Option<u64>,
    suspected: bool,
    /// The node's context was dropped (clean exit or crash).
    closed: bool,
    /// Confirmed dead as far as the detector is concerned (until revive).
    down: bool,
    /// Confirmed *without* a close event: the node may still be running
    /// and must discover via [`FailureDetector::is_stale`] that it was
    /// fenced out.
    fenced: bool,
}

impl Slot {
    fn fresh(birth: u64, now: u64) -> Self {
        Slot {
            birth,
            last_hb: now,
            last_seq: 0,
            next_seq: 0,
            last_emit: None,
            suspected: false,
            closed: false,
            down: false,
            fenced: false,
        }
    }
}

/// The shared failure detector: one per cluster, owned by the coordinator.
#[derive(Debug)]
pub struct FailureDetector {
    kind: DetectorKind,
    clock: Box<dyn Clock>,
    sync_oracle: bool,
    delay_ticks: u64,
    interval_ticks: u64,
    timeout_ticks: u64,
    fence_ticks: u64,
    slots: Mutex<Vec<Slot>>,
    /// Oracle deaths awaiting their detection delay: `(node, due_tick)`.
    pending: Mutex<Vec<(NodeId, u64)>>,
    pending_flag: AtomicBool,
    suspected: AtomicU64,
    retracted: AtomicU64,
    confirmed: AtomicU64,
    detect_ticks: AtomicU64,
}

impl FailureDetector {
    /// Creates a detector for `num_nodes` logical slots. `wall_clock`
    /// selects real time (TCP transport) over deterministic virtual ticks.
    pub fn new(num_nodes: usize, cfg: DetectorConfig, wall_clock: bool) -> Self {
        let clock: Box<dyn Clock> = if wall_clock {
            Box::new(WallClock::new())
        } else {
            Box::new(VirtualClock::new())
        };
        let timeout_ticks = duration_ticks(cfg.hb_timeout);
        FailureDetector {
            kind: cfg.kind,
            clock,
            sync_oracle: cfg.kind == DetectorKind::Oracle && cfg.detection_delay.is_zero(),
            delay_ticks: duration_ticks(cfg.detection_delay),
            interval_ticks: duration_ticks(cfg.hb_interval).max(1),
            timeout_ticks,
            fence_ticks: timeout_ticks.saturating_mul(u64::from(cfg.fence_multiplier.max(1))),
            slots: Mutex::new(vec![Slot::fresh(0, 0); num_nodes]),
            pending: Mutex::new(Vec::new()),
            pending_flag: AtomicBool::new(false),
            suspected: AtomicU64::new(0),
            retracted: AtomicU64::new(0),
            confirmed: AtomicU64::new(0),
            detect_ticks: AtomicU64::new(0),
        }
    }

    /// Which detector this is.
    pub fn kind(&self) -> DetectorKind {
        self.kind
    }

    /// The current detector tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Gives the clock one advance opportunity (called once per pump slice).
    pub fn tick(&self) {
        self.clock.advance();
    }

    /// Whether blocked waits must be sliced so the detector keeps making
    /// progress: always in heartbeat mode, and in oracle mode only while a
    /// delayed death is queued (a zero-delay oracle keeps pure blocking
    /// waits and pays nothing for this subsystem).
    pub fn needs_pump(&self) -> bool {
        self.kind == DetectorKind::Heartbeat || self.pending_flag.load(Ordering::Acquire)
    }

    /// A crashing node reports its own death. Returns `true` when the
    /// caller must mark the node failed *now* (synchronous zero-delay
    /// oracle); otherwise the death is either queued behind the virtual
    /// detection delay (oracle) or ignored entirely (heartbeat mode:
    /// survivors must notice the silence themselves).
    pub fn report_death(&self, node: NodeId) -> bool {
        match self.kind {
            DetectorKind::Heartbeat => false,
            DetectorKind::Oracle if self.sync_oracle => true,
            DetectorKind::Oracle => {
                let due = self.now() + self.delay_ticks.max(1);
                self.pending.lock().push((node, due));
                self.pending_flag.store(true, Ordering::Release);
                false
            }
        }
    }

    /// Direct evidence that `node` is alive right now (barrier-wait
    /// self-stamp, pump-loop self-stamp). Retracts a pre-fence suspicion.
    pub fn note_alive(&self, node: NodeId) {
        let now = self.now();
        let mut slots = self.slots.lock();
        let Some(s) = slots.get_mut(node.index()) else {
            return;
        };
        if s.down {
            return;
        }
        s.last_hb = now;
        if s.suspected {
            s.suspected = false;
            self.retracted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A heartbeat from `node` arrived over the wire. Ignored when stamped
    /// with a stale birth or an already-seen sequence number.
    pub fn observe_hb(&self, node: NodeId, birth: u64, seq: u64) {
        let now = self.now();
        let mut slots = self.slots.lock();
        let Some(s) = slots.get_mut(node.index()) else {
            return;
        };
        if s.down || s.birth != birth || seq <= s.last_seq {
            return;
        }
        s.last_seq = seq;
        s.last_hb = now;
        if s.suspected {
            s.suspected = false;
            self.retracted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The node's context was dropped (clean exit or crash). A closed node
    /// can be confirmed as soon as it is suspected — no fence wait needed,
    /// which keeps detection at the same barrier epoch the oracle picks.
    pub fn observe_close(&self, node: NodeId, birth: u64) {
        let mut slots = self.slots.lock();
        let Some(s) = slots.get_mut(node.index()) else {
            return;
        };
        if s.birth != birth {
            return;
        }
        s.closed = true;
    }

    /// Heartbeat-mode emission gate: returns the next sequence number when
    /// `node` is due to emit (at most once per `hb_interval`).
    pub fn should_emit(&self, node: NodeId) -> Option<u64> {
        if self.kind != DetectorKind::Heartbeat {
            return None;
        }
        let now = self.now();
        let mut slots = self.slots.lock();
        let s = slots.get_mut(node.index())?;
        if s.down {
            return None;
        }
        let due = s
            .last_emit
            .is_none_or(|t| now.saturating_sub(t) >= self.interval_ticks);
        if !due {
            return None;
        }
        s.last_emit = Some(now);
        s.next_seq += 1;
        Some(s.next_seq)
    }

    /// The current incarnation of `node`'s slot.
    pub fn birth(&self, node: NodeId) -> u64 {
        self.slots.lock()[node.index()].birth
    }

    /// Whether the incarnation `birth` of `node` has been superseded or
    /// fenced out. A stalled-but-alive node checks this on waking: `true`
    /// means the cluster gave up on it and it must exit, not rejoin.
    pub fn is_stale(&self, node: NodeId, birth: u64) -> bool {
        let slots = self.slots.lock();
        match slots.get(node.index()) {
            Some(s) => s.birth != birth || s.down,
            None => true,
        }
    }

    /// A standby adopted `node`'s logical ID: new incarnation, fresh
    /// liveness, stale evidence fenced out by the birth bump.
    pub fn on_revive(&self, node: NodeId) {
        let now = self.now();
        let mut slots = self.slots.lock();
        let s = &mut slots[node.index()];
        *s = Slot::fresh(s.birth + 1, now);
    }

    /// One detection pass. Drains due oracle deaths, advances heartbeat
    /// suspicion (suspect → retract/confirm), and returns the nodes whose
    /// failure is now *confirmed*; the caller marks them failed. `is_alive`
    /// reflects coordinator liveness so already-failed nodes are skipped.
    pub fn scan(&self, is_alive: &dyn Fn(NodeId) -> bool) -> Vec<NodeId> {
        let now = self.now();
        let mut confirms = Vec::new();
        if self.pending_flag.load(Ordering::Acquire) {
            let mut pending = self.pending.lock();
            let mut i = 0;
            while i < pending.len() {
                if pending[i].1 <= now {
                    confirms.push(pending.swap_remove(i).0);
                } else {
                    i += 1;
                }
            }
            if pending.is_empty() {
                self.pending_flag.store(false, Ordering::Release);
            }
        }
        if self.kind == DetectorKind::Heartbeat {
            let mut slots = self.slots.lock();
            for (i, s) in slots.iter_mut().enumerate() {
                let node = NodeId::from_index(i);
                if s.down || !is_alive(node) {
                    continue;
                }
                let silent = now.saturating_sub(s.last_hb);
                if silent <= self.timeout_ticks {
                    continue;
                }
                if !s.suspected {
                    s.suspected = true;
                    self.suspected.fetch_add(1, Ordering::Relaxed);
                }
                if s.closed || silent > self.fence_ticks {
                    s.suspected = false;
                    s.down = true;
                    s.fenced = !s.closed;
                    self.confirmed.fetch_add(1, Ordering::Relaxed);
                    self.detect_ticks.fetch_add(silent, Ordering::Relaxed);
                    confirms.push(node);
                }
            }
        }
        confirms
    }

    /// Point-in-time suspicion counters.
    pub fn stats(&self) -> SuspicionStats {
        SuspicionStats {
            suspected: self.suspected.load(Ordering::Relaxed),
            retracted: self.retracted.load(Ordering::Relaxed),
            confirmed: self.confirmed.load(Ordering::Relaxed),
            detect_ticks: self.detect_ticks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test clock whose hands only move when the test says so.
    #[derive(Debug, Default)]
    struct ManualClock(AtomicU64);

    impl Clock for ManualClock {
        fn now(&self) -> u64 {
            self.0.load(Ordering::Acquire)
        }
        fn advance(&self) {
            self.0.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn hb_detector(n: usize, timeout_ticks: u64, fence_mult: u32) -> FailureDetector {
        let cfg = DetectorConfig {
            kind: DetectorKind::Heartbeat,
            hb_interval: PUMP_QUANTUM,
            hb_timeout: PUMP_QUANTUM * timeout_ticks as u32,
            fence_multiplier: fence_mult,
            ..DetectorConfig::default()
        };
        let mut det = FailureDetector::new(n, cfg, false);
        det.clock = Box::new(ManualClock::default());
        det
    }

    fn advance(det: &FailureDetector, ticks: u64) {
        for _ in 0..ticks {
            det.tick();
        }
    }

    const ALL_ALIVE: &dyn Fn(NodeId) -> bool = &|_| true;

    #[test]
    fn duration_tick_conversion() {
        assert_eq!(duration_ticks(Duration::ZERO), 0);
        assert_eq!(duration_ticks(Duration::from_micros(50)), 1);
        assert_eq!(duration_ticks(Duration::from_millis(1)), TICKS_PER_MS);
        assert_eq!(duration_ticks(Duration::from_millis(60)), 300);
    }

    #[test]
    fn virtual_clock_is_rate_limited() {
        let c = VirtualClock::new();
        let start = c.now();
        // A burst of advances within one quantum moves the clock at most
        // once per elapsed quantum, not once per call.
        for _ in 0..1000 {
            c.advance();
        }
        assert!(c.now() - start <= 2, "burst advanced {} ticks", c.now());
    }

    #[test]
    fn silence_suspects_then_evidence_retracts() {
        let det = hb_detector(2, 10, 100);
        advance(&det, 11);
        let confirms = det.scan(ALL_ALIVE);
        assert!(confirms.is_empty(), "suspicion is not confirmation");
        assert_eq!(det.stats().suspected, 2);
        det.note_alive(NodeId::new(0));
        det.observe_hb(NodeId::new(1), 0, 1);
        assert_eq!(det.stats().retracted, 2);
        assert_eq!(det.stats().confirmed, 0);
        assert!(det.scan(ALL_ALIVE).is_empty());
    }

    #[test]
    fn close_event_confirms_at_timeout_not_fence() {
        let det = hb_detector(2, 10, 100);
        det.observe_close(NodeId::new(1), 0);
        advance(&det, 11);
        det.note_alive(NodeId::new(0));
        let confirms = det.scan(ALL_ALIVE);
        assert_eq!(confirms, vec![NodeId::new(1)]);
        let st = det.stats();
        assert_eq!((st.suspected, st.confirmed), (1, 1));
        assert!(st.detect_ticks >= 11);
        // Idempotent: a second scan does not re-confirm.
        assert!(det.scan(ALL_ALIVE).is_empty());
    }

    #[test]
    fn fence_confirms_unclosed_node_and_marks_it_stale() {
        let det = hb_detector(2, 10, 3);
        advance(&det, 11);
        det.note_alive(NodeId::new(0));
        assert!(det.scan(ALL_ALIVE).is_empty()); // suspected only
        assert!(!det.is_stale(NodeId::new(1), 0));
        advance(&det, 20); // past fence = 30 ticks
        det.note_alive(NodeId::new(0));
        let confirms = det.scan(ALL_ALIVE);
        assert_eq!(confirms, vec![NodeId::new(1)]);
        assert!(det.is_stale(NodeId::new(1), 0), "fenced zombie is stale");
        // Late evidence from the fenced incarnation is ignored.
        det.observe_hb(NodeId::new(1), 0, 7);
        assert_eq!(det.stats().retracted, 0);
    }

    #[test]
    fn revive_bumps_birth_and_fences_old_evidence() {
        let det = hb_detector(2, 10, 3);
        det.observe_close(NodeId::new(1), 0);
        advance(&det, 11);
        assert_eq!(det.scan(ALL_ALIVE), vec![NodeId::new(1)]);
        det.on_revive(NodeId::new(1));
        assert_eq!(det.birth(NodeId::new(1)), 1);
        assert!(!det.is_stale(NodeId::new(1), 1));
        assert!(det.is_stale(NodeId::new(1), 0));
        det.observe_close(NodeId::new(1), 0); // stale close: ignored
        advance(&det, 11);
        det.note_alive(NodeId::new(0));
        det.note_alive(NodeId::new(1));
        assert!(det.scan(ALL_ALIVE).is_empty());
    }

    #[test]
    fn heartbeat_seqs_dedup_and_emission_respects_interval() {
        let det = hb_detector(2, 10, 100);
        assert_eq!(det.should_emit(NodeId::new(0)), Some(1));
        assert_eq!(det.should_emit(NodeId::new(0)), None, "interval gate");
        advance(&det, 1);
        assert_eq!(det.should_emit(NodeId::new(0)), Some(2));
        det.observe_hb(NodeId::new(0), 0, 2); // stamps at tick 1
        advance(&det, 11);
        det.observe_hb(NodeId::new(0), 0, 2); // duplicate seq: ignored
        det.note_alive(NodeId::new(1));
        det.scan(ALL_ALIVE);
        assert_eq!(
            det.stats().suspected,
            1,
            "duplicate delivery must not count as fresh life"
        );
    }

    #[test]
    fn oracle_delay_drains_through_scan() {
        let cfg = DetectorConfig::oracle(PUMP_QUANTUM * 5);
        let mut det = FailureDetector::new(2, cfg, false);
        det.clock = Box::new(ManualClock::default());
        assert!(!det.needs_pump(), "idle oracle needs no pumping");
        assert!(!det.report_death(NodeId::new(1)));
        assert!(det.needs_pump());
        assert!(det.scan(ALL_ALIVE).is_empty(), "before the delay");
        advance(&det, 5);
        assert_eq!(det.scan(ALL_ALIVE), vec![NodeId::new(1)]);
        assert!(!det.needs_pump(), "queue drained");
        assert_eq!(det.stats(), SuspicionStats::default());
    }

    #[test]
    fn zero_delay_oracle_is_synchronous() {
        let det = FailureDetector::new(2, DetectorConfig::default(), false);
        assert!(det.report_death(NodeId::new(1)));
        assert!(!det.needs_pump());
    }

    #[test]
    fn heartbeat_mode_ignores_reported_deaths() {
        let det = hb_detector(2, 10, 100);
        assert!(!det.report_death(NodeId::new(1)));
        assert!(det.scan(ALL_ALIVE).is_empty());
    }
}

//! The routing fabric and per-node handles.
//!
//! Protocol logic lives here; *wire plumbing* lives behind the
//! [`Transport`]/[`Pipe`] seam in [`crate::transport`]. A [`Cluster`] owns
//! one transport backend (selected by
//! [`TransportKind`](crate::TransportKind)) plus the shared [`Fabric`] of
//! local inbox queues every backend ultimately delivers into; a
//! [`NodeCtx`] owns one node's [`Pipe`] endpoint.
//!
//! # Fast-path design
//!
//! `NodeCtx::send*` is the hottest call in a superstep (one per destination
//! envelope, formerly one per sync record). The sender table is therefore
//! published as an immutable `Arc<[Sender]>` snapshot guarded by a
//! generation counter: every send does one atomic load and an indexed send
//! on a thread-local cached snapshot — no lock, no `Sender` clone. The
//! table is only rebuilt (and the generation bumped) by [`Cluster::adopt`]
//! during recovery. The channel backend uses this path directly; the lossy
//! and TCP backends route *delivery* (not sending) through the same
//! [`Fabric::push_cached`] primitive, so the fast path is shared, not
//! forked.
//!
//! Why a stale cache is harmless: table slots change only when a node dies
//! and a replacement adopts its identity. A sender that still holds the old
//! snapshot either (a) observes the destination as dead in
//! [`Coordinator::is_alive`] and drops the message — exactly what the old
//! locked path did — or (b) observes it alive. Observing it alive means the
//! sender acquired the coordinator lock *after* `revive` released it, which
//! makes the adopting thread's generation bump (sequenced before `revive`)
//! visible to the sender's `Acquire` load, forcing a refresh. So a message
//! accepted for a live node always goes to that node's current inbox. The
//! same sequencing covers the transports' slot epochs: `on_adopt` bumps the
//! epoch before `revive`, so a sender that observes the node alive stamps
//! frames with the *new* destination epoch.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use imitator_metrics::{AtomicCommStats, CommKind};
use parking_lot::Mutex;

use crate::coord::{BarrierOutcome, Coordinator};
use crate::detector::{DetectorConfig, PUMP_QUANTUM};
use crate::injector::TransportKind;
use crate::transport::{
    ChannelTransport, LossyTransport, Pipe, TcpTransport, Transport, WireCodec, HB_WIRE_BYTES,
};
use crate::NodeId;

/// A delivered message with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The logical node that sent the message.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
}

/// What a blocked standby thread is woken with.
pub(crate) enum StandbyEvent<M> {
    /// A crashed node's identity to adopt.
    Adopt(NodeCtx<M>),
    /// The job is over; relayed from waiter to waiter so one signal wakes
    /// the whole pool.
    Shutdown,
}

/// The shared local-queue fabric: the published sender table, the parked
/// not-yet-claimed inboxes, and the standby wake-up channel. Every
/// transport backend delivers into these queues; they differ in the path a
/// message takes to reach [`Fabric::push_cached`].
#[derive(Debug)]
pub(crate) struct Fabric<M> {
    /// The published sender table. Mutated only under this lock (adopt);
    /// readers refresh their cached snapshot from it when `generation`
    /// moves.
    routes: Mutex<Arc<[Sender<Envelope<M>>]>>,
    /// Bumped (under the `routes` lock) every time the table is republished.
    generation: AtomicU64,
    /// Receivers parked here until a thread claims its `NodeCtx`.
    parked: Mutex<Vec<Option<Receiver<Envelope<M>>>>>,
    /// Wake-up channel for hot-standby threads (Rebirth recovery).
    pub(crate) standby_tx: Sender<StandbyEvent<M>>,
    pub(crate) standby_rx: Receiver<StandbyEvent<M>>,
    /// Set when the job is over; waiting standbys return `None`.
    done: AtomicBool,
}

impl<M> Fabric<M> {
    pub(crate) fn new(num_nodes: usize) -> Arc<Self> {
        let mut senders = Vec::with_capacity(num_nodes);
        let mut parked = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            parked.push(Some(rx));
        }
        let (standby_tx, standby_rx) = unbounded();
        Arc::new(Fabric {
            routes: Mutex::new(senders.into()),
            generation: AtomicU64::new(0),
            parked: Mutex::new(parked),
            standby_tx,
            standby_rx,
            done: AtomicBool::new(false),
        })
    }

    /// A fresh coherent snapshot of the sender table.
    pub(crate) fn snapshot(&self) -> RouteCache<M> {
        let routes = self.routes.lock();
        RouteCache {
            generation: self.generation.load(Ordering::Acquire),
            table: Arc::clone(&routes),
        }
    }

    /// The send fast path: one atomic generation check against the cached
    /// snapshot, then an indexed lock-free send. Returns `false` if the
    /// destination inbox is gone (cluster torn down mid-send).
    pub(crate) fn push_cached(
        &self,
        cache: &mut RouteCache<M>,
        to: NodeId,
        env: Envelope<M>,
    ) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if cache.generation != generation {
            let routes = self.routes.lock();
            cache.generation = self.generation.load(Ordering::Acquire);
            cache.table = Arc::clone(&routes);
        }
        cache.table[to.index()].send(env).is_ok()
    }
}

impl<M> fmt::Debug for StandbyEvent<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StandbyEvent::Adopt(_) => f.write_str("Adopt(..)"),
            StandbyEvent::Shutdown => f.write_str("Shutdown"),
        }
    }
}

/// A simulated cluster: `n` logical nodes plus a pool of hot standbys,
/// connected by a pluggable wire backend and a shared [`Coordinator`].
///
/// Cloning yields another handle on the same cluster.
pub struct Cluster<M> {
    fabric: Arc<Fabric<M>>,
    transport: Arc<dyn Transport<M>>,
    coord: Arc<Coordinator>,
    comm: Arc<AtomicCommStats>,
}

// Manual impl: a handle clone must not require `M: Clone`.
impl<M> Clone for Cluster<M> {
    fn clone(&self) -> Self {
        Cluster {
            fabric: Arc::clone(&self.fabric),
            transport: Arc::clone(&self.transport),
            coord: Arc::clone(&self.coord),
            comm: Arc::clone(&self.comm),
        }
    }
}

impl<M> fmt::Debug for Cluster<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("coord", &self.coord)
            .finish_non_exhaustive()
    }
}

impl<M: Send + 'static> Cluster<M> {
    /// Creates a cluster of `num_nodes` logical nodes and `num_standbys`
    /// hot standbys over the default in-process channel transport; crashed
    /// nodes are detected after `detection_delay` (the paper uses a
    /// conservative 500 ms heartbeat; tests use zero).
    pub fn new(num_nodes: usize, num_standbys: usize, detection_delay: Duration) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one node");
        let fabric = Fabric::new(num_nodes);
        let transport: Arc<dyn Transport<M>> = Arc::new(ChannelTransport::new(Arc::clone(&fabric)));
        Self::assemble(
            fabric,
            transport,
            num_nodes,
            num_standbys,
            DetectorConfig::oracle(detection_delay),
            false,
        )
    }

    fn assemble(
        fabric: Arc<Fabric<M>>,
        transport: Arc<dyn Transport<M>>,
        num_nodes: usize,
        num_standbys: usize,
        detector: DetectorConfig,
        wall_clock: bool,
    ) -> Self {
        Cluster {
            fabric,
            transport,
            coord: Arc::new(Coordinator::with_detector(
                num_nodes,
                num_standbys,
                detector,
                wall_clock,
            )),
            comm: Arc::default(),
        }
    }

    /// Number of logical node slots.
    pub fn num_nodes(&self) -> usize {
        self.coord.num_nodes()
    }

    /// The shared coordination service.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coord
    }

    /// Aggregate message statistics across all nodes.
    pub fn comm_stats(&self) -> imitator_metrics::CommStats {
        self.comm.snapshot()
    }

    /// Aggregate per-kind traffic split, transport retry/redelivery
    /// counters, and barrier-wait total.
    pub fn comm_breakdown(&self) -> imitator_metrics::CommBreakdown {
        self.comm.breakdown()
    }

    /// Releases transport-owned resources (listener sockets, reader
    /// threads). A no-op for in-process backends; idempotent everywhere.
    /// Call after the last node thread has been joined.
    pub fn shutdown_transport(&self) {
        self.transport.shutdown();
    }

    fn make_ctx(&self, id: NodeId, inbox: Receiver<Envelope<M>>) -> NodeCtx<M> {
        NodeCtx {
            id,
            birth: self.coord.detector().birth(id),
            pipe: self.transport.open(self, id, inbox),
            cluster: self.clone(),
        }
    }

    /// Claims the execution context for logical node `id`.
    ///
    /// # Panics
    ///
    /// Panics if the context for `id` was already claimed.
    pub fn take_ctx(&self, id: NodeId) -> NodeCtx<M> {
        let rx = self.fabric.parked.lock()[id.index()]
            .take()
            .unwrap_or_else(|| panic!("context for {id} already claimed"));
        self.make_ctx(id, rx)
    }

    /// Routes a fresh inbox to logical node `id` (whose previous owner died)
    /// and returns the context a standby thread adopts. Also revives the
    /// node in the coordinator, so it is expected at subsequent barriers.
    ///
    /// The caller must have claimed a standby via
    /// [`Coordinator::claim_standby`] first.
    pub fn adopt(&self, id: NodeId) -> NodeCtx<M> {
        let (tx, rx) = unbounded();
        {
            let mut routes = self.fabric.routes.lock();
            let mut table: Vec<Sender<Envelope<M>>> = routes.iter().cloned().collect();
            table[id.index()] = tx;
            *routes = table.into();
            // Bumped before `revive` so any sender that sees the node alive
            // also sees (and refreshes to) the new table — see module docs.
            self.fabric.generation.fetch_add(1, Ordering::Release);
        }
        // Likewise before `revive`: senders that observe the node alive
        // stamp frames with the slot's new epoch, so nothing addressed to
        // the dead identity can surface in the adopted inbox.
        self.transport.on_adopt(id);
        self.coord.revive(id);
        self.make_ctx(id, rx)
    }

    /// Claims a standby (if any remain), routes a fresh inbox to logical
    /// node `id`, revives it, and hands the context to one thread blocked in
    /// [`Cluster::wait_standby`]. Returns whether a standby was available.
    ///
    /// Called by the recovery leader (the lowest-ID survivor) when Rebirth
    /// needs a replacement machine.
    pub fn dispatch_standby(&self, id: NodeId) -> bool {
        if !self.coord.claim_standby() {
            return false;
        }
        let ctx = self.adopt(id);
        self.transport.standby_send(StandbyEvent::Adopt(ctx));
        true
    }

    /// Blocks a hot-standby thread until it is assigned a crashed node's
    /// identity, or returns `None` once the job completes (or `patience`
    /// elapses with neither).
    ///
    /// Fully event-driven: the thread parks on the transport's standby
    /// channel for the whole remaining patience and is woken by
    /// [`Cluster::dispatch_standby`] or by the shutdown signal — no poll
    /// loop.
    pub fn wait_standby(&self, patience: Duration) -> Option<NodeCtx<M>> {
        if self.fabric.done.load(Ordering::Acquire) {
            return None;
        }
        match self.transport.standby_wait(patience) {
            Some(StandbyEvent::Adopt(ctx)) => Some(ctx),
            Some(StandbyEvent::Shutdown) => {
                // Relay so one signal drains the whole waiting pool.
                self.transport.standby_send(StandbyEvent::Shutdown);
                None
            }
            None => None, // patience elapsed (or fabric gone)
        }
    }

    /// Signals waiting standby threads that the job is over.
    pub fn shutdown_standbys(&self) {
        self.fabric.done.store(true, Ordering::Release);
        self.transport.standby_send(StandbyEvent::Shutdown);
    }
}

impl<M: Send + Clone + WireCodec + 'static> Cluster<M> {
    /// Creates a cluster over the wire backend selected by `kind`.
    ///
    /// [`TransportKind::Channel`](crate::TransportKind::Channel) behaves
    /// exactly like [`Cluster::new`]; the lossy and TCP backends require
    /// `M: Clone + WireCodec` for duplication and on-the-wire encoding
    /// respectively.
    pub fn with_transport(
        num_nodes: usize,
        num_standbys: usize,
        detection_delay: Duration,
        kind: TransportKind,
    ) -> Self {
        Self::with_detector(
            num_nodes,
            num_standbys,
            DetectorConfig::oracle(detection_delay),
            kind,
        )
    }

    /// Creates a cluster over the wire backend selected by `kind` with an
    /// explicit failure-detector configuration. The clock is virtual
    /// (deterministic) under Channel and Lossy backends, and real under
    /// TCP.
    pub fn with_detector(
        num_nodes: usize,
        num_standbys: usize,
        detector: DetectorConfig,
        kind: TransportKind,
    ) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one node");
        let fabric = Fabric::new(num_nodes);
        let wall_clock = matches!(kind, TransportKind::Tcp);
        let mut cluster = Self::assemble(
            Arc::clone(&fabric),
            Arc::new(ChannelTransport::new(Arc::clone(&fabric))),
            num_nodes,
            num_standbys,
            detector,
            wall_clock,
        );
        cluster.transport = match kind {
            TransportKind::Channel => cluster.transport,
            TransportKind::Lossy(faults) => Arc::new(LossyTransport::new(
                Arc::clone(&fabric),
                num_nodes,
                faults,
                Arc::clone(&cluster.comm),
            )),
            TransportKind::Tcp => Arc::new(TcpTransport::new(
                Arc::clone(&fabric),
                num_nodes,
                Arc::clone(&cluster.comm),
                Arc::clone(cluster.coord.detector()),
            )),
        };
        cluster
    }
}

/// A node's cached snapshot of the sender table.
#[derive(Debug)]
pub(crate) struct RouteCache<M> {
    pub(crate) generation: u64,
    pub(crate) table: Arc<[Sender<Envelope<M>>]>,
}

/// The execution context of one logical node: its identity, its wire
/// endpoint ([`Pipe`]), and access to the cluster and coordinator.
///
/// Exactly one thread owns each `NodeCtx` at a time (the endpoint is not
/// clonable), matching one process per machine.
pub struct NodeCtx<M> {
    id: NodeId,
    /// The detector incarnation this context was created under; stale-birth
    /// evidence (a zombie's close event, late heartbeats) is fenced out.
    birth: u64,
    pipe: Box<dyn Pipe<M>>,
    cluster: Cluster<M>,
}

impl<M> Drop for NodeCtx<M> {
    /// Dropping the context is the node's process exit — clean completion
    /// or crash alike. The detector's close event lets a *suspected* node
    /// be confirmed without waiting out the fence, which pins heartbeat
    /// detection to the same barrier epoch the oracle would pick.
    fn drop(&mut self) {
        self.cluster
            .coord
            .detector()
            .observe_close(self.id, self.birth);
    }
}

impl<M> fmt::Debug for NodeCtx<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCtx")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<M: Send + 'static> NodeCtx<M> {
    /// This node's logical ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The owning cluster handle.
    pub fn cluster(&self) -> &Cluster<M> {
        &self.cluster
    }

    fn send_from(&self, to: NodeId, msg: M, bytes: u64, kind: CommKind) -> bool {
        if !self.cluster.coord.is_alive(to) {
            return false; // dropped on the wire: destination crashed
        }
        // Logical accounting happens exactly once, here — transport-level
        // retransmissions and duplicates are physical events tallied in the
        // separate retry/redelivery counters, so per-kind traffic splits
        // are identical across backends.
        self.cluster.comm.record_kind(kind, 1, bytes);
        self.pipe.send(to, Envelope { from: self.id, msg }, kind)
    }

    /// Sends `msg` to `to`, charging zero accounted bytes. Returns `false`
    /// if the destination is dead (message dropped, as on a real network).
    pub fn send(&self, to: NodeId, msg: M) -> bool {
        self.send_from(to, msg, 0, CommKind::Control)
    }

    /// Sends `msg` to `to`, accounting `bytes` of wire traffic.
    pub fn send_sized(&self, to: NodeId, msg: M, bytes: u64) -> bool {
        self.send_from(to, msg, bytes, CommKind::Control)
    }

    /// Sends `msg` to `to`, accounting `bytes` of wire traffic under the
    /// given traffic kind.
    pub fn send_kind(&self, to: NodeId, msg: M, bytes: u64, kind: CommKind) -> bool {
        self.send_from(to, msg, bytes, kind)
    }

    /// Drains every message currently queued (all messages sent before the
    /// senders entered the last barrier are guaranteed to be here — every
    /// backend fences in-flight traffic before entering a barrier).
    pub fn drain(&self) -> Vec<Envelope<M>> {
        self.pipe.drain()
    }

    /// Blocks up to `timeout` for one message. While the failure detector
    /// needs pumping the wait is sliced by [`PUMP_QUANTUM`] so detection
    /// (and heartbeat emission) progresses even inside long receives.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        if !self.cluster.coord.detector().needs_pump() {
            return self.pipe.recv_timeout(timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                // One last non-blocking look so a zero/elapsed timeout still
                // returns an already-queued message, as the unpumped path does.
                return self.pipe.recv_timeout(Duration::ZERO);
            }
            let slice = PUMP_QUANTUM.min(deadline - now);
            if let Some(env) = self.pipe.recv_timeout(slice) {
                return Some(env);
            }
            self.pump();
        }
    }

    /// One failure-detector pump slice: advance the clock, self-stamp
    /// liveness, emit a heartbeat if one is due, and apply any
    /// newly-confirmed failures. Called automatically from pumped waits;
    /// harmless to call from anywhere a node is demonstrably alive.
    pub fn pump(&self) {
        let det = self.cluster.coord.detector();
        det.tick();
        det.note_alive(self.id);
        self.emit_heartbeats();
        self.cluster.coord.pump_detector();
    }

    /// Emits one sequence-numbered heartbeat to every alive peer when the
    /// emission interval has elapsed (no-op under the oracle detector).
    /// Heartbeats are fire-and-forget: never fenced, never retransmitted.
    fn emit_heartbeats(&self) {
        let coord = &self.cluster.coord;
        let Some(seq) = coord.detector().should_emit(self.id) else {
            return;
        };
        let mut sent = 0u64;
        for i in 0..coord.num_nodes() {
            let peer = NodeId::from_index(i);
            if peer != self.id && coord.is_alive(peer) {
                self.pipe.send_heartbeat(peer, seq);
                sent += 1;
            }
        }
        if sent > 0 {
            self.cluster
                .comm
                .record_kind(CommKind::Heartbeat, sent, sent * HB_WIRE_BYTES);
        }
    }

    /// Goes silent for `ticks` detector ticks without crashing — the
    /// injector's [`FailPoint::Stall`](crate::FailPoint::Stall). The node
    /// keeps the clock moving but emits no liveness evidence, so under the
    /// heartbeat detector a long stall gets it suspected (and, past the
    /// fence, confirmed dead). Returns `true` when the node is still a
    /// cluster member afterwards; `false` means it was fenced out and must
    /// exit exactly as if it had crashed.
    pub fn stall(&self, ticks: u64) -> bool {
        let det = self.cluster.coord.detector();
        let end = det.now() + ticks;
        while det.now() < end {
            std::thread::sleep(PUMP_QUANTUM);
            det.tick();
            self.cluster.coord.pump_detector();
            if det.is_stale(self.id, self.birth) {
                return false; // fenced out mid-stall
            }
        }
        if det.is_stale(self.id, self.birth) {
            return false;
        }
        // Back from the dead-to-the-world pause: stamp liveness so a
        // pre-fence suspicion is retracted deterministically right here.
        det.note_alive(self.id);
        true
    }

    /// Enters the next global barrier (Algorithm 1's `enter_barrier` /
    /// `leave_barrier`) and returns the agreed outcome. Time spent blocked
    /// is added to the cluster's barrier-wait tally.
    ///
    /// Before arriving at the coordinator, the node fences its wire
    /// endpoint: everything it sent is retransmitted/settled as needed so
    /// the pre-barrier delivery guarantee holds on unreliable backends.
    pub fn enter_barrier(&self) -> BarrierOutcome {
        self.enter_barrier_sum(0).0
    }

    /// Enters the next global barrier contributing `value` to the
    /// all-reduced sum (e.g. this node's active-vertex count). While
    /// blocked, the node pumps the failure detector and keeps emitting
    /// heartbeats — a barrier waiter is alive and must look alive.
    pub fn enter_barrier_sum(&self, value: u64) -> (BarrierOutcome, u64) {
        self.pipe.flush();
        let start = Instant::now();
        let out = self
            .cluster
            .coord
            .barrier_sum_pump(self.id, value, &mut || self.emit_heartbeats());
        self.cluster.comm.record_barrier_wait(start.elapsed());
        out
    }

    /// Crashes this node: marks it for (delayed) failure detection. The
    /// caller must stop participating immediately afterwards — drop the
    /// context and return, as a crashed process would. Deliberately does
    /// *not* fence the endpoint: in-flight messages from a crashing node
    /// may or may not arrive, exactly like a real crash.
    pub fn die(self) {
        self.cluster.coord.report_death(self.id);
    }

    /// Non-consuming variant of [`die`](Self::die) for crashes announced
    /// from deep inside the recovery protocol, where the context must still
    /// be returned up the call stack. The caller is bound by the same
    /// contract: after calling `crash` the node must not send, drain, or
    /// enter another barrier — it unwinds and its thread exits.
    pub fn crash(&self) {
        self.cluster.coord.report_death(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two() -> (Cluster<u64>, NodeCtx<u64>, NodeCtx<u64>) {
        let c: Cluster<u64> = Cluster::new(2, 1, Duration::ZERO);
        let a = c.take_ctx(NodeId::new(0));
        let b = c.take_ctx(NodeId::new(1));
        (c, a, b)
    }

    #[test]
    fn messages_arrive_with_sender() {
        let (_c, a, b) = two();
        assert!(a.send(NodeId::new(1), 99));
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.from, NodeId::new(0));
        assert_eq!(got.msg, 99);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let c: Cluster<u64> = Cluster::new(1, 0, Duration::ZERO);
        let _a = c.take_ctx(NodeId::new(0));
        let _b = c.take_ctx(NodeId::new(0));
    }

    #[test]
    fn send_to_dead_node_is_dropped() {
        let (c, a, b) = two();
        c.coordinator().mark_failed(NodeId::new(1));
        assert!(!a.send(NodeId::new(1), 1));
        drop(b);
        assert_eq!(c.comm_stats().messages, 0);
    }

    #[test]
    fn drain_returns_all_pre_barrier_messages() {
        let (_c, a, b) = two();
        let t = std::thread::spawn(move || {
            for i in 0..100u64 {
                b.send(NodeId::new(0), i);
            }
            b.enter_barrier();
            b
        });
        a.enter_barrier();
        let msgs = a.drain();
        assert_eq!(msgs.len(), 100);
        t.join().unwrap();
    }

    #[test]
    fn die_then_adopt_replaces_inbox() {
        let (c, a, b) = two();
        // Old messages rot in the dead inbox.
        a.send(NodeId::new(1), 7);
        b.die();
        let outcome = a.enter_barrier();
        assert!(outcome.is_fail());
        assert!(c.coordinator().claim_standby());
        let b2 = c.adopt(NodeId::new(1));
        assert!(c.coordinator().is_alive(NodeId::new(1)));
        // New inbox starts empty; fresh messages flow — `a`'s cached route
        // table is stale here and must refresh via the generation bump.
        assert!(b2.drain().is_empty());
        a.send(NodeId::new(1), 8);
        assert_eq!(b2.recv_timeout(Duration::from_secs(1)).unwrap().msg, 8);
    }

    #[test]
    fn comm_stats_account_bytes() {
        let (c, a, _b) = two();
        a.send_sized(NodeId::new(1), 1, 64);
        a.send_sized(NodeId::new(1), 2, 36);
        let s = c.comm_stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 100);
    }

    #[test]
    fn comm_breakdown_splits_kinds_and_times_barriers() {
        let (c, a, b) = two();
        a.send_kind(NodeId::new(1), 1, 64, CommKind::Sync);
        a.send_kind(NodeId::new(1), 2, 16, CommKind::Recovery);
        a.send_sized(NodeId::new(1), 3, 4);
        let br = c.comm_breakdown();
        assert_eq!(br.kind(CommKind::Sync).bytes, 64);
        assert_eq!(br.kind(CommKind::Recovery).bytes, 16);
        assert_eq!(br.kind(CommKind::Control).bytes, 4);
        assert_eq!(br.total(), c.comm_stats());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            b.enter_barrier()
        });
        a.enter_barrier();
        t.join().unwrap();
        // `a` blocked for ~10ms waiting on `b`.
        assert!(c.comm_breakdown().barrier_wait >= Duration::from_millis(5));
    }

    #[test]
    fn barrier_roundtrip_through_ctx() {
        let (_c, a, b) = two();
        let t = std::thread::spawn(move || b.enter_barrier());
        assert_eq!(a.enter_barrier(), BarrierOutcome::Clean);
        assert_eq!(t.join().unwrap(), BarrierOutcome::Clean);
    }

    #[test]
    fn wait_standby_wakes_on_dispatch_not_poll() {
        let c: Cluster<u64> = Cluster::new(2, 1, Duration::ZERO);
        let _a = c.take_ctx(NodeId::new(0));
        let b = c.take_ctx(NodeId::new(1));
        b.die();
        c.coordinator().mark_failed(NodeId::new(1));
        let waiter = {
            let c = c.clone();
            std::thread::spawn(move || c.wait_standby(Duration::from_secs(30)))
        };
        assert!(c.dispatch_standby(NodeId::new(1)));
        let ctx = waiter.join().unwrap().expect("standby adopted");
        assert_eq!(ctx.id(), NodeId::new(1));
    }

    #[test]
    fn shutdown_wakes_every_waiting_standby() {
        let c: Cluster<u64> = Cluster::new(1, 3, Duration::ZERO);
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || c.wait_standby(Duration::from_secs(30)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        c.shutdown_standbys();
        for w in waiters {
            assert!(w.join().unwrap().is_none());
        }
        // Event-driven wake-up: nowhere near the 30s patience.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn with_transport_channel_matches_new() {
        let c: Cluster<u64> = Cluster::with_transport(2, 0, Duration::ZERO, TransportKind::Channel);
        let a = c.take_ctx(NodeId::new(0));
        let b = c.take_ctx(NodeId::new(1));
        assert!(a.send_kind(NodeId::new(1), 5, 16, CommKind::Sync));
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 5);
        let br = c.comm_breakdown();
        assert_eq!(br.kind(CommKind::Sync).bytes, 16);
        assert_eq!(br.retries, 0);
        assert_eq!(br.redelivered, 0);
        c.shutdown_transport(); // no-op for channels, must be callable
    }
}

//! The routing fabric and per-node handles.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use imitator_metrics::AtomicCommStats;
use parking_lot::Mutex;

use crate::coord::{BarrierOutcome, Coordinator};
use crate::NodeId;

/// A delivered message with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The logical node that sent the message.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
}

#[derive(Debug)]
struct Fabric<M> {
    senders: Mutex<Vec<Sender<Envelope<M>>>>,
    /// Receivers parked here until a thread claims its `NodeCtx`.
    parked: Mutex<Vec<Option<Receiver<Envelope<M>>>>>,
    /// Contexts dispatched to waiting standby threads (Rebirth recovery).
    standby_tx: Sender<NodeCtx<M>>,
    standby_rx: Receiver<NodeCtx<M>>,
    /// Set when the job is over; waiting standbys return `None`.
    done: std::sync::atomic::AtomicBool,
}

/// A simulated cluster: `n` logical nodes plus a pool of hot standbys,
/// connected by typed message channels and a shared [`Coordinator`].
///
/// Cloning yields another handle on the same cluster.
#[derive(Debug)]
pub struct Cluster<M> {
    fabric: Arc<Fabric<M>>,
    coord: Arc<Coordinator>,
    comm: Arc<AtomicCommStats>,
}

// Manual impl: a handle clone must not require `M: Clone`.
impl<M> Clone for Cluster<M> {
    fn clone(&self) -> Self {
        Cluster {
            fabric: Arc::clone(&self.fabric),
            coord: Arc::clone(&self.coord),
            comm: Arc::clone(&self.comm),
        }
    }
}

impl<M: Send + 'static> Cluster<M> {
    /// Creates a cluster of `num_nodes` logical nodes and `num_standbys`
    /// hot standbys; crashed nodes are detected after `detection_delay`
    /// (the paper uses a conservative 500 ms heartbeat; tests use zero).
    pub fn new(num_nodes: usize, num_standbys: usize, detection_delay: Duration) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one node");
        let mut senders = Vec::with_capacity(num_nodes);
        let mut parked = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            parked.push(Some(rx));
        }
        let (standby_tx, standby_rx) = unbounded();
        Cluster {
            fabric: Arc::new(Fabric {
                senders: Mutex::new(senders),
                parked: Mutex::new(parked),
                standby_tx,
                standby_rx,
                done: std::sync::atomic::AtomicBool::new(false),
            }),
            coord: Arc::new(Coordinator::new(num_nodes, num_standbys, detection_delay)),
            comm: Arc::default(),
        }
    }

    /// Number of logical node slots.
    pub fn num_nodes(&self) -> usize {
        self.coord.num_nodes()
    }

    /// The shared coordination service.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coord
    }

    /// Aggregate message statistics across all nodes.
    pub fn comm_stats(&self) -> imitator_metrics::CommStats {
        self.comm.snapshot()
    }

    /// Claims the execution context for logical node `id`.
    ///
    /// # Panics
    ///
    /// Panics if the context for `id` was already claimed.
    pub fn take_ctx(&self, id: NodeId) -> NodeCtx<M> {
        let rx = self.fabric.parked.lock()[id.index()]
            .take()
            .unwrap_or_else(|| panic!("context for {id} already claimed"));
        NodeCtx {
            id,
            inbox: rx,
            cluster: self.clone(),
        }
    }

    /// Routes a fresh inbox to logical node `id` (whose previous owner died)
    /// and returns the context a standby thread adopts. Also revives the
    /// node in the coordinator, so it is expected at subsequent barriers.
    ///
    /// The caller must have claimed a standby via
    /// [`Coordinator::claim_standby`] first.
    pub fn adopt(&self, id: NodeId) -> NodeCtx<M> {
        let (tx, rx) = unbounded();
        self.fabric.senders.lock()[id.index()] = tx;
        self.coord.revive(id);
        NodeCtx {
            id,
            inbox: rx,
            cluster: self.clone(),
        }
    }

    /// Claims a standby (if any remain), routes a fresh inbox to logical
    /// node `id`, revives it, and hands the context to one thread blocked in
    /// [`Cluster::wait_standby`]. Returns whether a standby was available.
    ///
    /// Called by the recovery leader (the lowest-ID survivor) when Rebirth
    /// needs a replacement machine.
    pub fn dispatch_standby(&self, id: NodeId) -> bool {
        if !self.coord.claim_standby() {
            return false;
        }
        let ctx = self.adopt(id);
        self.fabric
            .standby_tx
            .send(ctx)
            .expect("standby channel lives as long as the fabric");
        true
    }

    /// Blocks a hot-standby thread until it is assigned a crashed node's
    /// identity, or returns `None` once the job completes (or `patience`
    /// elapses with neither).
    pub fn wait_standby(&self, patience: Duration) -> Option<NodeCtx<M>> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            if let Ok(ctx) = self
                .fabric
                .standby_rx
                .recv_timeout(Duration::from_millis(20))
            {
                return Some(ctx);
            }
            if self.fabric.done.load(std::sync::atomic::Ordering::Relaxed)
                || std::time::Instant::now() >= deadline
            {
                return None;
            }
        }
    }

    /// Signals waiting standby threads that the job is over.
    pub fn shutdown_standbys(&self) {
        self.fabric
            .done
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    fn send_from(&self, from: NodeId, to: NodeId, msg: M, bytes: u64) -> bool {
        if !self.coord.is_alive(to) {
            return false; // dropped on the wire: destination crashed
        }
        self.comm.record(1, bytes);
        let sender = self.fabric.senders.lock()[to.index()].clone();
        sender.send(Envelope { from, msg }).is_ok()
    }
}

/// The execution context of one logical node: its identity, inbox, and
/// access to the routing fabric and coordinator.
///
/// Exactly one thread owns each `NodeCtx` at a time (the receiver is not
/// clonable), matching one process per machine.
#[derive(Debug)]
pub struct NodeCtx<M> {
    id: NodeId,
    inbox: Receiver<Envelope<M>>,
    cluster: Cluster<M>,
}

impl<M: Send + 'static> NodeCtx<M> {
    /// This node's logical ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The owning cluster handle.
    pub fn cluster(&self) -> &Cluster<M> {
        &self.cluster
    }

    /// Sends `msg` to `to`, charging zero accounted bytes. Returns `false`
    /// if the destination is dead (message dropped, as on a real network).
    pub fn send(&self, to: NodeId, msg: M) -> bool {
        self.cluster.send_from(self.id, to, msg, 0)
    }

    /// Sends `msg` to `to`, accounting `bytes` of wire traffic.
    pub fn send_sized(&self, to: NodeId, msg: M, bytes: u64) -> bool {
        self.cluster.send_from(self.id, to, msg, bytes)
    }

    /// Drains every message currently queued (all messages sent before the
    /// senders entered the last barrier are guaranteed to be here — channel
    /// sends complete before the barrier is entered).
    pub fn drain(&self) -> Vec<Envelope<M>> {
        self.inbox.try_iter().collect()
    }

    /// Blocks up to `timeout` for one message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Enters the next global barrier (Algorithm 1's `enter_barrier` /
    /// `leave_barrier`) and returns the agreed outcome.
    pub fn enter_barrier(&self) -> BarrierOutcome {
        self.cluster.coord.barrier(self.id)
    }

    /// Enters the next global barrier contributing `value` to the
    /// all-reduced sum (e.g. this node's active-vertex count).
    pub fn enter_barrier_sum(&self, value: u64) -> (BarrierOutcome, u64) {
        self.cluster.coord.barrier_sum(self.id, value)
    }

    /// Crashes this node: marks it for (delayed) failure detection. The
    /// caller must stop participating immediately afterwards — drop the
    /// context and return, as a crashed process would.
    pub fn die(self) {
        self.cluster.coord.report_death(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two() -> (Cluster<u64>, NodeCtx<u64>, NodeCtx<u64>) {
        let c: Cluster<u64> = Cluster::new(2, 1, Duration::ZERO);
        let a = c.take_ctx(NodeId::new(0));
        let b = c.take_ctx(NodeId::new(1));
        (c, a, b)
    }

    #[test]
    fn messages_arrive_with_sender() {
        let (_c, a, b) = two();
        assert!(a.send(NodeId::new(1), 99));
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.from, NodeId::new(0));
        assert_eq!(got.msg, 99);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let c: Cluster<u64> = Cluster::new(1, 0, Duration::ZERO);
        let _a = c.take_ctx(NodeId::new(0));
        let _b = c.take_ctx(NodeId::new(0));
    }

    #[test]
    fn send_to_dead_node_is_dropped() {
        let (c, a, b) = two();
        c.coordinator().mark_failed(NodeId::new(1));
        assert!(!a.send(NodeId::new(1), 1));
        drop(b);
        assert_eq!(c.comm_stats().messages, 0);
    }

    #[test]
    fn drain_returns_all_pre_barrier_messages() {
        let (_c, a, b) = two();
        let t = std::thread::spawn(move || {
            for i in 0..100u64 {
                b.send(NodeId::new(0), i);
            }
            b.enter_barrier();
            b
        });
        a.enter_barrier();
        let msgs = a.drain();
        assert_eq!(msgs.len(), 100);
        t.join().unwrap();
    }

    #[test]
    fn die_then_adopt_replaces_inbox() {
        let (c, a, b) = two();
        // Old messages rot in the dead inbox.
        a.send(NodeId::new(1), 7);
        b.die();
        let outcome = a.enter_barrier();
        assert!(outcome.is_fail());
        assert!(c.coordinator().claim_standby());
        let b2 = c.adopt(NodeId::new(1));
        assert!(c.coordinator().is_alive(NodeId::new(1)));
        // New inbox starts empty; fresh messages flow.
        assert!(b2.drain().is_empty());
        a.send(NodeId::new(1), 8);
        assert_eq!(b2.recv_timeout(Duration::from_secs(1)).unwrap().msg, 8);
    }

    #[test]
    fn comm_stats_account_bytes() {
        let (c, a, _b) = two();
        a.send_sized(NodeId::new(1), 1, 64);
        a.send_sized(NodeId::new(1), 2, 36);
        let s = c.comm_stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 100);
    }

    #[test]
    fn barrier_roundtrip_through_ctx() {
        let (_c, a, b) = two();
        let t = std::thread::spawn(move || b.enter_barrier());
        assert_eq!(a.enter_barrier(), BarrierOutcome::Clean);
        assert_eq!(t.join().unwrap(), BarrierOutcome::Clean);
    }
}

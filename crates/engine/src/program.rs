//! The vertex-centric programming model.

use imitator_graph::{Graph, Vid};

/// Global degree tables, shared read-only by every node.
///
/// Vertex programs consult degrees at `init`/`apply` time (PageRank divides
/// by out-degree; ALS distinguishes users from items by ID range). Sharing
/// the table mirrors the metadata snapshot every node holds after loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degrees {
    out: Vec<u32>,
    in_: Vec<u32>,
}

impl Degrees {
    /// Computes degree tables for `g`.
    pub fn of(g: &Graph) -> Self {
        let mut out = vec![0u32; g.num_vertices()];
        let mut in_ = vec![0u32; g.num_vertices()];
        for e in g.edges() {
            out[e.src.index()] += 1;
            in_[e.dst.index()] += 1;
        }
        Degrees { out, in_ }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: Vid) -> u32 {
        self.out[v.index()]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: Vid) -> u32 {
        self.in_[v.index()]
    }
}

/// A vertex-centric graph program in the gather/combine/apply/scatter style.
///
/// The engines evaluate, for every **active** vertex `v` each iteration:
///
/// ```text
/// acc  = combine(gather(w_e, value(u)) for each in-edge e = (u, v))
/// new  = apply(v, old, acc)
/// if new != old: push `new` to v's replicas; if scatter(v, old, new),
///                activate v's out-neighbours for the next iteration
/// ```
///
/// `gather`/`combine` must be associative and commutative; the engines
/// nevertheless fold contributions in a deterministic order so runs (and
/// post-recovery reruns) are bit-identical.
///
/// # Examples
///
/// A degenerate "copy my smallest in-neighbour" program:
///
/// ```
/// use imitator_engine::{Degrees, VertexProgram};
/// use imitator_graph::Vid;
///
/// struct MinLabel;
/// impl VertexProgram for MinLabel {
///     type Value = u32;
///     type Accum = u32;
///     fn init(&self, vid: Vid, _d: &Degrees) -> u32 { vid.raw() }
///     fn gather(&self, _w: f32, src: &u32) -> u32 { *src }
///     fn combine(&self, a: u32, b: u32) -> u32 { a.min(b) }
///     fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
///         acc.map_or(*old, |a| a.min(*old))
///     }
///     fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool { new < old }
/// }
/// ```
pub trait VertexProgram: Send + Sync + 'static {
    /// Per-vertex state. `PartialEq` lets the engines suppress no-op updates.
    type Value: Clone + Send + Sync + PartialEq + std::fmt::Debug + 'static;
    /// The gather accumulator.
    type Accum: Clone + Send + 'static;

    /// Initial value of `vid`.
    fn init(&self, vid: Vid, degrees: &Degrees) -> Self::Value;

    /// Whether `vid` starts active (default: all vertices — PageRank-style).
    fn initially_active(&self, _vid: Vid) -> bool {
        true
    }

    /// Contribution of one in-edge with weight `weight` from a neighbour
    /// holding `src`.
    fn gather(&self, weight: f32, src: &Self::Value) -> Self::Accum;

    /// Merges two accumulators (associative and commutative).
    fn combine(&self, a: Self::Accum, b: Self::Accum) -> Self::Accum;

    /// Produces the new value from the old one and the combined accumulator
    /// (`None` when no in-edge contributed this iteration).
    fn apply(
        &self,
        vid: Vid,
        old: &Self::Value,
        acc: Option<Self::Accum>,
        degrees: &Degrees,
    ) -> Self::Value;

    /// Like [`VertexProgram::apply`], but also receives the 0-based
    /// superstep number (Pregel exposes the same). Override for
    /// phase-alternating algorithms such as ALS; the default delegates to
    /// `apply`.
    fn apply_step(
        &self,
        vid: Vid,
        old: &Self::Value,
        acc: Option<Self::Accum>,
        degrees: &Degrees,
        _step: u64,
    ) -> Self::Value {
        self.apply(vid, old, acc, degrees)
    }

    /// Whether `vid`'s change should activate its out-neighbours for the
    /// next iteration.
    fn scatter(&self, vid: Vid, old: &Self::Value, new: &Self::Value) -> bool;

    /// Whether this program's vertex values can be *recomputed* from
    /// in-neighbours alone, enabling the selfish-vertex optimisation (§4.4):
    /// selfish vertices get an FT replica but are never synchronised.
    fn selfish_compatible(&self) -> bool {
        false
    }

    /// Estimated wire size of a value, for communication accounting.
    fn value_wire_bytes(&self, _v: &Self::Value) -> usize {
        std::mem::size_of::<Self::Value>()
    }

    /// Estimated wire size of an accumulator, for communication accounting.
    fn accum_wire_bytes(&self, _a: &Self::Accum) -> usize {
        std::mem::size_of::<Self::Accum>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;

    #[test]
    fn degrees_match_graph() {
        let g = gen::from_pairs(4, &[(0, 1), (0, 2), (2, 1)]);
        let d = Degrees::of(&g);
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.out_degree(Vid::new(0)), 2);
        assert_eq!(d.in_degree(Vid::new(1)), 2);
        assert_eq!(d.out_degree(Vid::new(3)), 0);
        assert_eq!(d.in_degree(Vid::new(3)), 0);
    }
}

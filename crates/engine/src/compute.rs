//! Pure single-node compute steps.
//!
//! These functions never touch the network: the distributed runner in the
//! `imitator` crate calls them between message exchanges and barriers
//! (Algorithm 1). Keeping them pure makes rollback trivial — on a failure
//! detected at the barrier, the runner simply discards the returned staging
//! buffers and recomputes the iteration after recovery.

use crate::ecut::EcLocalGraph;
use crate::program::{Degrees, VertexProgram};
use crate::vcut::VcLocalGraph;

/// A staged master update produced by a compute step: nothing is committed
/// until the runner has passed the global barrier cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterUpdate<V> {
    /// Local position of the master.
    pub local: u32,
    /// The new value.
    pub value: V,
    /// The scatter decision: whether consumers are activated next iteration.
    pub activate: bool,
}

/// Commit-time statistics driving convergence and the paper's overhead
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Masters whose value changed this iteration.
    pub changed: usize,
    /// Masters active for the next iteration.
    pub active_next: usize,
}

/// Edge-cut compute phase (Algorithm 1 line 5): every *active* master
/// gathers its in-neighbours' committed values through purely local reads
/// (that is the point of the replicas), applies, and stages an update when
/// the value changed.
///
/// Iterates the sparse activation frontier maintained by [`ec_commit`], so
/// cost is O(frontier + edges touched) rather than O(|verts|). The frontier
/// is sorted ascending, so updates come out in the same position order as
/// the historical full scan ([`ec_compute_scan`]) — bit-identical results.
///
/// Contributions fold in in-edge order, which is fixed at construction and
/// reproduced exactly by recovery — runs are bit-deterministic.
pub fn ec_compute<P: VertexProgram>(
    lg: &EcLocalGraph<P::Value>,
    prog: &P,
    degrees: &Degrees,
    step: u64,
) -> Vec<MasterUpdate<P::Value>> {
    let mut updates = Vec::new();
    ec_compute_frontier(lg, prog, degrees, step, &lg.active_frontier, &mut updates);
    updates
}

/// Gathers and applies the frontier slice `frontier` (ascending positions of
/// active masters), appending staged updates to `updates` in slice order.
/// Shared by the serial path and each parallel worker chunk.
pub(crate) fn ec_compute_frontier<P: VertexProgram>(
    lg: &EcLocalGraph<P::Value>,
    prog: &P,
    degrees: &Degrees,
    step: u64,
    frontier: &[u32],
    updates: &mut Vec<MasterUpdate<P::Value>>,
) {
    for &pos in frontier {
        let v = &lg.verts[pos as usize];
        debug_assert!(
            v.is_master() && v.active,
            "frontier entry not active master"
        );
        let mut acc: Option<P::Accum> = None;
        for &(src, w) in &v.in_edges {
            let contribution = prog.gather(w, &lg.verts[src as usize].value);
            acc = Some(match acc {
                None => contribution,
                Some(a) => prog.combine(a, contribution),
            });
        }
        let new = prog.apply_step(v.vid, &v.value, acc, degrees, step);
        if new != v.value {
            let activate = prog.scatter(v.vid, &v.value, &new);
            updates.push(MasterUpdate {
                local: pos,
                value: new,
                activate,
            });
        }
    }
}

/// The historical dense compute phase: scans every local copy and computes
/// active masters. Produces exactly the same updates as [`ec_compute`]
/// (kept as the frontier path's reference, and as a baseline for benches).
pub fn ec_compute_scan<P: VertexProgram>(
    lg: &EcLocalGraph<P::Value>,
    prog: &P,
    degrees: &Degrees,
    step: u64,
) -> Vec<MasterUpdate<P::Value>> {
    let mut updates = Vec::new();
    for (pos, v) in lg.verts.iter().enumerate() {
        if !v.is_master() || !v.active {
            continue;
        }
        let mut acc: Option<P::Accum> = None;
        for &(src, w) in &v.in_edges {
            let contribution = prog.gather(w, &lg.verts[src as usize].value);
            acc = Some(match acc {
                None => contribution,
                Some(a) => prog.combine(a, contribution),
            });
        }
        let new = prog.apply_step(v.vid, &v.value, acc, degrees, step);
        if new != v.value {
            let activate = prog.scatter(v.vid, &v.value, &new);
            updates.push(MasterUpdate {
                local: pos as u32,
                value: new,
                activate,
            });
        }
    }
    updates
}

/// Edge-cut commit phase (Algorithm 1 line 14): applies this node's own
/// staged updates and the replica updates received from remote masters,
/// propagates activation to local consumers, and rolls the activation front
/// forward.
///
/// `replica_updates` entries are `(local position, value, activate)`.
pub fn ec_commit<P: VertexProgram>(
    lg: &mut EcLocalGraph<P::Value>,
    prog: &P,
    my_updates: Vec<MasterUpdate<P::Value>>,
    replica_updates: Vec<(u32, P::Value, bool)>,
) -> CommitStats {
    let _ = prog;
    let changed = my_updates.len();
    // Retire the old frontier, reusing its allocation as the touched list.
    // Only frontier positions can have `active == true` (the canonical
    // invariant), so clearing them is equivalent to the historical full
    // `active = next_active` sweep.
    let mut touched = std::mem::take(&mut lg.active_frontier);
    for &p in &touched {
        lg.verts[p as usize].active = false;
    }
    touched.clear();
    for u in my_updates {
        commit_update(lg, u.local as usize, u.value, u.activate, &mut touched);
    }
    for (pos, value, activate) in replica_updates {
        commit_update(lg, pos as usize, value, activate, &mut touched);
    }
    // Touched positions (deduped via the `next_active` bit, always masters —
    // activation targets are masters by construction) become the sorted new
    // frontier; everything else already has both bits clear.
    touched.sort_unstable();
    for &p in &touched {
        let v = &mut lg.verts[p as usize];
        v.active = true;
        v.next_active = false;
    }
    let active_next = touched.len();
    lg.active_frontier = touched;
    CommitStats {
        changed,
        active_next,
    }
}

/// Applies one committed update (own master or replica sync alike): stores
/// the value and scatter bit, then propagates activation to local consumers,
/// recording each newly touched position once (`next_active` doubles as the
/// dedupe filter until [`ec_commit`] clears it).
fn commit_update<V>(
    lg: &mut EcLocalGraph<V>,
    pos: usize,
    value: V,
    activate: bool,
    touched: &mut Vec<u32>,
) {
    lg.verts[pos].value = value;
    lg.verts[pos].last_activate = activate;
    if activate {
        let targets = std::mem::take(&mut lg.verts[pos].out_local);
        for &t in &targets {
            let target = &mut lg.verts[t as usize];
            if !target.next_active {
                target.next_active = true;
                touched.push(t);
            }
        }
        lg.verts[pos].out_local = targets;
    }
}

/// Vertex-cut local gather: folds this node's owned edges into one partial
/// accumulator per locally present target vertex (`None` when no local edge
/// contributed). Edge order is fixed at construction, so partials are
/// deterministic.
///
/// The PowerLyra engine here runs *dense* (every vertex recomputes each
/// iteration), which is exactly how the paper's vertex-cut evaluation
/// (§6.10, PageRank only) exercises it.
pub fn vc_partial_gather<P: VertexProgram>(
    lg: &VcLocalGraph<P::Value>,
    prog: &P,
) -> Vec<Option<P::Accum>> {
    let mut partials: Vec<Option<P::Accum>> = vec![None; lg.verts.len()];
    for e in &lg.edges {
        let contribution = prog.gather(e.weight, &lg.verts[e.src as usize].value);
        let slot = &mut partials[e.dst as usize];
        *slot = Some(match slot.take() {
            None => contribution,
            Some(a) => prog.combine(a, contribution),
        });
    }
    partials
}

/// Vertex-cut apply: masters consume their fully combined accumulator and
/// stage an update when the value changed.
///
/// `acc` is indexed by local position and must already combine the local
/// partial with all remote partials (the runner merges them in node-ID
/// order for determinism).
pub fn vc_apply<P: VertexProgram>(
    lg: &VcLocalGraph<P::Value>,
    prog: &P,
    mut acc: Vec<Option<P::Accum>>,
    degrees: &Degrees,
    step: u64,
) -> Vec<MasterUpdate<P::Value>> {
    assert_eq!(acc.len(), lg.verts.len(), "accumulator table size mismatch");
    let mut updates = Vec::new();
    for (pos, v) in lg.verts.iter().enumerate() {
        if !v.is_master() {
            continue;
        }
        let new = prog.apply_step(v.vid, &v.value, acc[pos].take(), degrees, step);
        if new != v.value {
            let activate = prog.scatter(v.vid, &v.value, &new);
            updates.push(MasterUpdate {
                local: pos as u32,
                value: new,
                activate,
            });
        }
    }
    updates
}

/// Vertex-cut commit: applies staged master updates and received replica
/// updates (`(local position, value)`); returns the number of local masters
/// that changed (the convergence signal).
pub fn vc_commit<V: Clone + PartialEq>(
    lg: &mut VcLocalGraph<V>,
    my_updates: Vec<MasterUpdate<V>>,
    replica_updates: Vec<(u32, V)>,
) -> CommitStats {
    let changed = my_updates.len();
    for u in my_updates {
        lg.verts[u.local as usize].value = u.value;
    }
    for (pos, value) in replica_updates {
        lg.verts[pos as usize].value = value;
    }
    CommitStats {
        changed,
        active_next: changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecut::build_edge_cut_graphs;
    use crate::ftplan::FtPlan;
    use crate::vcut::build_vertex_cut_graphs;
    use imitator_graph::{gen, Vid};
    use imitator_partition::{
        EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
    };

    /// Min-label propagation: converges to the minimum reachable label —
    /// easy to check against a sequential reference.
    struct MinLabel;
    impl VertexProgram for MinLabel {
        type Value = u32;
        type Accum = u32;
        fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
            vid.raw()
        }
        fn gather(&self, _w: f32, src: &u32) -> u32 {
            *src
        }
        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
            acc.map_or(*old, |a| a.min(*old))
        }
        fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
            new < old
        }
    }

    /// Sequential reference for min-label propagation.
    fn min_label_reference(g: &imitator_graph::Graph, iters: usize) -> Vec<u32> {
        let mut vals: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for _ in 0..iters {
            let prev = vals.clone();
            for e in g.edges() {
                let s = prev[e.src.index()];
                if s < vals[e.dst.index()] {
                    vals[e.dst.index()] = vals[e.dst.index()].min(s);
                }
            }
        }
        vals
    }

    /// Drives the edge-cut engine single-threaded (no cluster): compute on
    /// every node, route updates to replicas by hand, commit.
    fn run_ec_local(g: &imitator_graph::Graph, parts: usize, iters: usize) -> Vec<u32> {
        let cut = HashEdgeCut.partition(g, parts);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(g);
        let mut lgs = build_edge_cut_graphs(g, &cut, &plan, &MinLabel, &degrees);
        for _ in 0..iters {
            let all_updates: Vec<_> = lgs
                .iter()
                .map(|lg| ec_compute(lg, &MinLabel, &degrees, 0))
                .collect();
            // route replica updates
            let mut replica_updates: Vec<Vec<(u32, u32, bool)>> = vec![Vec::new(); parts];
            for (p, updates) in all_updates.iter().enumerate() {
                for u in updates {
                    let v = &lgs[p].verts[u.local as usize];
                    let meta = v.meta.as_ref().unwrap();
                    for r in &meta.replica_nodes {
                        let pos = lgs[r.index()].position(v.vid).unwrap();
                        replica_updates[r.index()].push((pos, u.value, u.activate));
                    }
                }
            }
            let mut total_active = 0;
            for (p, (updates, incoming)) in all_updates.into_iter().zip(replica_updates).enumerate()
            {
                let stats = ec_commit(&mut lgs[p], &MinLabel, updates, incoming);
                total_active += stats.active_next;
            }
            if total_active == 0 {
                break;
            }
        }
        let mut out = vec![0u32; g.num_vertices()];
        for lg in &lgs {
            for v in lg.verts.iter().filter(|v| v.is_master()) {
                out[v.vid.index()] = v.value;
            }
        }
        out
    }

    #[test]
    fn edge_cut_matches_sequential_reference() {
        let g = gen::power_law(400, 2.0, 5, 3);
        let expected = min_label_reference(&g, 50);
        let got = run_ec_local(&g, 4, 50);
        assert_eq!(got, expected);
    }

    #[test]
    fn edge_cut_single_part_matches_reference() {
        let g = gen::community_like(200, 10, 5);
        assert_eq!(run_ec_local(&g, 1, 60), min_label_reference(&g, 60));
    }

    #[test]
    fn activation_front_goes_quiet() {
        // A chain 0 -> 1 -> 2 -> 3: label 0 flows down in 3 iterations and
        // the computation then stops by itself.
        let g = gen::from_pairs(4, &[(0, 1), (1, 2), (2, 3)]);
        let got = run_ec_local(&g, 2, 100);
        assert_eq!(got, vec![0, 0, 0, 0]);
    }

    #[test]
    fn inactive_masters_do_not_compute() {
        let g = gen::from_pairs(2, &[(0, 1)]);
        let cut = HashEdgeCut.partition(&g, 1);
        let degrees = Degrees::of(&g);
        let plan = FtPlan::none(2);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        // First iteration changes v1 (0 < 1); second has nothing to do.
        let u1 = ec_compute(&lgs[0], &MinLabel, &degrees, 0);
        assert_eq!(u1.len(), 1);
        ec_commit(&mut lgs[0], &MinLabel, u1, Vec::new());
        let u2 = ec_compute(&lgs[0], &MinLabel, &degrees, 1);
        assert!(u2.is_empty());
    }

    /// Drives the vertex-cut engine single-threaded.
    fn run_vc_local(g: &imitator_graph::Graph, parts: usize, iters: usize) -> Vec<u32> {
        let cut = RandomVertexCut.partition(g, parts);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(g);
        let mut lgs = build_vertex_cut_graphs(g, &cut, &plan, &MinLabel, &degrees);
        for _ in 0..iters {
            let partials: Vec<_> = lgs
                .iter()
                .map(|lg| vc_partial_gather(lg, &MinLabel))
                .collect();
            // Combine partials at masters in node order.
            let mut combined: Vec<Vec<Option<u32>>> =
                lgs.iter().map(|lg| vec![None; lg.verts.len()]).collect();
            for (p, partial) in partials.into_iter().enumerate() {
                for (pos, acc) in partial.into_iter().enumerate() {
                    let Some(acc) = acc else { continue };
                    let v = &lgs[p].verts[pos];
                    let owner = v.master_node.index();
                    let mpos = lgs[owner].position(v.vid).unwrap() as usize;
                    let slot = &mut combined[owner][mpos];
                    *slot = Some(match slot.take() {
                        None => acc,
                        Some(a) => MinLabel.combine(a, acc),
                    });
                }
            }
            let mut changed_total = 0;
            let all_updates: Vec<_> = lgs
                .iter()
                .zip(combined)
                .map(|(lg, acc)| vc_apply(lg, &MinLabel, acc, &degrees, 0))
                .collect();
            let mut replica_updates: Vec<Vec<(u32, u32)>> = vec![Vec::new(); parts];
            for (p, updates) in all_updates.iter().enumerate() {
                for u in updates {
                    let v = &lgs[p].verts[u.local as usize];
                    let meta = v.meta.as_ref().unwrap();
                    for r in &meta.replica_nodes {
                        let pos = lgs[r.index()].position(v.vid).unwrap();
                        replica_updates[r.index()].push((pos, u.value));
                    }
                }
            }
            for (p, (updates, incoming)) in all_updates.into_iter().zip(replica_updates).enumerate()
            {
                changed_total += vc_commit(&mut lgs[p], updates, incoming).changed;
            }
            if changed_total == 0 {
                break;
            }
        }
        let mut out = vec![0u32; g.num_vertices()];
        for lg in &lgs {
            for v in lg.verts.iter().filter(|v| v.is_master()) {
                out[v.vid.index()] = v.value;
            }
        }
        out
    }

    #[test]
    fn vertex_cut_matches_sequential_reference() {
        let g = gen::power_law(400, 2.0, 5, 19);
        assert_eq!(run_vc_local(&g, 4, 60), min_label_reference(&g, 60));
    }

    #[test]
    fn vertex_cut_and_edge_cut_agree() {
        let g = gen::community_like(300, 12, 23);
        assert_eq!(run_vc_local(&g, 3, 80), run_ec_local(&g, 5, 80));
    }
}

//! Persistent per-node worker pool.
//!
//! [`crate::ec_compute_par`] and friends spawn a fresh `std::thread::scope`
//! every phase of every superstep; at PageRank-iteration granularity the
//! spawn/join cost rivals the compute itself (ROADMAP open item 4). A
//! [`WorkerPool`] is spawned **once per node per run** instead: workers park
//! on a blocking channel between phases and wake only when a superstep
//! dispatches chunk jobs, so steady-state supersteps pay one enqueue per
//! chunk rather than one thread spawn per chunk.
//!
//! Determinism contract (same as `par.rs`): work is split into disjoint
//! contiguous chunks and results are consumed **in submission order** via
//! [`InOrder`], regardless of which worker finishes first. Each chunk job is
//! a pure function of its inputs, so chunk-order concatenation is
//! bit-identical to the serial phase for any thread count.
//!
//! The pool also unlocks pipelining: [`InOrder`] yields each chunk as soon
//! as it (and all earlier chunks) completed, so the driver can stage and
//! ship chunk `i`'s sync batch while chunks `i+1..` are still computing.
//! Two invariants make that safe:
//!
//! 1. **Results are published only after the job's captures are dropped.**
//!    The wrapper invokes the boxed job (consuming it and its `Arc` clones
//!    of the shared graph) *before* sending the result, so once the main
//!    thread has consumed every chunk, `Arc::get_mut` on the graph is
//!    guaranteed to succeed — no reference counting races.
//! 2. **With one thread the pool runs jobs inline, lazily**, in the
//!    iterator itself: a single code path whose observable order is
//!    trivially the serial order.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};

use crate::compute::{ec_compute_frontier, MasterUpdate};
use crate::ecut::EcLocalGraph;
use crate::par::{chunk_ranges, VcGatherIndex};
use crate::program::{Degrees, VertexProgram};
use crate::vcut::VcLocalGraph;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of parked worker threads, spawned once per node per
/// run and reused across every superstep phase.
///
/// With `threads <= 1` no workers are spawned and dispatched jobs run
/// inline (lazily, as the [`InOrder`] iterator is consumed), keeping a
/// single code path for serial and parallel execution.
pub struct WorkerPool {
    jobs_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    dispatched: AtomicU64,
    peak_busy: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (none when `threads <= 1`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let busy = Arc::new(AtomicU64::new(0));
        let peak_busy = Arc::new(AtomicU64::new(0));
        if threads == 1 {
            return WorkerPool {
                jobs_tx: None,
                workers: Vec::new(),
                threads,
                dispatched: AtomicU64::new(0),
                peak_busy,
            };
        }
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let busy = Arc::clone(&busy);
                let peak = Arc::clone(&peak_busy);
                std::thread::spawn(move || {
                    // Blocking recv parks the worker between phases; the
                    // pool's Drop disconnects the channel to wake and
                    // retire every worker.
                    while let Ok(job) = rx.recv() {
                        let now = busy.fetch_add(1, Ordering::Relaxed) + 1;
                        peak.fetch_max(now, Ordering::Relaxed);
                        job();
                        busy.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        WorkerPool {
            jobs_tx: Some(tx),
            workers,
            threads,
            dispatched: AtomicU64::new(0),
            peak_busy,
        }
    }

    /// Worker-thread budget this pool was built for (`>= 1`); phase
    /// drivers use it as their chunk count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total jobs dispatched and the peak number of simultaneously busy
    /// workers observed (0 in inline mode — there are no workers).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.dispatched.load(Ordering::Relaxed),
            self.peak_busy.load(Ordering::Relaxed),
        )
    }

    /// Dispatches `jobs` and returns an iterator over their results **in
    /// submission order**. Out-of-order completions are buffered; with no
    /// workers the jobs run inline as the iterator is advanced.
    pub fn dispatch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> InOrder<T> {
        self.dispatched
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let Some(tx) = &self.jobs_tx else {
            return InOrder {
                inner: Inner::Inline(jobs.into_iter()),
            };
        };
        let total = jobs.len();
        let (res_tx, res_rx) = channel::unbounded();
        for (i, job) in jobs.into_iter().enumerate() {
            let res_tx = res_tx.clone();
            tx.send(Box::new(move || {
                // Run to completion *before* publishing: the send
                // happens-after every capture of `job` (including Arc
                // clones of the shared graph) has been dropped, so a
                // consumer that has received all results can rely on
                // `Arc::get_mut` succeeding.
                let out = job();
                let _ = res_tx.send((i, out));
            }))
            .expect("worker pool alive while dispatching");
        }
        InOrder {
            inner: Inner::Pooled {
                rx: res_rx,
                buf: (0..total).map(|_| None).collect(),
                next: 0,
            },
        }
    }

    /// Dispatches `jobs` and collects every result, in submission order.
    pub fn run<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        self.dispatch(jobs).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the job channel: parked workers observe RecvError
        // and exit; then reap them.
        self.jobs_tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (jobs, peak) = self.counters();
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("dispatched", &jobs)
            .field("peak_busy", &peak)
            .finish()
    }
}

/// Results of one [`WorkerPool::dispatch`], yielded in submission order.
pub struct InOrder<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    /// No workers: jobs run lazily on the consuming thread.
    Inline(std::vec::IntoIter<Box<dyn FnOnce() -> T + Send + 'static>>),
    /// Workers publish `(index, result)`; completions arriving early are
    /// buffered until their turn.
    Pooled {
        rx: Receiver<(usize, T)>,
        buf: Vec<Option<T>>,
        next: usize,
    },
}

impl<T> InOrder<T> {
    /// Number of chunk results not yet yielded. The pipelined driver uses
    /// this to tell "staging overlapped with outstanding compute" from
    /// "staging after the last chunk".
    pub fn outstanding(&self) -> usize {
        match &self.inner {
            Inner::Inline(it) => it.len(),
            Inner::Pooled { buf, next, .. } => buf.len() - next,
        }
    }
}

impl<T> Iterator for InOrder<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            Inner::Inline(it) => it.next().map(|job| job()),
            Inner::Pooled { rx, buf, next } => {
                if *next >= buf.len() {
                    return None;
                }
                while buf[*next].is_none() {
                    let (i, v) = rx.recv().expect("pool worker died before finishing chunk");
                    debug_assert!(buf[i].is_none(), "duplicate chunk result");
                    buf[i] = Some(v);
                }
                let out = buf[*next].take();
                *next += 1;
                out
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.outstanding();
        (n, Some(n))
    }
}

impl<T> ExactSizeIterator for InOrder<T> {}

impl<T> fmt::Debug for InOrder<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InOrder")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

/// Edge-cut compute phase on the pool: the sorted activation frontier is
/// split into contiguous chunks (one per pool thread) and each chunk's
/// staged master updates are yielded in chunk order — concatenating them is
/// bit-identical to [`crate::ec_compute`] for any thread count.
pub fn ec_compute_chunks<P: VertexProgram>(
    pool: &WorkerPool,
    lg: &Arc<EcLocalGraph<P::Value>>,
    prog: &Arc<P>,
    degrees: &Arc<Degrees>,
    step: u64,
) -> InOrder<Vec<MasterUpdate<P::Value>>> {
    let ranges = chunk_ranges(lg.active_frontier.len(), pool.threads());
    let jobs = ranges
        .into_iter()
        .map(|r| {
            let lg = Arc::clone(lg);
            let prog = Arc::clone(prog);
            let degrees = Arc::clone(degrees);
            Box::new(move || {
                let mut ups = Vec::new();
                let frontier = &lg.active_frontier[r];
                ec_compute_frontier(&lg, &*prog, &degrees, step, frontier, &mut ups);
                ups
            }) as Box<dyn FnOnce() -> Vec<MasterUpdate<P::Value>> + Send>
        })
        .collect();
    pool.dispatch(jobs)
}

/// One gather worker's result: the destination range it owned and the
/// accumulator slots for exactly that range.
pub type GatherChunk<A> = (Range<usize>, Vec<Option<A>>);

/// Vertex-cut local gather on the pool: workers own disjoint contiguous
/// destination ranges (balanced by edge count via the gather index) and
/// return their accumulator slices; each destination folds its edges in
/// original edge-list order, so writing each `(range, slots)` back at
/// `range` reproduces [`crate::vc_partial_gather`]'s table exactly.
pub fn vc_gather_chunks<P: VertexProgram>(
    pool: &WorkerPool,
    lg: &Arc<VcLocalGraph<P::Value>>,
    prog: &Arc<P>,
    index: &Arc<VcGatherIndex>,
) -> InOrder<GatherChunk<P::Accum>> {
    assert!(index.is_valid_for(lg), "stale gather index for this graph");
    let ranges = index.ranges(pool.threads());
    let jobs = ranges
        .into_iter()
        .map(|r| {
            let lg = Arc::clone(lg);
            let prog = Arc::clone(prog);
            let index = Arc::clone(index);
            Box::new(move || {
                let mut slots: Vec<Option<P::Accum>> = vec![None; r.len()];
                for (slot, d) in slots.iter_mut().zip(r.clone()) {
                    for &ei in index.edges_for(d) {
                        let e = &lg.edges[ei as usize];
                        let contribution = prog.gather(e.weight, &lg.verts[e.src as usize].value);
                        *slot = Some(match slot.take() {
                            None => contribution,
                            Some(a) => prog.combine(a, contribution),
                        });
                    }
                }
                (r, slots)
            }) as Box<dyn FnOnce() -> (Range<usize>, Vec<Option<P::Accum>>) + Send>
        })
        .collect();
    pool.dispatch(jobs)
}

/// Vertex-cut apply on the pool: the accumulator table is carved into
/// owned contiguous position chunks, each worker consumes its chunk
/// (masters `take()` their slot, exactly like the serial path) and stages
/// updates; chunk-order concatenation reproduces [`crate::vc_apply`]'s
/// ascending-position output.
pub fn vc_apply_chunks<P: VertexProgram>(
    pool: &WorkerPool,
    lg: &Arc<VcLocalGraph<P::Value>>,
    prog: &Arc<P>,
    degrees: &Arc<Degrees>,
    step: u64,
    mut acc: Vec<Option<P::Accum>>,
) -> InOrder<Vec<MasterUpdate<P::Value>>> {
    assert_eq!(acc.len(), lg.verts.len(), "accumulator table size mismatch");
    let ranges = chunk_ranges(acc.len(), pool.threads());
    let mut drain = acc.drain(..);
    let jobs = ranges
        .into_iter()
        .map(|r| {
            let chunk: Vec<Option<P::Accum>> = drain.by_ref().take(r.len()).collect();
            let lg = Arc::clone(lg);
            let prog = Arc::clone(prog);
            let degrees = Arc::clone(degrees);
            Box::new(move || {
                let mut ups = Vec::new();
                for (mut slot, pos) in chunk.into_iter().zip(r) {
                    let v = &lg.verts[pos];
                    if !v.is_master() {
                        continue;
                    }
                    let new = prog.apply_step(v.vid, &v.value, slot.take(), &degrees, step);
                    if new != v.value {
                        let activate = prog.scatter(v.vid, &v.value, &new);
                        ups.push(MasterUpdate {
                            local: pos as u32,
                            value: new,
                            activate,
                        });
                    }
                }
                ups
            }) as Box<dyn FnOnce() -> Vec<MasterUpdate<P::Value>> + Send>
        })
        .collect();
    pool.dispatch(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecut::build_edge_cut_graphs;
    use crate::ftplan::FtPlan;
    use crate::par::weighted_ranges;
    use crate::vcut::build_vertex_cut_graphs;
    use crate::{ec_compute, vc_apply, vc_partial_gather};
    use imitator_graph::{gen, Vid};
    use imitator_partition::{
        EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
    };
    use std::time::Duration;

    struct MinLabel;
    impl crate::VertexProgram for MinLabel {
        type Value = u32;
        type Accum = u32;
        fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
            vid.raw()
        }
        fn gather(&self, _w: f32, src: &u32) -> u32 {
            *src
        }
        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
            acc.map_or(*old, |a| a.min(*old))
        }
        fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
            new < old
        }
    }

    fn job<T: Send + 'static>(
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Box<dyn FnOnce() -> T + Send + 'static> {
        Box::new(f)
    }

    #[test]
    fn results_arrive_in_submission_order() {
        // Later jobs finish first (earlier ones sleep longer); InOrder must
        // still yield 0, 1, 2, ...
        let pool = WorkerPool::new(4);
        for _round in 0..3 {
            let jobs: Vec<_> = (0..8u64)
                .map(|i| {
                    job(move || {
                        std::thread::sleep(Duration::from_millis(8u64.saturating_sub(i)));
                        i
                    })
                })
                .collect();
            let got: Vec<u64> = pool.run(jobs);
            assert_eq!(got, (0..8).collect::<Vec<_>>());
        }
        let (jobs, peak) = pool.counters();
        assert_eq!(jobs, 24);
        assert!((1..=4).contains(&peak), "peak busy {peak}");
    }

    #[test]
    fn inline_pool_runs_lazily_in_order() {
        let pool = WorkerPool::new(1);
        let mut it = pool.dispatch((0..5u32).map(|i| job(move || i * 10)).collect());
        assert_eq!(it.outstanding(), 5);
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.outstanding(), 4);
        assert_eq!(it.by_ref().collect::<Vec<_>>(), vec![10, 20, 30, 40]);
        assert_eq!(it.outstanding(), 0);
        assert_eq!(it.next(), None);
        let (jobs, peak) = pool.counters();
        assert_eq!((jobs, peak), (5, 0));
    }

    #[test]
    fn zero_jobs_is_fine_and_pool_survives_reuse() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.run(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new()), []);
            // Park/unpark across many phases: repeated small dispatches.
            for round in 0..50u32 {
                let got = pool.run(vec![job(move || round)]);
                assert_eq!(got, vec![round]);
            }
        }
    }

    // Satellite: chunk_ranges/weighted_ranges edge cases *under the pool*.

    #[test]
    fn empty_frontier_dispatches_no_jobs() {
        let pool = WorkerPool::new(4);
        assert!(chunk_ranges(0, pool.threads()).is_empty());
        assert!(weighted_ranges(&[0u32], pool.threads()).is_empty());
        let mut it = pool.dispatch(Vec::<Box<dyn FnOnce() -> Vec<u32> + Send + 'static>>::new());
        assert_eq!(it.outstanding(), 0);
        assert!(it.next().is_none());
        assert_eq!(pool.counters().0, 0);
    }

    #[test]
    fn fewer_items_than_workers_yields_singleton_chunks() {
        let pool = WorkerPool::new(8);
        let ranges = chunk_ranges(3, pool.threads());
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| r.len() == 1));
        let got: Vec<usize> = pool.run(ranges.into_iter().map(|r| job(move || r.start)).collect());
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn single_mega_chunk_on_one_thread() {
        let pool = WorkerPool::new(1);
        let ranges = chunk_ranges(1000, pool.threads());
        assert_eq!(ranges, vec![0..1000]);
        let got: Vec<usize> = pool.run(ranges.into_iter().map(|r| job(move || r.len())).collect());
        assert_eq!(got, vec![1000]);
    }

    #[test]
    fn pooled_ec_compute_matches_serial() {
        let g = gen::power_law(600, 2.0, 6, 43);
        let cut = HashEdgeCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Arc::new(Degrees::of(&g));
        let prog = Arc::new(MinLabel);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &*prog, &degrees);
        for lg in lgs {
            let serial = ec_compute(&lg, &*prog, &degrees, 0);
            let mut lg = Arc::new(lg);
            for t in [1usize, 2, 3, 8] {
                let pool = WorkerPool::new(t);
                let chunks = ec_compute_chunks(&pool, &lg, &prog, &degrees, 0);
                let merged: Vec<_> = chunks.flatten().collect();
                assert_eq!(merged, serial, "threads={t} diverged");
                // Every worker dropped its Arc clone before publishing.
                assert!(Arc::get_mut(&mut lg).is_some(), "graph still shared");
            }
        }
    }

    #[test]
    fn pooled_vc_gather_and_apply_match_serial() {
        let g = gen::power_law(500, 2.0, 5, 47);
        let cut = RandomVertexCut.partition(&g, 4);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Arc::new(Degrees::of(&g));
        let prog = Arc::new(MinLabel);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &*prog, &degrees);
        for lg in lgs {
            let serial = vc_partial_gather(&lg, &*prog);
            let serial_ups = vc_apply(&lg, &*prog, serial.clone(), &degrees, 0);
            let index = Arc::new(VcGatherIndex::build(&lg));
            let mut lg = Arc::new(lg);
            for t in [1usize, 2, 5, 8] {
                let pool = WorkerPool::new(t);
                let mut table: Vec<Option<u32>> = vec![None; serial.len()];
                for (r, slots) in vc_gather_chunks(&pool, &lg, &prog, &index) {
                    assert_eq!(r.len(), slots.len());
                    for (i, s) in r.zip(slots) {
                        table[i] = s;
                    }
                }
                assert_eq!(table, serial, "gather threads={t} diverged");
                let ups: Vec<_> = vc_apply_chunks(&pool, &lg, &prog, &degrees, 0, table)
                    .flatten()
                    .collect();
                assert_eq!(ups, serial_ups, "apply threads={t} diverged");
                assert!(Arc::get_mut(&mut lg).is_some(), "graph still shared");
            }
        }
    }
}

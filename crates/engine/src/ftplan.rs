//! The fault-tolerance placement plan consumed by the local-graph builders.

use imitator_cluster::NodeId;
use imitator_graph::Vid;

/// Where the fault-tolerance machinery of §4 placed things for each vertex:
/// which replica is the full-state **mirror**, where **extra FT replicas**
/// were created for vertices that had none, and which vertices are
/// **selfish** (never synchronised; recomputed at recovery).
///
/// A plan with no mirrors ([`FtPlan::none`]) gives the plain baseline engine
/// without fault tolerance. The `imitator` crate computes real plans; this
/// crate only carries them into graph construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FtPlan {
    /// Per vertex: the node hosting the mirror (`None` = no fault tolerance
    /// for this vertex).
    pub mirror: Vec<Vec<NodeId>>,
    /// Per vertex: nodes that get an *extra* FT replica (a copy that normal
    /// computation did not require). Always a subset of `mirror` locations.
    pub extra_replicas: Vec<Vec<NodeId>>,
    /// Per vertex: whether the selfish-vertex optimisation applies (§4.4).
    pub selfish: Vec<bool>,
}

impl FtPlan {
    /// A plan providing no fault tolerance for `num_vertices` vertices.
    pub fn none(num_vertices: usize) -> Self {
        FtPlan {
            mirror: vec![Vec::new(); num_vertices],
            extra_replicas: vec![Vec::new(); num_vertices],
            selfish: vec![false; num_vertices],
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.mirror.len()
    }

    /// The mirror nodes of `v`, ordered by mirror ID (§5.3.1: the surviving
    /// mirror with the lowest ID performs recovery).
    pub fn mirrors(&self, v: Vid) -> &[NodeId] {
        &self.mirror[v.index()]
    }

    /// Whether any vertex has a mirror (i.e. fault tolerance is on).
    pub fn is_enabled(&self) -> bool {
        self.mirror.iter().any(|m| !m.is_empty())
    }

    /// Total number of extra FT replicas in the plan (Fig. 3(b) / Fig. 8(a)).
    pub fn extra_replica_count(&self) -> usize {
        self.extra_replicas.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_disabled() {
        let p = FtPlan::none(10);
        assert_eq!(p.num_vertices(), 10);
        assert!(!p.is_enabled());
        assert_eq!(p.extra_replica_count(), 0);
        assert!(p.mirrors(Vid::new(3)).is_empty());
    }

    #[test]
    fn enabled_when_any_mirror_set() {
        let mut p = FtPlan::none(3);
        p.mirror[1] = vec![NodeId::new(2)];
        assert!(p.is_enabled());
        assert_eq!(p.mirrors(Vid::new(1)), &[NodeId::new(2)]);
    }
}

//! Intra-node parallel supersteps.
//!
//! The paper's evaluation runs multiple worker threads per node; this module
//! provides the same multicore compute pool for the pure per-node phases
//! while preserving the engine's bit-determinism contract (recovery must
//! reproduce the clean run's values exactly, see `ec_commit`).
//!
//! The scheme is the same for every phase:
//!
//! 1. split the node's work (frontier slice / destination range / position
//!    range) into **disjoint contiguous chunks**,
//! 2. run each chunk on a scoped worker thread (`std::thread::scope`, no
//!    extra dependencies and no `unsafe`), each staging into its own buffer,
//! 3. concatenate the per-chunk buffers **in chunk order**.
//!
//! Since every serial phase processes positions in ascending order and folds
//! each vertex's contributions in a fixed edge order, chunk-order
//! concatenation reproduces the serial output byte for byte, for any thread
//! count. Workers never share mutable state (destination ranges are carved
//! out of the accumulator table with `split_at_mut`), so no atomics or locks
//! appear on the hot path.

use std::ops::Range;

use crate::compute::{ec_compute_frontier, MasterUpdate};
use crate::ecut::EcLocalGraph;
use crate::program::{Degrees, VertexProgram};
use crate::vcut::VcLocalGraph;

/// Splits `0..len` into at most `chunks` non-empty contiguous ranges of
/// near-equal size (sizes differ by at most one).
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits `0..n` (where `prefix` has `n + 1` monotone entries, `prefix[i]`
/// = total weight before item `i`) into at most `chunks` contiguous ranges
/// of near-equal total weight. Used to balance gather workers by edge count
/// rather than vertex count (power-law graphs make the two very different).
pub fn weighted_ranges(prefix: &[u32], chunks: usize) -> Vec<Range<usize>> {
    let n = prefix.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, n);
    let total = u64::from(prefix[n]);
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        if start >= n {
            break;
        }
        // Cut where the running weight crosses the next 1/chunks share, but
        // always make progress by at least one item.
        let target = total * (i as u64 + 1) / chunks as u64;
        let mut end = start + 1;
        while end < n && u64::from(prefix[end]) < target {
            end += 1;
        }
        if i + 1 == chunks {
            end = n;
        }
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(out.last().map(|r| r.end), Some(n));
    out
}

/// Parallel edge-cut compute: the sorted activation frontier is split into
/// contiguous chunks, each computed on a scoped worker, and the staged
/// updates are concatenated in chunk order — bit-identical to
/// [`crate::ec_compute`] for any `threads >= 1`.
pub fn ec_compute_par<P: VertexProgram>(
    lg: &EcLocalGraph<P::Value>,
    prog: &P,
    degrees: &Degrees,
    step: u64,
    threads: usize,
) -> Vec<MasterUpdate<P::Value>> {
    let frontier = &lg.active_frontier;
    let ranges = chunk_ranges(frontier.len(), threads.max(1));
    if ranges.len() <= 1 {
        return crate::ec_compute(lg, prog, degrees, step);
    }
    let mut outs: Vec<Vec<MasterUpdate<P::Value>>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let chunk = &frontier[r];
                s.spawn(move || {
                    let mut ups = Vec::new();
                    ec_compute_frontier(lg, prog, degrees, step, chunk, &mut ups);
                    ups
                })
            })
            .collect();
        outs.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
    });
    concat_in_order(outs)
}

/// Destination-grouped view of a [`VcLocalGraph`]'s edge list (CSR-like).
///
/// `edges_for(d)` yields the indices of all edges with `dst == d`, in their
/// original edge-list order — so folding a destination's contributions via
/// this index reproduces the serial [`crate::vc_partial_gather`] fold order
/// exactly (the grouping is a stable counting sort by destination). Because
/// destinations are disjoint, workers can own contiguous destination ranges
/// and write their accumulator slots without atomics.
///
/// Build once per graph topology and reuse across iterations; rebuild after
/// recovery changes the local graph (checked by [`VcGatherIndex::is_valid_for`]).
#[derive(Debug, Clone)]
pub struct VcGatherIndex {
    /// `offsets[d]..offsets[d + 1]` bounds destination `d`'s slice of
    /// `edge_order`; `offsets.len() == num_verts + 1`.
    offsets: Vec<u32>,
    /// Edge-list indices grouped by destination, original order within each.
    edge_order: Vec<u32>,
    num_verts: usize,
}

impl VcGatherIndex {
    /// Builds the index for `lg`'s current edge list (stable counting sort,
    /// O(|edges| + |verts|)).
    pub fn build<V>(lg: &VcLocalGraph<V>) -> Self {
        let n = lg.verts.len();
        let mut offsets = vec![0u32; n + 1];
        for e in &lg.edges {
            offsets[e.dst as usize + 1] += 1;
        }
        for d in 0..n {
            offsets[d + 1] += offsets[d];
        }
        let mut cursor = offsets.clone();
        let mut edge_order = vec![0u32; lg.edges.len()];
        for (i, e) in lg.edges.iter().enumerate() {
            let c = &mut cursor[e.dst as usize];
            edge_order[*c as usize] = i as u32;
            *c += 1;
        }
        VcGatherIndex {
            offsets,
            edge_order,
            num_verts: n,
        }
    }

    /// Whether the index still matches `lg`'s shape (sizes only — the
    /// runner rebuilds after any recovery, which is the only mutation).
    pub fn is_valid_for<V>(&self, lg: &VcLocalGraph<V>) -> bool {
        self.num_verts == lg.verts.len() && self.edge_order.len() == lg.edges.len()
    }

    /// Edge-list indices feeding destination `d`, in original edge order.
    pub fn edges_for(&self, d: usize) -> &[u32] {
        &self.edge_order[self.offsets[d] as usize..self.offsets[d + 1] as usize]
    }

    /// Destination ranges of near-equal total edge weight for `chunks`
    /// workers (see [`weighted_ranges`]).
    pub fn ranges(&self, chunks: usize) -> Vec<Range<usize>> {
        weighted_ranges(&self.offsets, chunks)
    }
}

/// Parallel vertex-cut local gather into a caller-owned accumulator table
/// (cleared and resized here — reuse it across iterations for a zero-alloc
/// steady state). Workers own disjoint contiguous destination ranges
/// (balanced by edge count) carved out of `partials` with `split_at_mut`;
/// each destination folds its edges in original edge-list order, so the
/// table is bit-identical to [`crate::vc_partial_gather`]'s output.
pub fn vc_partial_gather_par<P: VertexProgram>(
    lg: &VcLocalGraph<P::Value>,
    prog: &P,
    index: &VcGatherIndex,
    threads: usize,
    partials: &mut Vec<Option<P::Accum>>,
) {
    assert!(index.is_valid_for(lg), "stale gather index for this graph");
    partials.clear();
    partials.resize(lg.verts.len(), None);
    let ranges = weighted_ranges(&index.offsets, threads.max(1));
    let gather_range = |range: Range<usize>, slots: &mut [Option<P::Accum>]| {
        for (slot, d) in slots.iter_mut().zip(range) {
            for &ei in index.edges_for(d) {
                let e = &lg.edges[ei as usize];
                let contribution = prog.gather(e.weight, &lg.verts[e.src as usize].value);
                *slot = Some(match slot.take() {
                    None => contribution,
                    Some(a) => prog.combine(a, contribution),
                });
            }
        }
    };
    if ranges.len() <= 1 {
        if let Some(r) = ranges.into_iter().next() {
            gather_range(r, partials);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut rest: &mut [Option<P::Accum>] = partials;
        let mut carved = 0usize;
        for r in ranges {
            debug_assert_eq!(r.start, carved);
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            carved = r.end;
            let gather_range = &gather_range;
            s.spawn(move || gather_range(r, chunk));
        }
    });
}

/// Parallel vertex-cut apply: contiguous position ranges per worker, each
/// consuming its slice of the accumulator table (masters `take()` their
/// slot, exactly like the serial path) and staging updates; chunk-order
/// concatenation reproduces [`crate::vc_apply`]'s ascending-position output.
pub fn vc_apply_par<P: VertexProgram>(
    lg: &VcLocalGraph<P::Value>,
    prog: &P,
    acc: &mut [Option<P::Accum>],
    degrees: &Degrees,
    step: u64,
    threads: usize,
) -> Vec<MasterUpdate<P::Value>> {
    assert_eq!(acc.len(), lg.verts.len(), "accumulator table size mismatch");
    let ranges = chunk_ranges(lg.verts.len(), threads.max(1));
    let apply_range = |range: Range<usize>, slots: &mut [Option<P::Accum>]| {
        let mut ups = Vec::new();
        for (slot, pos) in slots.iter_mut().zip(range) {
            let v = &lg.verts[pos];
            if !v.is_master() {
                continue;
            }
            let new = prog.apply_step(v.vid, &v.value, slot.take(), degrees, step);
            if new != v.value {
                let activate = prog.scatter(v.vid, &v.value, &new);
                ups.push(MasterUpdate {
                    local: pos as u32,
                    value: new,
                    activate,
                });
            }
        }
        ups
    };
    if ranges.len() <= 1 {
        return match ranges.into_iter().next() {
            Some(r) => apply_range(r, acc),
            None => Vec::new(),
        };
    }
    let mut outs: Vec<Vec<MasterUpdate<P::Value>>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut rest: &mut [Option<P::Accum>] = acc;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let apply_range = &apply_range;
            handles.push(s.spawn(move || apply_range(r, chunk)));
        }
        outs.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
    });
    concat_in_order(outs)
}

fn concat_in_order<T>(outs: Vec<Vec<T>>) -> Vec<T> {
    let total = outs.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for o in outs {
        merged.extend(o);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecut::build_edge_cut_graphs;
    use crate::ftplan::FtPlan;
    use crate::program::Degrees;
    use crate::vcut::build_vertex_cut_graphs;
    use crate::{ec_commit, ec_compute, ec_compute_scan, vc_apply, vc_partial_gather};
    use imitator_graph::{gen, Vid};
    use imitator_partition::{
        EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
    };

    struct MinLabel;
    impl crate::VertexProgram for MinLabel {
        type Value = u32;
        type Accum = u32;
        fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
            vid.raw()
        }
        fn gather(&self, _w: f32, src: &u32) -> u32 {
            *src
        }
        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
            acc.map_or(*old, |a| a.min(*old))
        }
        fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
            new < old
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 8, 100] {
            for chunks in 1..=9 {
                let rs = chunk_ranges(len, chunks);
                let covered: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len);
                let mut expect = 0;
                for r in &rs {
                    assert_eq!(r.start, expect, "gap at {expect}");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                if len > 0 {
                    assert!(rs.len() <= chunks);
                    let sizes: Vec<_> = rs.iter().map(|r| r.len()).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "unbalanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn weighted_ranges_cover_exactly() {
        // prefix for weights [5, 0, 0, 1, 10, 2]
        let prefix = [0u32, 5, 5, 5, 6, 16, 18];
        for chunks in 1..=8 {
            let rs = weighted_ranges(&prefix, chunks);
            let mut expect = 0;
            for r in &rs {
                assert_eq!(r.start, expect);
                assert!(!r.is_empty());
                expect = r.end;
            }
            assert_eq!(expect, prefix.len() - 1);
        }
        assert!(weighted_ranges(&[0u32], 4).is_empty());
    }

    #[test]
    fn gather_index_groups_stably() {
        let g = gen::power_law(300, 2.0, 5, 41);
        let cut = RandomVertexCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        for lg in &lgs {
            let idx = VcGatherIndex::build(lg);
            assert!(idx.is_valid_for(lg));
            let mut seen = 0usize;
            for d in 0..lg.verts.len() {
                let slice = idx.edges_for(d);
                // grouped by dst, original order within the group
                assert!(slice.windows(2).all(|w| w[0] < w[1]));
                for &ei in slice {
                    assert_eq!(lg.edges[ei as usize].dst as usize, d);
                }
                seen += slice.len();
            }
            assert_eq!(seen, lg.edges.len());
        }
    }

    #[test]
    fn parallel_ec_compute_matches_serial_and_scan() {
        let g = gen::power_law(600, 2.0, 6, 43);
        let cut = HashEdgeCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(&g);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        for step in 0..4 {
            let mut all_updates = Vec::new();
            for lg in &lgs {
                let serial = ec_compute(lg, &MinLabel, &degrees, step);
                let scan = ec_compute_scan(lg, &MinLabel, &degrees, step);
                assert_eq!(serial, scan, "frontier path diverged from full scan");
                for t in 1..=8 {
                    let par = ec_compute_par(lg, &MinLabel, &degrees, step, t);
                    assert_eq!(par, serial, "threads={t} diverged");
                }
                all_updates.push(serial);
            }
            for (lg, ups) in lgs.iter_mut().zip(all_updates) {
                ec_commit(lg, &MinLabel, ups, Vec::new());
                lg.debug_validate();
            }
        }
    }

    #[test]
    fn parallel_vc_gather_and_apply_match_serial() {
        let g = gen::power_law(500, 2.0, 5, 47);
        let cut = RandomVertexCut.partition(&g, 4);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        for lg in &lgs {
            let serial = vc_partial_gather(lg, &MinLabel);
            let idx = VcGatherIndex::build(lg);
            let mut table = Vec::new();
            for t in 1..=8 {
                vc_partial_gather_par(lg, &MinLabel, &idx, t, &mut table);
                assert_eq!(table, serial, "gather threads={t} diverged");
            }
            let serial_ups = vc_apply(lg, &MinLabel, serial.clone(), &degrees, 0);
            for t in 1..=8 {
                let mut acc = serial.clone();
                let par_ups = vc_apply_par(lg, &MinLabel, &mut acc, &degrees, 0, t);
                assert_eq!(par_ups, serial_ups, "apply threads={t} diverged");
                // masters consumed their slots, exactly like the serial path
                for (pos, v) in lg.verts.iter().enumerate() {
                    if v.is_master() {
                        assert!(acc[pos].is_none());
                    }
                }
            }
        }
    }
}

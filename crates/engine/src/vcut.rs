//! Vertex-cut local graphs (the PowerLyra runtime representation).

use imitator_cluster::NodeId;
use imitator_graph::{Graph, PosIndex, Vid};
use imitator_metrics::MemSize;
use imitator_partition::VertexCut;

use crate::ecut::CopyKind;
use crate::ftplan::FtPlan;
use crate::program::{Degrees, VertexProgram};

/// The vertex state a vertex-cut master shares with its mirrors.
///
/// Unlike edge-cut, vertex-cut full state carries **no edges**: edges are
/// persisted to edge-ckpt files on the DFS during loading (§4.3) because no
/// single node holds all of a vertex's edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcMeta {
    /// The master's array position on its owner node.
    pub master_pos: u32,
    /// Every node holding a copy of this vertex, excluding the owner. Sorted.
    pub replica_nodes: Vec<NodeId>,
    /// The copy's array position on each node of `replica_nodes` (parallel
    /// vector) — position-addressed recovery needs the crashed layout.
    pub replica_positions: Vec<u32>,
    /// Mirror nodes ordered by mirror ID (lowest surviving recovers, §5.3.1).
    pub mirror_nodes: Vec<NodeId>,
}

impl VcMeta {
    /// The recorded position of this vertex's copy on `node`.
    pub fn replica_position_on(&self, node: NodeId) -> Option<u32> {
        self.replica_nodes
            .iter()
            .position(|&n| n == node)
            .map(|i| self.replica_positions[i])
    }

    /// Removes `node` from the replica/mirror location tables (it crashed).
    pub fn purge_node(&mut self, node: NodeId) {
        if let Some(i) = self.replica_nodes.iter().position(|&n| n == node) {
            self.replica_nodes.remove(i);
            self.replica_positions.remove(i);
        }
        self.mirror_nodes.retain(|&n| n != node);
    }

    /// Registers (or re-registers) a copy of this vertex at `node`/`pos`,
    /// keeping `replica_nodes` sorted.
    pub fn register_replica(&mut self, node: NodeId, pos: u32) {
        if let Some(i) = self.replica_nodes.iter().position(|&n| n == node) {
            self.replica_positions[i] = pos;
            return;
        }
        let i = self.replica_nodes.partition_point(|&n| n < node);
        self.replica_nodes.insert(i, node);
        self.replica_positions.insert(i, pos);
    }
}

impl MemSize for VcMeta {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<VcMeta>()
            + self.replica_nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.replica_positions.capacity() * std::mem::size_of::<u32>()
            + self.mirror_nodes.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// One local vertex copy in a vertex-cut partition.
#[derive(Debug, Clone, PartialEq)]
pub struct VcVertex<V> {
    /// Global vertex ID.
    pub vid: Vid,
    /// Role of this copy.
    pub kind: CopyKind,
    /// The node mastering this vertex.
    pub master_node: NodeId,
    /// Current committed value.
    pub value: V,
    /// Full state for recovery (masters and mirrors).
    pub meta: Option<Box<VcMeta>>,
}

impl<V> VcVertex<V> {
    /// Whether this copy is the authoritative master.
    pub fn is_master(&self) -> bool {
        self.kind == CopyKind::Master
    }
}

impl<V: MemSize> MemSize for VcVertex<V> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<VcVertex<V>>()
            + self.value.heap_bytes()
            + self.meta.as_ref().map_or(0, |m| m.mem_bytes())
    }
}

/// One locally owned edge, endpoints as local positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcEdge {
    /// Local position of the source copy.
    pub src: u32,
    /// Local position of the target copy.
    pub dst: u32,
    /// Edge weight.
    pub weight: f32,
}

impl MemSize for VcEdge {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<VcEdge>()
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

/// One node's local partition under vertex-cut: the edges it owns plus a
/// copy of every adjacent vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct VcLocalGraph<V> {
    /// The hosting node.
    pub node: NodeId,
    /// All local copies, indexed by position.
    pub verts: Vec<VcVertex<V>>,
    /// Global-ID → position index.
    pub index: PosIndex,
    /// Locally owned edges.
    pub edges: Vec<VcEdge>,
}

impl<V> VcLocalGraph<V> {
    /// Creates an empty local graph for `node`.
    pub fn empty(node: NodeId) -> Self {
        VcLocalGraph {
            node,
            verts: Vec::new(),
            index: PosIndex::new(),
            edges: Vec::new(),
        }
    }

    /// Position of `vid`'s local copy, if present.
    pub fn position(&self, vid: Vid) -> Option<u32> {
        self.index.get(vid)
    }

    /// Number of local copies.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether the partition holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Number of local masters.
    pub fn num_masters(&self) -> usize {
        self.verts.iter().filter(|v| v.is_master()).count()
    }

    /// Number of local replica copies (incl. mirrors).
    pub fn num_replicas(&self) -> usize {
        self.verts.len() - self.num_masters()
    }

    /// Inserts `vertex` at `pos`, growing the array with placeholder holes
    /// as needed (position-addressed Rebirth reconstruction).
    ///
    /// # Panics
    ///
    /// Panics if `pos` already holds a different vertex.
    pub fn insert_at(&mut self, pos: u32, vertex: VcVertex<V>)
    where
        V: Clone,
    {
        let p = pos as usize;
        while self.verts.len() <= p {
            self.verts.push(VcVertex {
                vid: Vid::new(u32::MAX),
                kind: CopyKind::Replica,
                master_node: self.node,
                value: vertex.value.clone(),
                meta: None,
            });
        }
        assert!(
            self.verts[p].vid == Vid::new(u32::MAX) || self.verts[p].vid == vertex.vid,
            "position {pos} already holds {}",
            self.verts[p].vid
        );
        self.index.insert(vertex.vid, pos);
        self.verts[p] = vertex;
    }

    /// Appends a copy of `vertex` if absent, returning its position.
    pub fn insert_or_position(&mut self, vertex: VcVertex<V>) -> u32 {
        if let Some(pos) = self.position(vertex.vid) {
            return pos;
        }
        let pos = self.verts.len() as u32;
        self.index.insert(vertex.vid, pos);
        self.verts.push(vertex);
        pos
    }

    /// Checks structural invariants (test/debug aid).
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn debug_validate(&self) {
        assert_eq!(self.index.len(), self.verts.len(), "index size mismatch");
        for (i, v) in self.verts.iter().enumerate() {
            assert_eq!(self.index.get(v.vid), Some(i as u32), "index mismatch");
            if v.is_master() {
                assert!(v.meta.is_some(), "master {} lacks full state", v.vid);
                assert_eq!(v.master_node, self.node);
            }
        }
        for e in &self.edges {
            assert!((e.src as usize) < self.verts.len(), "edge src out of range");
            assert!((e.dst as usize) < self.verts.len(), "edge dst out of range");
        }
    }
}

impl<V: MemSize> MemSize for VcLocalGraph<V> {
    fn mem_bytes(&self) -> usize {
        let verts: usize = std::mem::size_of::<Vec<VcVertex<V>>>()
            + self.verts.capacity() * std::mem::size_of::<VcVertex<V>>()
            + self
                .verts
                .iter()
                .map(|v| v.mem_bytes() - std::mem::size_of::<VcVertex<V>>())
                .sum::<usize>();
        let index = self.index.mem_bytes();
        let edges = std::mem::size_of::<Vec<VcEdge>>()
            + self.edges.capacity() * std::mem::size_of::<VcEdge>();
        std::mem::size_of::<NodeId>() + verts + index + edges
    }
}

/// Builds every node's [`VcLocalGraph`] from a vertex-cut placement and an
/// FT plan — copies for every adjacent vertex, locally owned edges, and
/// full-state metadata on masters and mirrors.
///
/// # Panics
///
/// Panics if the plan's vertex count disagrees with the graph, or a mirror
/// is placed on a node without a copy.
pub fn build_vertex_cut_graphs<P: VertexProgram>(
    g: &Graph,
    cut: &VertexCut,
    plan: &FtPlan,
    prog: &P,
    degrees: &Degrees,
) -> Vec<VcLocalGraph<P::Value>> {
    assert_eq!(plan.num_vertices(), g.num_vertices(), "plan size mismatch");
    let parts = cut.num_parts();
    let n = g.num_vertices();

    // 1. Copy sets: master ∪ edge-adjacency replicas ∪ extra FT replicas.
    let mut copies: Vec<Vec<Vid>> = vec![Vec::new(); parts];
    for i in 0..n {
        let v = Vid::from_index(i);
        copies[cut.master(v)].push(v);
        for &p in cut.replica_parts(v) {
            copies[p as usize].push(v);
        }
        for &node in &plan.extra_replicas[i] {
            copies[node.index()].push(v);
        }
    }
    let mut pos_maps: Vec<PosIndex> = Vec::with_capacity(parts);
    for list in &mut copies {
        list.sort_unstable();
        list.dedup();
        pos_maps.push(PosIndex::from_sorted_vids(list));
    }

    // 2. Vertex entries.
    let mut graphs: Vec<VcLocalGraph<P::Value>> = (0..parts)
        .map(|p| {
            let node = NodeId::from_index(p);
            let verts = copies[p]
                .iter()
                .map(|&v| {
                    let owner = NodeId::from_index(cut.master(v));
                    let kind = if owner == node {
                        CopyKind::Master
                    } else if plan.mirror[v.index()].contains(&node) {
                        CopyKind::Mirror
                    } else {
                        CopyKind::Replica
                    };
                    VcVertex {
                        vid: v,
                        kind,
                        master_node: owner,
                        value: prog.init(v, degrees),
                        meta: None,
                    }
                })
                .collect();
            VcLocalGraph {
                node,
                verts,
                index: pos_maps[p].clone(),
                edges: Vec::new(),
            }
        })
        .collect();

    // 3. Edges onto their owner parts.
    for (e, &p) in g.edges().iter().zip(cut.edge_owner()) {
        let p = p as usize;
        graphs[p].edges.push(VcEdge {
            src: pos_maps[p].at(e.src),
            dst: pos_maps[p].at(e.dst),
            weight: e.weight,
        });
    }

    // 4. Full state.
    for i in 0..n {
        let v = Vid::from_index(i);
        let owner = cut.master(v);
        let mut replica_nodes: Vec<NodeId> = cut
            .replica_parts(v)
            .iter()
            .map(|&p| NodeId::new(p))
            .collect();
        for &extra in &plan.extra_replicas[i] {
            if !replica_nodes.contains(&extra) {
                replica_nodes.push(extra);
            }
        }
        replica_nodes.sort_unstable();
        let replica_positions: Vec<u32> = replica_nodes
            .iter()
            .map(|n| pos_maps[n.index()].at(v))
            .collect();
        let mirror_nodes = plan.mirror[i].clone();
        for m in &mirror_nodes {
            assert!(
                replica_nodes.contains(m),
                "mirror of {v} on {m} has no copy there"
            );
        }
        let meta = Box::new(VcMeta {
            master_pos: pos_maps[owner].at(v),
            replica_nodes,
            replica_positions,
            mirror_nodes: mirror_nodes.clone(),
        });
        let mpos = pos_maps[owner].at(v) as usize;
        graphs[owner].verts[mpos].meta = Some(meta.clone());
        for m in &mirror_nodes {
            let pos = pos_maps[m.index()].at(v) as usize;
            graphs[m.index()].verts[pos].meta = Some(meta.clone());
        }
    }

    graphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;
    use imitator_partition::{RandomVertexCut, VertexCutPartitioner};

    struct Noop;
    impl VertexProgram for Noop {
        type Value = u32;
        type Accum = u32;
        fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
            vid.raw()
        }
        fn gather(&self, _w: f32, src: &u32) -> u32 {
            *src
        }
        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(&self, _v: Vid, old: &u32, _acc: Option<u32>, _d: &Degrees) -> u32 {
            *old
        }
        fn scatter(&self, _v: Vid, _old: &u32, _new: &u32) -> bool {
            false
        }
    }

    #[test]
    fn all_edges_land_once() {
        let g = gen::power_law(500, 2.0, 6, 31);
        let cut = RandomVertexCut.partition(&g, 5);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &Noop, &degrees);
        let total: usize = lgs.iter().map(|lg| lg.edges.len()).sum();
        assert_eq!(total, g.num_edges());
        for lg in &lgs {
            lg.debug_validate();
        }
    }

    #[test]
    fn masters_unique_and_replicas_match_cut() {
        let g = gen::power_law(400, 2.0, 6, 33);
        let cut = RandomVertexCut.partition(&g, 4);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &Noop, &degrees);
        let masters: usize = lgs.iter().map(VcLocalGraph::num_masters).sum();
        assert_eq!(masters, g.num_vertices());
        let copies: usize = lgs.iter().map(VcLocalGraph::len).sum();
        let expected: usize = g.vertices().map(|v| 1 + cut.replica_parts(v).len()).sum();
        assert_eq!(copies, expected);
    }

    #[test]
    fn edge_endpoints_present_locally() {
        let g = gen::power_law(300, 2.0, 5, 35);
        let cut = RandomVertexCut.partition(&g, 6);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &Noop, &degrees);
        for lg in &lgs {
            for e in &lg.edges {
                assert!((e.src as usize) < lg.verts.len());
                assert!((e.dst as usize) < lg.verts.len());
            }
        }
    }

    #[test]
    fn insert_or_position_is_idempotent() {
        let mut lg: VcLocalGraph<u32> = VcLocalGraph::empty(NodeId::new(0));
        let mk = |vid: u32| VcVertex {
            vid: Vid::new(vid),
            kind: CopyKind::Replica,
            master_node: NodeId::new(1),
            value: 0,
            meta: None,
        };
        let p1 = lg.insert_or_position(mk(5));
        let p2 = lg.insert_or_position(mk(5));
        assert_eq!(p1, p2);
        assert_eq!(lg.len(), 1);
    }
}

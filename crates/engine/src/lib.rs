//! Graph-parallel engine substrate (the Cyclops / PowerLyra role).
//!
//! This crate provides the *mechanism* of a replica-based BSP graph engine:
//!
//! * [`VertexProgram`] — the gather/combine/apply/scatter vertex-centric
//!   programming model shared by both engines ("think as a vertex", §1);
//! * [`EcLocalGraph`] — a node's local partition under **edge-cut**
//!   (Cyclops model, §2.1): masters co-located with all their edges, plus
//!   local replicas of remote vertices for local-access semantics;
//! * [`VcLocalGraph`] — a node's local partition under **vertex-cut**
//!   (PowerLyra model): locally owned edges plus copies of every vertex
//!   adjacent to them;
//! * [`FtPlan`] — the fault-tolerance placement (which replica is the
//!   full-state *mirror*, where extra FT replicas go, which vertices are
//!   *selfish*); computed by the `imitator` crate's policy algorithms (§4)
//!   and consumed by the builders here;
//! * pure, single-node compute steps ([`ec_compute`], [`ec_commit`],
//!   [`vc_partial_gather`], …) that the distributed runner in the
//!   `imitator` crate drives via the simulated cluster.
//!
//! The *policy* — Algorithm 1's execution flow, checkpointing, replica
//! maintenance and recovery — lives in the `imitator` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compute;
mod ecut;
mod ftplan;
mod par;
mod pool;
mod program;
mod vcut;

pub use compute::{
    ec_commit, ec_compute, ec_compute_scan, vc_apply, vc_commit, vc_partial_gather, CommitStats,
    MasterUpdate,
};
pub use ecut::{build_edge_cut_graphs, CopyKind, EcLocalGraph, EcVertex, MasterMeta, RemoteEdge};
pub use ftplan::FtPlan;
pub use par::{
    chunk_ranges, ec_compute_par, vc_apply_par, vc_partial_gather_par, weighted_ranges,
    VcGatherIndex,
};
pub use pool::{ec_compute_chunks, vc_apply_chunks, vc_gather_chunks, InOrder, WorkerPool};
pub use program::{Degrees, VertexProgram};
pub use vcut::{build_vertex_cut_graphs, VcEdge, VcLocalGraph, VcMeta, VcVertex};

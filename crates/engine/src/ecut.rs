//! Edge-cut local graphs (the Cyclops runtime representation).

use imitator_cluster::NodeId;
use imitator_graph::{Graph, PosIndex, Vid};
use imitator_metrics::MemSize;
use imitator_partition::EdgeCut;

use crate::ftplan::FtPlan;
use crate::program::{Degrees, VertexProgram};

/// The role of a local vertex copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// The authoritative copy; co-located with all of the vertex's edges.
    Master,
    /// A computation replica providing local read access to the value.
    Replica,
    /// A full-state replica (§4.2) able to recover its master — carries
    /// [`MasterMeta`]. Extra FT replicas (§4.1) are always mirrors.
    Mirror,
}

/// An out-edge whose consumer (target master) lives on another node.
///
/// The position is the target's array index on its owner — the *enhanced
/// edge information* of §5.1.2 that makes reconstruction position-addressed
/// and lock-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteEdge {
    /// The target vertex.
    pub target: Vid,
    /// The node mastering the target.
    pub node: NodeId,
    /// The target's array position on that node.
    pub pos: u32,
}

/// The full state a master shares with its mirrors (§4.2).
///
/// Static fields, replicated once during graph loading: everything needed to
/// rebuild the master (and any of its replicas) *at the same array
/// positions* on a replacement node, plus the replica-location table that
/// recovery consults to find what was lost.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterMeta {
    /// The master's array position on its owner node.
    pub master_pos: u32,
    /// Every node holding a replica of this vertex (computation replicas,
    /// mirrors, and extra FT replicas), excluding the owner. Sorted.
    pub replica_nodes: Vec<NodeId>,
    /// The array position of the replica copy on each node of
    /// `replica_nodes` (parallel vector) — position-addressed recovery of
    /// lost replicas needs the crashed node's layout (§5.1.2).
    pub replica_positions: Vec<u32>,
    /// The mirror nodes, ordered by mirror ID: on failure the surviving
    /// mirror with the lowest ID recovers the master without any election
    /// traffic (§5.3.1).
    pub mirror_nodes: Vec<NodeId>,
    /// The master's in-edges in owner-local `(source position, weight)`
    /// form (edge-cut replicates edges into the mirror's full state, §4.3).
    pub in_edges_owner: Vec<(u32, f32)>,
    /// Global source IDs of the in-edges (parallel to `in_edges_owner`):
    /// Migration rebuilds the promoted master's edges on a *different* node,
    /// where the owner-local positions mean nothing (§5.2.1).
    pub in_edge_srcs: Vec<Vid>,
    /// Owner-local positions of out-neighbours mastered on the owner.
    pub out_local_owner: Vec<u32>,
    /// Out-edges whose consumer is mastered remotely; grouped by node these
    /// give each replica's local out-edge lists on that node.
    pub out_remote: Vec<RemoteEdge>,
}

impl MasterMeta {
    /// Owner-local positions this vertex's replica on `node` feeds
    /// (used to rebuild a replica's `out_local` during recovery).
    pub fn replica_out_local_on(&self, node: NodeId) -> Vec<u32> {
        self.out_remote
            .iter()
            .filter(|r| r.node == node)
            .map(|r| r.pos)
            .collect()
    }

    /// The recorded position of this vertex's replica copy on `node`.
    pub fn replica_position_on(&self, node: NodeId) -> Option<u32> {
        self.replica_nodes
            .iter()
            .position(|&n| n == node)
            .map(|i| self.replica_positions[i])
    }

    /// Removes `node` from the replica/mirror location tables (it crashed).
    pub fn purge_node(&mut self, node: NodeId) {
        if let Some(i) = self.replica_nodes.iter().position(|&n| n == node) {
            self.replica_nodes.remove(i);
            self.replica_positions.remove(i);
        }
        self.mirror_nodes.retain(|&n| n != node);
    }

    /// Registers (or re-registers) a replica copy of this vertex at
    /// `node`/`pos`, keeping `replica_nodes` sorted.
    pub fn register_replica(&mut self, node: NodeId, pos: u32) {
        if let Some(i) = self.replica_nodes.iter().position(|&n| n == node) {
            self.replica_positions[i] = pos;
            return;
        }
        let i = self.replica_nodes.partition_point(|&n| n < node);
        self.replica_nodes.insert(i, node);
        self.replica_positions.insert(i, pos);
    }
}

impl MemSize for MasterMeta {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<MasterMeta>()
            + self.replica_nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.replica_positions.capacity() * std::mem::size_of::<u32>()
            + self.mirror_nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.in_edges_owner.capacity() * std::mem::size_of::<(u32, f32)>()
            + self.in_edge_srcs.capacity() * std::mem::size_of::<Vid>()
            + self.out_local_owner.capacity() * std::mem::size_of::<u32>()
            + self.out_remote.capacity() * std::mem::size_of::<RemoteEdge>()
    }
}

/// One local vertex copy in an edge-cut partition.
#[derive(Debug, Clone, PartialEq)]
pub struct EcVertex<V> {
    /// Global vertex ID.
    pub vid: Vid,
    /// Role of this copy.
    pub kind: CopyKind,
    /// The node mastering this vertex.
    pub master_node: NodeId,
    /// Current committed value.
    pub value: V,
    /// Whether the vertex computes this iteration (meaningful on masters).
    pub active: bool,
    /// Activation staged for the next iteration (set during commit).
    pub next_active: bool,
    /// The last scatter bit synchronised from the master (mirrors record it
    /// for activation replay at recovery, §5.1.3).
    pub last_activate: bool,
    /// In-edges as `(local source position, weight)` (masters only).
    pub in_edges: Vec<(u32, f32)>,
    /// Local positions of consumers this copy feeds (activation targets).
    pub out_local: Vec<u32>,
    /// Full state for recovery (masters and mirrors).
    pub meta: Option<Box<MasterMeta>>,
}

impl<V> EcVertex<V> {
    /// Whether this copy is the authoritative master.
    pub fn is_master(&self) -> bool {
        self.kind == CopyKind::Master
    }

    /// Whether this copy carries full state (master or mirror).
    pub fn has_full_state(&self) -> bool {
        self.meta.is_some()
    }
}

impl<V: MemSize> MemSize for EcVertex<V> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<EcVertex<V>>()
            + self.value.heap_bytes()
            + self.in_edges.capacity() * std::mem::size_of::<(u32, f32)>()
            + self.out_local.capacity() * std::mem::size_of::<u32>()
            + self.meta.as_ref().map_or(0, |m| m.mem_bytes())
    }
}

/// One node's local partition under edge-cut.
///
/// Vertices live in a position-stable array: recovery reproduces a crashed
/// node's array layout exactly, so edges (stored as positions) stay valid —
/// the paper's lock-free, parallel reconstruction (§5.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct EcLocalGraph<V> {
    /// The hosting node.
    pub node: NodeId,
    /// All local copies, indexed by position.
    pub verts: Vec<EcVertex<V>>,
    /// Global-ID → position index.
    pub index: PosIndex,
    /// Sorted positions of currently active masters (the sparse activation
    /// frontier). Canonical invariant: always equal to the ascending list of
    /// positions `p` with `verts[p].is_master() && verts[p].active`, so
    /// compute and commit cost O(frontier + touched) instead of O(|verts|).
    /// Recovery paths that set `active` bits directly must call
    /// [`EcLocalGraph::rebuild_active_frontier`] before the next superstep.
    pub active_frontier: Vec<u32>,
}

impl<V> EcLocalGraph<V> {
    /// Creates an empty local graph for `node`.
    pub fn empty(node: NodeId) -> Self {
        EcLocalGraph {
            node,
            verts: Vec::new(),
            index: PosIndex::new(),
            active_frontier: Vec::new(),
        }
    }

    /// Position of `vid`'s local copy, if present.
    pub fn position(&self, vid: Vid) -> Option<u32> {
        self.index.get(vid)
    }

    /// Number of local copies.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Iterates local master positions.
    pub fn master_positions(&self) -> impl Iterator<Item = u32> + '_ {
        self.verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_master())
            .map(|(i, _)| i as u32)
    }

    /// Number of local masters.
    pub fn num_masters(&self) -> usize {
        self.verts.iter().filter(|v| v.is_master()).count()
    }

    /// Number of local replica copies (incl. mirrors).
    pub fn num_replicas(&self) -> usize {
        self.verts.len() - self.num_masters()
    }

    /// Count of currently active masters.
    pub fn active_masters(&self) -> usize {
        self.verts
            .iter()
            .filter(|v| v.is_master() && v.active)
            .count()
    }

    /// Recomputes [`EcLocalGraph::active_frontier`] from the `active` bits.
    ///
    /// O(|verts|); only needed after bulk mutations that bypass
    /// `ec_commit` (graph construction, snapshot restore, recovery).
    pub fn rebuild_active_frontier(&mut self) {
        self.active_frontier.clear();
        for (i, v) in self.verts.iter().enumerate() {
            if v.is_master() && v.active {
                self.active_frontier.push(i as u32);
            }
        }
    }

    /// Inserts `vertex` at `pos`, growing the array as needed (recovery
    /// path: position-addressed, no reindexing of existing entries).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is already occupied by a different vertex.
    pub fn insert_at(&mut self, pos: u32, vertex: EcVertex<V>)
    where
        V: Clone,
    {
        let p = pos as usize;
        if p >= self.verts.len() {
            // Holes are filled by later recovery messages; a hole that
            // survives recovery would indicate a protocol bug and is caught
            // by `debug_validate`.
            self.verts.reserve(p + 1 - self.verts.len());
            while self.verts.len() <= p {
                self.verts.push(EcVertex {
                    vid: Vid::new(u32::MAX),
                    kind: CopyKind::Replica,
                    master_node: self.node,
                    value: vertex.value.clone(),
                    active: false,
                    next_active: false,
                    last_activate: false,
                    in_edges: Vec::new(),
                    out_local: Vec::new(),
                    meta: None,
                });
            }
        }
        assert!(
            self.verts[p].vid == Vid::new(u32::MAX) || self.verts[p].vid == vertex.vid,
            "position {pos} already holds {}",
            self.verts[p].vid
        );
        self.index.insert(vertex.vid, pos);
        self.verts[p] = vertex;
    }

    /// Checks structural invariants (test/debug aid): index agrees with the
    /// array, no placeholder holes remain, and edge positions are in range.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn debug_validate(&self) {
        for (i, v) in self.verts.iter().enumerate() {
            assert_ne!(v.vid, Vid::new(u32::MAX), "hole at position {i}");
            assert_eq!(
                self.index.get(v.vid),
                Some(i as u32),
                "index mismatch at {i}"
            );
            for &(src, _) in &v.in_edges {
                assert!(
                    (src as usize) < self.verts.len(),
                    "in-edge src out of range"
                );
            }
            for &t in &v.out_local {
                assert!(
                    (t as usize) < self.verts.len(),
                    "out-edge target out of range"
                );
                assert!(
                    self.verts[t as usize].is_master(),
                    "activation target at {t} is not a master"
                );
            }
            if v.is_master() {
                assert!(v.meta.is_some(), "master {} lacks full state", v.vid);
            }
        }
        assert_eq!(self.index.len(), self.verts.len(), "index size mismatch");
        let expected: Vec<u32> = self
            .verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_master() && v.active)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(
            self.active_frontier, expected,
            "active frontier out of sync with active bits"
        );
    }
}

impl<V: MemSize> MemSize for EcLocalGraph<V> {
    fn mem_bytes(&self) -> usize {
        let verts: usize = std::mem::size_of::<Vec<EcVertex<V>>>()
            + self.verts.capacity() * std::mem::size_of::<EcVertex<V>>()
            + self
                .verts
                .iter()
                .map(|v| v.mem_bytes() - std::mem::size_of::<EcVertex<V>>())
                .sum::<usize>();
        let index = self.index.mem_bytes();
        let frontier = self.active_frontier.capacity() * std::mem::size_of::<u32>();
        std::mem::size_of::<NodeId>() + verts + index + frontier
    }
}

/// Builds every node's [`EcLocalGraph`] from a partitioning and an FT plan.
///
/// This performs, centrally and deterministically, what the distributed
/// loading phase of §4 performs with message exchanges: replica creation,
/// mirror designation with full-state replication, extra-FT-replica
/// creation, and the position/location exchange that enables
/// position-addressed recovery.
///
/// # Panics
///
/// Panics if the plan's vertex count disagrees with the graph, or if a
/// mirror is placed on a node without a copy (plan bug).
#[allow(clippy::needless_range_loop)] // loops pair the index with Vid::from_index(i)
pub fn build_edge_cut_graphs<P: VertexProgram>(
    g: &Graph,
    cut: &EdgeCut,
    plan: &FtPlan,
    prog: &P,
    degrees: &Degrees,
) -> Vec<EcLocalGraph<P::Value>> {
    assert_eq!(plan.num_vertices(), g.num_vertices(), "plan size mismatch");
    let parts = cut.num_parts();
    let n = g.num_vertices();

    // 1. Copy sets per node: masters ∪ computation replicas ∪ extra FT replicas.
    let mut copies: Vec<Vec<Vid>> = vec![Vec::new(); parts];
    for i in 0..n {
        let v = Vid::from_index(i);
        copies[cut.owner(v)].push(v);
        for &p in cut.replica_parts(v) {
            copies[p as usize].push(v);
        }
        for &node in &plan.extra_replicas[i] {
            copies[node.index()].push(v);
        }
    }

    // 2. Deterministic positions: sorted by vid on each node.
    let mut pos_maps: Vec<PosIndex> = Vec::with_capacity(parts);
    for list in &mut copies {
        list.sort_unstable();
        list.dedup();
        pos_maps.push(PosIndex::from_sorted_vids(list));
    }

    // 3. Vertex entries.
    let mut graphs: Vec<EcLocalGraph<P::Value>> = (0..parts)
        .map(|p| {
            let node = NodeId::from_index(p);
            let verts = copies[p]
                .iter()
                .map(|&v| {
                    let owner = NodeId::from_index(cut.owner(v));
                    let kind = if owner == node {
                        CopyKind::Master
                    } else if plan.mirror[v.index()].contains(&node) {
                        CopyKind::Mirror
                    } else {
                        CopyKind::Replica
                    };
                    EcVertex {
                        vid: v,
                        kind,
                        master_node: owner,
                        value: prog.init(v, degrees),
                        active: kind == CopyKind::Master && prog.initially_active(v),
                        next_active: false,
                        last_activate: false,
                        in_edges: Vec::new(),
                        out_local: Vec::new(),
                        meta: None,
                    }
                })
                .collect();
            EcLocalGraph {
                node,
                verts,
                index: pos_maps[p].clone(),
                active_frontier: Vec::new(),
            }
        })
        .collect();

    // 4. Edges: every edge lives on the consumer's owner; the producer's
    //    local copy there feeds the consumer.
    for e in g.edges() {
        let p = cut.owner(e.dst);
        let dst_pos = pos_maps[p].at(e.dst) as usize;
        let src_pos = pos_maps[p].at(e.src);
        graphs[p].verts[dst_pos].in_edges.push((src_pos, e.weight));
        graphs[p].verts[src_pos as usize]
            .out_local
            .push(dst_pos as u32);
    }

    // 5. Full state (masters + mirrors). One pass over edges collects each
    //    vertex's remote out-edges (O(|E|), not O(|V|·|E|)).
    let mut out_remote_by_src: Vec<Vec<RemoteEdge>> = vec![Vec::new(); n];
    for e in g.edges() {
        let owner = cut.owner(e.src);
        let consumer = cut.owner(e.dst);
        if consumer != owner {
            let node = NodeId::from_index(consumer);
            out_remote_by_src[e.src.index()].push(RemoteEdge {
                target: e.dst,
                node,
                pos: pos_maps[consumer].at(e.dst),
            });
        }
    }
    for i in 0..n {
        let v = Vid::from_index(i);
        let owner = cut.owner(v);
        let master_pos = pos_maps[owner].at(v);
        let mut replica_nodes: Vec<NodeId> = cut
            .replica_parts(v)
            .iter()
            .map(|&p| NodeId::new(p))
            .collect();
        for &extra in &plan.extra_replicas[i] {
            if !replica_nodes.contains(&extra) {
                replica_nodes.push(extra);
            }
        }
        replica_nodes.sort_unstable();
        let replica_positions: Vec<u32> = replica_nodes
            .iter()
            .map(|n| pos_maps[n.index()].at(v))
            .collect();
        let mirror_nodes = plan.mirror[i].clone();
        for m in &mirror_nodes {
            assert!(
                replica_nodes.contains(m),
                "mirror of {v} on {m} has no copy there"
            );
        }
        let master = &graphs[owner].verts[master_pos as usize];
        let in_edge_srcs: Vec<Vid> = master
            .in_edges
            .iter()
            .map(|&(src, _)| graphs[owner].verts[src as usize].vid)
            .collect();
        let out_remote = std::mem::take(&mut out_remote_by_src[i]);
        let meta = MasterMeta {
            master_pos,
            replica_nodes,
            replica_positions,
            mirror_nodes: mirror_nodes.clone(),
            in_edges_owner: master.in_edges.clone(),
            in_edge_srcs,
            out_local_owner: master.out_local.clone(),
            out_remote,
        };
        let boxed = Box::new(meta);
        graphs[owner].verts[master_pos as usize].meta = Some(boxed.clone());
        for m in &mirror_nodes {
            let pos = pos_maps[m.index()].at(v) as usize;
            graphs[m.index()].verts[pos].meta = Some(boxed.clone());
        }
    }

    for lg in &mut graphs {
        lg.rebuild_active_frontier();
    }

    graphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;
    use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};

    struct Count;
    impl VertexProgram for Count {
        type Value = u64;
        type Accum = u64;
        fn init(&self, _v: Vid, _d: &Degrees) -> u64 {
            1
        }
        fn gather(&self, _w: f32, src: &u64) -> u64 {
            *src
        }
        fn combine(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn apply(&self, _v: Vid, old: &u64, acc: Option<u64>, _d: &Degrees) -> u64 {
            acc.unwrap_or(*old)
        }
        fn scatter(&self, _v: Vid, old: &u64, new: &u64) -> bool {
            old != new
        }
    }

    fn build(g: &imitator_graph::Graph, parts: usize) -> (EdgeCut, Vec<EcLocalGraph<u64>>) {
        let cut = HashEdgeCut.partition(g, parts);
        let plan = FtPlan::none(g.num_vertices());
        let degrees = Degrees::of(g);
        let lgs = build_edge_cut_graphs(g, &cut, &plan, &Count, &degrees);
        (cut, lgs)
    }

    #[test]
    fn every_vertex_mastered_once() {
        let g = gen::power_law(800, 2.0, 6, 3);
        let (_cut, lgs) = build(&g, 4);
        let masters: usize = lgs.iter().map(EcLocalGraph::num_masters).sum();
        assert_eq!(masters, g.num_vertices());
        for lg in &lgs {
            lg.debug_validate();
        }
    }

    #[test]
    fn masters_hold_all_in_edges() {
        let g = gen::power_law(500, 2.0, 5, 7);
        let (cut, lgs) = build(&g, 3);
        let mut counted = 0usize;
        for e in g.edges() {
            let lg = &lgs[cut.owner(e.dst)];
            let dst = lg.position(e.dst).unwrap() as usize;
            let src = lg.position(e.src).unwrap();
            assert!(lg.verts[dst].in_edges.iter().any(|&(s, _)| s == src));
            counted += 1;
        }
        let total: usize = lgs
            .iter()
            .flat_map(|lg| lg.verts.iter().map(|v| v.in_edges.len()))
            .sum();
        assert_eq!(total, counted);
    }

    #[test]
    fn out_local_targets_are_masters() {
        let g = gen::power_law(500, 2.0, 5, 9);
        let (_cut, lgs) = build(&g, 4);
        for lg in &lgs {
            for v in &lg.verts {
                for &t in &v.out_local {
                    assert!(lg.verts[t as usize].is_master());
                }
            }
        }
    }

    #[test]
    fn meta_positions_agree_across_nodes() {
        let g = gen::power_law(400, 2.0, 6, 11);
        let (cut, lgs) = build(&g, 4);
        for lg in &lgs {
            for v in lg.verts.iter().filter(|v| v.is_master()) {
                let meta = v.meta.as_ref().unwrap();
                assert_eq!(meta.master_pos, lg.position(v.vid).unwrap());
                for r in &meta.out_remote {
                    let remote = &lgs[r.node.index()];
                    assert_eq!(remote.position(r.target), Some(r.pos));
                    assert!(remote.verts[r.pos as usize].is_master());
                }
                // replica_nodes point at real copies
                for n in &meta.replica_nodes {
                    assert!(lgs[n.index()].position(v.vid).is_some());
                    assert_ne!(*n, v.master_node);
                }
                assert_eq!(cut.owner(v.vid), v.master_node.index());
            }
        }
    }

    #[test]
    fn mirrors_carry_full_state() {
        let g = gen::power_law(300, 2.0, 5, 13);
        let cut = HashEdgeCut.partition(&g, 3);
        let mut plan = FtPlan::none(g.num_vertices());
        // mirror every vertex that has a replica, on its first replica node
        for v in g.vertices() {
            if let Some(&first) = cut.replica_parts(v).first() {
                plan.mirror[v.index()] = vec![NodeId::new(first)];
            }
        }
        let degrees = Degrees::of(&g);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &Count, &degrees);
        let mut mirrors = 0;
        for lg in &lgs {
            for v in &lg.verts {
                if v.kind == CopyKind::Mirror {
                    mirrors += 1;
                    let meta = v.meta.as_ref().unwrap();
                    // mirror's meta equals the master's meta
                    let owner = &lgs[v.master_node.index()];
                    let mpos = owner.position(v.vid).unwrap() as usize;
                    assert_eq!(owner.verts[mpos].meta.as_deref(), Some(meta.as_ref()));
                }
            }
        }
        assert!(mirrors > 0);
    }

    #[test]
    fn extra_ft_replicas_create_copies() {
        let g = gen::from_pairs(3, &[(0, 1), (1, 0)]); // v2 isolated
        let cut = HashEdgeCut.partition(&g, 2);
        let v2 = Vid::new(2);
        let other = NodeId::from_index(1 - cut.owner(v2));
        let mut plan = FtPlan::none(3);
        plan.mirror[2] = vec![other];
        plan.extra_replicas[2] = vec![other];
        let degrees = Degrees::of(&g);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &Count, &degrees);
        let lg = &lgs[other.index()];
        let pos = lg.position(v2).expect("extra replica exists");
        assert_eq!(lg.verts[pos as usize].kind, CopyKind::Mirror);
        assert!(lg.verts[pos as usize].out_local.is_empty());
    }

    #[test]
    fn insert_at_reproduces_layout() {
        let mut lg: EcLocalGraph<u64> = EcLocalGraph::empty(NodeId::new(0));
        let mk = |vid: u32| EcVertex {
            vid: Vid::new(vid),
            kind: CopyKind::Master,
            master_node: NodeId::new(0),
            value: 0u64,
            active: false,
            next_active: false,
            last_activate: false,
            in_edges: Vec::new(),
            out_local: Vec::new(),
            meta: None,
        };
        lg.insert_at(2, mk(20));
        lg.insert_at(0, mk(5));
        lg.insert_at(1, mk(11));
        assert_eq!(lg.position(Vid::new(20)), Some(2));
        assert_eq!(lg.position(Vid::new(5)), Some(0));
        assert_eq!(lg.len(), 3);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn insert_at_conflict_panics() {
        let mut lg: EcLocalGraph<u64> = EcLocalGraph::empty(NodeId::new(0));
        let mk = |vid: u32| EcVertex {
            vid: Vid::new(vid),
            kind: CopyKind::Master,
            master_node: NodeId::new(0),
            value: 0u64,
            active: false,
            next_active: false,
            last_activate: false,
            in_edges: Vec::new(),
            out_local: Vec::new(),
            meta: None,
        };
        lg.insert_at(0, mk(1));
        lg.insert_at(0, mk(2));
    }
}

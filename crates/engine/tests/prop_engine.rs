//! Property tests of the engine substrate: local-graph construction
//! invariants over arbitrary graphs, partitionings and FT plans, and
//! equivalence of the two engines' compute semantics against a sequential
//! reference.

use proptest::prelude::*;

use imitator_cluster::NodeId;
use imitator_engine::{
    build_edge_cut_graphs, build_vertex_cut_graphs, ec_commit, ec_compute, vc_apply, vc_commit,
    vc_partial_gather, CopyKind, Degrees, FtPlan, VertexProgram,
};
use imitator_graph::{gen, Graph, Vid};
use imitator_partition::{
    EdgeCutPartitioner, HashEdgeCut, HybridVertexCut, RandomVertexCut, VertexCutPartitioner,
};

struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..60,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..200),
    )
        .prop_map(|(n, pairs)| {
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            gen::from_pairs(n, &pairs)
        })
}

/// A plan with K mirrors per vertex, built naively for testing (first K
/// replica locations, extras round-robin).
fn naive_plan(g: &Graph, cut: &imitator_partition::EdgeCut, k: usize) -> FtPlan {
    let parts = cut.num_parts();
    let mut plan = FtPlan::none(g.num_vertices());
    for v in g.vertices() {
        let mut mirrors: Vec<NodeId> = cut
            .replica_parts(v)
            .iter()
            .take(k)
            .map(|&p| NodeId::new(p))
            .collect();
        let mut candidate = 0usize;
        while mirrors.len() < k {
            let node = NodeId::from_index(candidate % parts);
            candidate += 1;
            if node.index() == cut.owner(v) || mirrors.contains(&node) {
                continue;
            }
            plan.extra_replicas[v.index()].push(node);
            mirrors.push(node);
        }
        plan.mirror[v.index()] = mirrors;
    }
    plan
}

fn min_label_reference(g: &Graph, iters: usize) -> Vec<u32> {
    let mut vals: Vec<u32> = (0..g.num_vertices() as u32).collect();
    for _ in 0..iters {
        let prev = vals.clone();
        for e in g.edges() {
            let s = prev[e.src.index()];
            if s < vals[e.dst.index()] {
                vals[e.dst.index()] = s;
            }
        }
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ec_builder_invariants_hold_with_ft_plans(
        (g, parts, k) in (arb_graph(), 2usize..6, 0usize..3)
    ) {
        prop_assume!(k < parts);
        let cut = HashEdgeCut.partition(&g, parts);
        let plan = if k == 0 {
            FtPlan::none(g.num_vertices())
        } else {
            naive_plan(&g, &cut, k)
        };
        let degrees = Degrees::of(&g);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        let mut masters = 0usize;
        let mut mirrors = 0usize;
        for lg in &lgs {
            lg.debug_validate();
            masters += lg.num_masters();
            mirrors += lg
                .verts
                .iter()
                .filter(|v| v.kind == CopyKind::Mirror)
                .count();
            // Every mirror carries meta identical to its master's.
            for v in &lg.verts {
                if v.kind == CopyKind::Mirror {
                    let owner = &lgs[v.master_node.index()];
                    let mpos = owner.position(v.vid).unwrap() as usize;
                    prop_assert_eq!(
                        v.meta.as_deref(),
                        owner.verts[mpos].meta.as_deref()
                    );
                }
            }
        }
        prop_assert_eq!(masters, g.num_vertices());
        if k > 0 {
            prop_assert_eq!(mirrors, g.num_vertices() * k);
        }
        // Total in-edges across nodes equals |E|.
        let in_edges: usize = lgs
            .iter()
            .flat_map(|lg| lg.verts.iter().map(|v| v.in_edges.len()))
            .sum();
        prop_assert_eq!(in_edges, g.num_edges());
    }

    #[test]
    fn vc_builder_invariants_hold(
        (g, parts, theta) in (arb_graph(), 2usize..6, 0usize..10)
    ) {
        let degrees = Degrees::of(&g);
        for cut in [
            RandomVertexCut.partition(&g, parts),
            HybridVertexCut::with_threshold(theta).partition(&g, parts),
        ] {
            let plan = FtPlan::none(g.num_vertices());
            let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
            for lg in &lgs {
                lg.debug_validate();
            }
            let masters: usize = lgs.iter().map(|lg| lg.num_masters()).sum();
            prop_assert_eq!(masters, g.num_vertices());
            let edges: usize = lgs.iter().map(|lg| lg.edges.len()).sum();
            prop_assert_eq!(edges, g.num_edges());
        }
    }

    /// Both engines, driven single-threaded to a fixpoint, agree with the
    /// sequential reference on arbitrary graphs.
    #[test]
    fn engines_match_sequential_reference((g, parts) in (arb_graph(), 1usize..5)) {
        let iters = g.num_vertices() + 2;
        let expected = min_label_reference(&g, iters);
        let degrees = Degrees::of(&g);
        let plan = FtPlan::none(g.num_vertices());

        // Edge-cut.
        let cut = HashEdgeCut.partition(&g, parts);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        for step in 0..iters as u64 {
            let all: Vec<_> = lgs
                .iter()
                .map(|lg| ec_compute(lg, &MinLabel, &degrees, step))
                .collect();
            let mut incoming: Vec<Vec<(u32, u32, bool)>> = vec![Vec::new(); parts];
            for (p, ups) in all.iter().enumerate() {
                for u in ups {
                    let v = &lgs[p].verts[u.local as usize];
                    for r in &v.meta.as_ref().unwrap().replica_nodes {
                        let pos = lgs[r.index()].position(v.vid).unwrap();
                        incoming[r.index()].push((pos, u.value, u.activate));
                    }
                }
            }
            let mut active = 0;
            for (p, (ups, inc)) in all.into_iter().zip(incoming).enumerate() {
                active += ec_commit(&mut lgs[p], &MinLabel, ups, inc).active_next;
            }
            if active == 0 {
                break;
            }
        }
        let mut got = vec![0u32; g.num_vertices()];
        for lg in &lgs {
            for v in lg.verts.iter().filter(|v| v.is_master()) {
                got[v.vid.index()] = v.value;
            }
        }
        prop_assert_eq!(&got, &expected, "edge-cut diverged");

        // Vertex-cut (dense).
        let cut = RandomVertexCut.partition(&g, parts);
        let mut lgs = build_vertex_cut_graphs(&g, &cut, &plan, &MinLabel, &degrees);
        for step in 0..iters as u64 {
            let partials: Vec<_> = lgs
                .iter()
                .map(|lg| vc_partial_gather(lg, &MinLabel))
                .collect();
            let mut acc: Vec<Vec<Option<u32>>> =
                lgs.iter().map(|lg| vec![None; lg.verts.len()]).collect();
            for (p, partial) in partials.into_iter().enumerate() {
                for (pos, a) in partial.into_iter().enumerate() {
                    let Some(a) = a else { continue };
                    let v = &lgs[p].verts[pos];
                    let owner = v.master_node.index();
                    let mpos = lgs[owner].position(v.vid).unwrap() as usize;
                    let slot = &mut acc[owner][mpos];
                    *slot = Some(match slot.take() {
                        None => a,
                        Some(x) => MinLabel.combine(x, a),
                    });
                }
            }
            let all: Vec<_> = lgs
                .iter()
                .zip(acc)
                .map(|(lg, a)| vc_apply(lg, &MinLabel, a, &degrees, step))
                .collect();
            let mut incoming: Vec<Vec<(u32, u32)>> = vec![Vec::new(); parts];
            for (p, ups) in all.iter().enumerate() {
                for u in ups {
                    let v = &lgs[p].verts[u.local as usize];
                    for r in &v.meta.as_ref().unwrap().replica_nodes {
                        let pos = lgs[r.index()].position(v.vid).unwrap();
                        incoming[r.index()].push((pos, u.value));
                    }
                }
            }
            let mut changed = 0;
            for (p, (ups, inc)) in all.into_iter().zip(incoming).enumerate() {
                changed += vc_commit(&mut lgs[p], ups, inc).changed;
            }
            if changed == 0 {
                break;
            }
        }
        let mut got = vec![0u32; g.num_vertices()];
        for lg in &lgs {
            for v in lg.verts.iter().filter(|v| v.is_master()) {
                got[v.vid.index()] = v.value;
            }
        }
        prop_assert_eq!(&got, &expected, "vertex-cut diverged");
    }
}

//! The model-generic superstep driver.
//!
//! The paper's contribution is **one** fault-tolerance protocol (FT
//! replicas, mirrors, Rebirth, Migration, checkpoint baseline) instantiated
//! over two computation models. This module holds everything the protocol
//! shares — the BSP main loop with failure detection and dispatch, standby
//! wake-up, sync-record batching with redundant-sync suppression
//! staging/commit, checkpoint scheduling, and run assembly — parameterized
//! by a [`ComputeModel`]. The model contributes only what genuinely differs:
//! the superstep body (fused compute vs distributed gather-apply), codec
//! entry points, and the reconstruction primitives the recovery state
//! machine (`recovery.rs`) composes.

use std::fmt::Debug;
use std::sync::Arc;
use std::time::{Duration, Instant};

use imitator_cluster::{
    BarrierOutcome, Cluster, Envelope, FailPoint, FailureInjector, FailurePlan, NodeCtx, NodeId,
    WireCodec,
};
use imitator_engine::{CopyKind, Degrees, FtPlan, InOrder, MasterUpdate, WorkerPool};
use imitator_graph::Vid;
use imitator_metrics::{CommKind, MemSize, Stopwatch};
use imitator_storage::codec::{Decode, Encode};
use imitator_storage::{epoch, Dfs, EpochKind};

use crate::msg::{ProtoMsg, ReplicaGrant, VertexSync};
use crate::plan::ReplicaMeta;
use crate::recovery::{self, Adoption, Mig, MigEnv};
use crate::report::RunReport;
use crate::rt::{merge_outcomes, NodeOutcome, NodeState};
use crate::{FtMode, RunConfig};

/// How long recovery waits for a peer's message before concluding the
/// protocol is wedged (a bug, not an injected failure).
pub(crate) const RECOVERY_PATIENCE: Duration = Duration::from_secs(30);

/// Under incremental checkpointing, every `FULL_EPOCH_PERIOD`-th epoch is a
/// self-contained full snapshot; the epochs between carry only the vertices
/// dirtied since the previous epoch. The periodic full epochs bound the
/// base+delta chain recovery must replay.
pub(crate) const FULL_EPOCH_PERIOD: u64 = 4;

/// The kind of checkpoint epoch `epoch` is — a pure function of the epoch
/// number, so every node (and every post-abort retry) independently agrees
/// without coordination. The first epoch of a run is always full.
pub(crate) fn ckpt_epoch_kind(epoch: u64, interval: u64, incremental: bool) -> EpochKind {
    if !incremental || (epoch / interval.max(1)) % FULL_EPOCH_PERIOD == 1 {
        EpochKind::Full
    } else {
        EpochKind::Delta
    }
}

/// The wire protocol a model speaks ([`ProtoMsg`] instantiated with its
/// associated types).
pub(crate) type Msg<M> = ProtoMsg<
    <M as ComputeModel>::Value,
    <M as ComputeModel>::Accum,
    <M as ComputeModel>::Entry,
    <M as ComputeModel>::Meta,
>;
pub(crate) type Ctx<M> = NodeCtx<Msg<M>>;
pub(crate) type St<M> = NodeState<Msg<M>>;

/// Immutable per-run state shared by every node thread.
pub(crate) struct Shared<M: ComputeModel> {
    pub model: M,
    pub degrees: Arc<Degrees>,
    pub plan: Arc<FtPlan>,
    pub owners: Arc<Vec<u32>>,
    pub injector: Arc<FailureInjector>,
    pub dfs: Dfs,
    pub cfg: RunConfig,
}

/// How one superstep ended.
pub(crate) enum StepOutcome {
    /// Committed; carries this node's activity count for the closing
    /// all-reduce barrier (active vertices for the sparse engine, changed
    /// masters for the dense one).
    Committed(u64),
    /// A barrier inside the superstep failed. The model has already undone
    /// its own staged state (dropped updates, suppression rollback); the
    /// driver stashes recovery traffic and runs the recovery state machine.
    Failed(Vec<NodeId>),
}

/// Node-indexed sync-batch scratch, allocated once per node and drained
/// every iteration (deterministic send order, no per-iteration hashing).
///
/// Staging is split from shipping so the pipelined driver can ship each
/// chunk's batch while later chunks still compute: `batches`/`batch_bytes`
/// hold the *unshipped* records, while the `tot_*` accumulators carry
/// whole-superstep per-destination totals that [`flush_sync_acct`] turns
/// into exactly one `comm`/`ft_comm` record per destination per superstep —
/// so logical comm accounting is invariant under chunking.
pub(crate) struct SyncBufs<V> {
    pub batches: Vec<Vec<VertexSync<V>>>,
    /// Accounted wire bytes of the unshipped batch, per destination.
    batch_bytes: Vec<u64>,
    /// Superstep totals, per destination (flushed at the tail fence).
    tot_entries: Vec<u64>,
    tot_bytes: Vec<u64>,
    tot_ft: Vec<u64>,
    /// Previous record's position per destination — the running base of the
    /// columnar frame's delta-encoded position column. Persists across
    /// chunk ships within one superstep (the whole superstep is accounted
    /// as one logical frame per destination) and resets at the accounting
    /// flush.
    prev_pos: Vec<u32>,
}

impl<V> SyncBufs<V> {
    pub(crate) fn new(num_nodes: usize) -> Self {
        SyncBufs {
            batches: (0..num_nodes).map(|_| Vec::new()).collect(),
            batch_bytes: vec![0; num_nodes],
            tot_entries: vec![0; num_nodes],
            tot_bytes: vec![0; num_nodes],
            tot_ft: vec![0; num_nodes],
            prev_pos: vec![0; num_nodes],
        }
    }
}

/// Uniform positional access to a model's local graph, so the recovery
/// state machine can read and rewrite vertex copies without knowing the
/// concrete vertex layout.
pub(crate) trait ModelGraph {
    /// The vertex value type.
    type Value;
    /// The full-state (master/mirror) metadata type.
    type Meta: ReplicaMeta;

    fn len(&self) -> usize;
    #[allow(dead_code)]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn position(&self, vid: Vid) -> Option<u32>;
    fn num_masters(&self) -> usize;
    fn vid(&self, pos: u32) -> Vid;
    fn kind(&self, pos: u32) -> CopyKind;
    fn set_kind(&mut self, pos: u32, kind: CopyKind);
    fn master_node(&self, pos: u32) -> NodeId;
    fn set_master_node(&mut self, pos: u32, node: NodeId);
    fn value(&self, pos: u32) -> &Self::Value;
    fn meta(&self, pos: u32) -> Option<&Self::Meta>;
    fn meta_mut(&mut self, pos: u32) -> Option<&mut Self::Meta>;
    fn set_meta(&mut self, pos: u32, meta: Box<Self::Meta>);
    fn is_master(&self, pos: u32) -> bool {
        self.kind(pos) == CopyKind::Master
    }
}

/// One computation model (edge-cut Cyclops or vertex-cut PowerLyra GAS),
/// plugged into the shared driver and recovery state machine.
///
/// Hooks with defaults are genuinely optional; everything else is the
/// model-specific remainder after unification. Reconstruction primitives
/// (`replica_entry` .. `migration_finish`) are composed by `recovery.rs`
/// into the Rebirth / Migration / checkpoint state machines.
pub(crate) trait ComputeModel: Send + Sync + Sized + 'static {
    /// Vertex value.
    type Value: Clone + Send + Sync + PartialEq + Debug + Encode + Decode + MemSize + 'static;
    /// Gather accumulator (`()` when gather is fused into local compute).
    type Accum: Clone + Send + 'static;
    /// Rebirth recovery entry.
    type Entry: Send + 'static;
    /// Replica metadata.
    type Meta: ReplicaMeta + Clone + Send + 'static;
    /// Local graph. `Sync` because recovery's read-only scans share it with
    /// pool workers behind an `Arc` (both engines' graphs are plain data).
    type Graph: ModelGraph<Value = Self::Value, Meta = Self::Meta>
        + MemSize
        + Clone
        + Send
        + Sync
        + 'static;
    /// Per-node steady-state scratch reused across iterations.
    type Scratch: Send;
    /// Migration bookkeeping the model threads between rounds.
    type MigExtra: Default;

    /// DFS path prefix for this model's snapshots ("ec" / "vc").
    const PREFIX: &'static str;

    fn value_wire_bytes(&self, v: &Self::Value) -> usize;
    fn init_scratch(&self, lg: &Self::Graph, shared: &Shared<Self>) -> Self::Scratch;
    /// Re-derives graph-dependent scratch after recovery changed the layout.
    fn refresh_scratch(&self, _scratch: &mut Self::Scratch, _lg: &Self::Graph) {}
    /// Load-time persistence for non-checkpoint modes (edge-ckpt files).
    fn on_load(&self, _lg: &Self::Graph, _shared: &Shared<Self>) {}

    /// One superstep: compute, communicate, and commit through the model's
    /// internal barriers. On a failed barrier the model undoes its own
    /// staged state and returns [`StepOutcome::Failed`]; the driver owns
    /// everything after that.
    ///
    /// The graph arrives behind an `Arc` so compute chunks can run on the
    /// persistent `pool` (workers clone the `Arc`, and drop their clones
    /// before publishing results); models take exclusive access back via
    /// [`graph_mut`] once every chunk has been consumed.
    fn superstep(
        &self,
        ctx: &Ctx<Self>,
        lg: &mut Arc<Self::Graph>,
        shared: &Shared<Self>,
        st: &mut St<Self>,
        scratch: &mut Self::Scratch,
        pool: &WorkerPool,
    ) -> StepOutcome;

    // -- codec entry points --
    fn encode_graph(&self, lg: &Self::Graph) -> Vec<u8>;
    fn decode_graph(&self, bytes: &[u8]) -> Self::Graph;
    fn encode_snapshot(&self, lg: &Self::Graph, iter: u64) -> Vec<u8>;
    fn encode_snapshot_inc(&self, lg: &Self::Graph, iter: u64, dirty: &[u32]) -> Vec<u8>;
    fn apply_snapshot(&self, lg: &mut Self::Graph, bytes: &[u8]) -> u64;
    fn apply_snapshot_inc(&self, lg: &mut Self::Graph, bytes: &[u8]) -> u64;

    // -- recovery primitives --
    /// Resets values (and, where the model keeps it, activation) to the
    /// iteration-0 state — checkpoint recovery before the first snapshot.
    fn reset_to_initial(&self, lg: &mut Self::Graph, shared: &Shared<Self>);
    /// Applies a full-sync round's records (position-addressed).
    fn apply_full_sync(&self, lg: &mut Self::Graph, incoming: Vec<VertexSync<Self::Value>>);
    /// The scatter bit shipped alongside a copy's value in recovery rounds
    /// (the sparse engine replays it; the dense engine has none).
    fn scatter_bit(&self, lg: &Self::Graph, pos: u32) -> bool;
    fn empty_graph(&self, me: NodeId) -> Self::Graph;
    /// Rebirth entry recreating the crashed node's replica of the copy at
    /// `pos` (which lived at `rpos` there, as `kind`).
    fn replica_entry(
        &self,
        lg: &Self::Graph,
        pos: u32,
        dead_node: NodeId,
        rpos: u32,
        kind: CopyKind,
    ) -> Self::Entry;
    /// Rebirth entry recreating the crashed master from this mirror.
    fn master_entry(&self, lg: &Self::Graph, pos: u32) -> Self::Entry;
    fn entry_wire_bytes(&self, e: &Self::Entry) -> u64;
    fn entry_edges(&self, e: &Self::Entry) -> u64;
    fn insert_entry(&self, lg: &mut Self::Graph, e: Self::Entry);
    /// Extra newbie reloading besides survivor batches (edge-ckpt files).
    fn rebirth_reload_extra(&self, _lg: &mut Self::Graph, _shared: &Shared<Self>) {}
    fn validate(&self, lg: &Self::Graph);
    /// Post-reload replay on the newbie (activation replay + selfish
    /// recompute for the sparse engine). Returns whether any replay work
    /// exists — `false` keeps the report's replay phase at zero. The graph
    /// arrives behind an `Arc` so the model can fan read-only passes out on
    /// `pool` (same contract as [`ComputeModel::superstep`]).
    fn rebirth_replay(
        &self,
        _lg: &mut Arc<Self::Graph>,
        _shared: &Shared<Self>,
        _resume: u64,
        _pool: &WorkerPool,
    ) -> bool {
        false
    }
    /// `(vertices, edges)` held by a reconstructed graph, for the report.
    fn graph_stats(&self, lg: &Self::Graph) -> (u64, u64);
    /// Restores model invariants every recovery path may have disturbed
    /// (the sparse engine's active frontier).
    fn after_recovery(&self, _lg: &mut Self::Graph) {}

    // -- migration hooks --
    /// Model-specific work right after a mirror at `pos` was promoted to
    /// master (meta already repositioned and purged).
    fn on_promote(&self, _lg: &mut Self::Graph, _pos: u32, _mig: &mut Mig<Self::MigExtra>) {}
    /// Migration R2: fix model-specific location tables and return the
    /// replica requests this node must send (missing edge endpoints /
    /// in-edge sources).
    fn migration_requests(
        &self,
        lg: &mut Self::Graph,
        shared: &Shared<Self>,
        st: &St<Self>,
        mig: &mut Mig<Self::MigExtra>,
        env: &MigEnv<'_>,
    ) -> std::collections::HashMap<NodeId, Vec<Vid>>;
    /// Places a granted replica, returning its local position.
    fn place_granted(&self, lg: &mut Self::Graph, grant: ReplicaGrant<Self::Value>) -> u32;
    /// Migration R4: wire promoted masters' edges / adopt reloaded edges.
    fn migration_wire(&self, lg: &mut Self::Graph, mig: &mut Mig<Self::MigExtra>, resume: u64);
    /// Places a brand-new FT replica from a mirror update, returning its
    /// local position.
    fn place_fresh_mirror(
        &self,
        lg: &mut Self::Graph,
        update: crate::msg::MirrorUpdate<Self::Value, Self::Meta>,
    ) -> u32;
    /// Accounted wire size of one mirror-update / meta-refresh record.
    fn meta_update_bytes(&self, meta: &Self::Meta) -> u64;
    /// Checkpoint-fallback recovery (no standbys left): graft a crashed
    /// node's reconstructed partition wholesale into this survivor's graph.
    /// Every master becomes local (a promotion); replica copies either
    /// merge into existing local copies or are appended, reporting their
    /// placement back to the master (or as an orphan when the master died
    /// too).
    fn adopt_partition(
        &self,
        lg: &mut Self::Graph,
        dead_lg: Self::Graph,
        dead: NodeId,
        episode: &[NodeId],
        mig: &mut Mig<Self::MigExtra>,
    ) -> Adoption;
    /// End of migration (before the leader's ack): re-persist whatever the
    /// recovery invalidated (edge-ckpt files covering adopted edges).
    fn migration_finish(
        &self,
        _lg: &Self::Graph,
        _shared: &Shared<Self>,
        _mig: &Mig<Self::MigExtra>,
    ) {
    }
}

/// Runs `model` over pre-built local graphs on a simulated cluster: spawns
/// one thread per node plus the configured hot standbys, joins them, and
/// assembles the merged [`RunReport`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<M: ComputeModel>(
    model: M,
    num_vertices: usize,
    lgs: Vec<M::Graph>,
    degrees: Arc<Degrees>,
    plan: Arc<FtPlan>,
    owners: Arc<Vec<u32>>,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> RunReport<M::Value>
where
    // The model's wire protocol must cross every transport backend: owned
    // moves (channel), cloned duplicates (lossy), and encoded frames (TCP).
    Msg<M>: Clone + WireCodec,
{
    let extra_replicas = plan.extra_replica_count();
    let mem_bytes: Vec<usize> = lgs.iter().map(MemSize::mem_bytes).collect();
    let injector = Arc::new(FailureInjector::new());
    for f in failures {
        injector.schedule(f);
    }
    let shared = Arc::new(Shared {
        model,
        degrees,
        plan,
        owners,
        injector,
        dfs,
        cfg,
    });
    let cluster: Cluster<Msg<M>> = Cluster::with_detector(
        cfg.num_nodes,
        cfg.standbys,
        cfg.detector_config(),
        cfg.transport,
    );

    let start = Instant::now();
    let mut handles = Vec::new();
    for (p, lg) in lgs.into_iter().enumerate() {
        let ctx = cluster.take_ctx(NodeId::from_index(p));
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut st = NodeState::new(
                shared.cfg.num_nodes,
                Instant::now(),
                shared.cfg.sync_suppress,
            );
            if matches!(shared.cfg.ft, FtMode::Checkpoint { .. }) {
                let sw = Stopwatch::start();
                shared.dfs.write(
                    &format!("{}/meta/{}", M::PREFIX, ctx.id().raw()),
                    shared.model.encode_graph(&lg),
                );
                st.ckpt_time += sw.elapsed();
            } else {
                shared.model.on_load(&lg, &shared);
            }
            // Spawned once per node per run; workers park between phases.
            let pool = WorkerPool::new(shared.cfg.threads_per_node);
            node_main(ctx, lg, &shared, st, pool)
        }));
    }
    let mut standby_handles = Vec::new();
    for _ in 0..cfg.standbys {
        let cluster = cluster.clone();
        let shared = Arc::clone(&shared);
        standby_handles.push(std::thread::spawn(move || standby_main(&cluster, &shared)));
    }

    let mut outcomes: Vec<NodeOutcome<M::Graph>> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    cluster.shutdown_standbys();
    for h in standby_handles {
        if let Some(o) = h.join().expect("standby thread panicked") {
            outcomes.push(o);
        }
    }
    // Every node thread is joined; release transport-owned sockets/threads.
    cluster.shutdown_transport();
    let elapsed = start.elapsed();

    let (mut report, graphs) = merge_outcomes(
        outcomes,
        elapsed,
        mem_bytes,
        extra_replicas,
        cluster.comm_breakdown(),
    );
    report.pipeline = cfg.pipeline;
    report.delta_sync = cfg.delta_sync;
    report.suspicion = cluster.coordinator().suspicion_stats();
    let mut values: Vec<Option<M::Value>> = vec![None; num_vertices];
    for lg in &graphs {
        for pos in 0..lg.len() as u32 {
            if lg.is_master(pos) {
                values[lg.vid(pos).index()] = Some(lg.value(pos).clone());
            }
        }
    }
    report.values = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("vertex v{i} has no master after run")))
        .collect();
    report
}

/// Hot-standby entry: block until the coordinator hands over a crashed
/// identity, reconstruct its state, then run the main loop as that node.
fn standby_main<M: ComputeModel>(
    cluster: &Cluster<Msg<M>>,
    shared: &Arc<Shared<M>>,
) -> Option<NodeOutcome<M::Graph>> {
    let ctx = cluster.wait_standby(Duration::from_secs(600))?;
    let mut st = NodeState::new(
        shared.cfg.num_nodes,
        Instant::now(),
        shared.cfg.sync_suppress,
    );
    // The newbie's reload/reconstruct/replay phases fan out on the same
    // worker pool the node keeps for compute once it joins the main loop.
    let pool = WorkerPool::new(shared.cfg.threads_per_node);
    let lg = match shared.cfg.ft {
        FtMode::Replication { .. } => recovery::rebirth_newbie(&ctx, shared, &mut st, &pool),
        FtMode::Checkpoint { .. } => recovery::ckpt_newbie(&ctx, shared, &mut st, &pool),
        FtMode::None => unreachable!("standbys are never dispatched without fault tolerance"),
    };
    // `None`: the recovery attempt this newbie was dispatched for aborted
    // (or the newbie hit an injected fail point) and it crashed itself; its
    // phase/comm accounting still belongs in the merged report.
    let Some(lg) = lg else {
        absorb_pool(&mut st, &pool);
        return Some(NodeOutcome::from_state(None, st));
    };
    Some(node_main(ctx, lg, shared, st, pool))
}

/// Algorithm 1: the synchronous execution flow with failure handling —
/// iteration budget, failure injection points, superstep dispatch,
/// checkpoint scheduling inside the barrier window, the closing
/// activity all-reduce, replay accounting, and convergence.
fn node_main<M: ComputeModel>(
    ctx: Ctx<M>,
    lg: M::Graph,
    shared: &Arc<Shared<M>>,
    mut st: St<M>,
    pool: WorkerPool,
) -> NodeOutcome<M::Graph> {
    let me = ctx.id();
    st.sync_filter.set_domain(lg.len() as u32);
    let mut scratch = shared.model.init_scratch(&lg, shared);
    let mut lg = Arc::new(lg);
    loop {
        if st.iter >= shared.cfg.max_iters {
            break;
        }
        if let Some(ticks) = shared.injector.should_stall(me, st.iter) {
            // Go silent before doing any work this iteration. A stall that
            // outlives the suspicion fence gets this node confirmed dead by
            // the heartbeat detector; it must then exit exactly like a
            // BeforeBarrier crash at the same (node, iteration) — nothing
            // was computed or sent yet, so the surviving protocol is
            // identical. A shorter stall is retracted and execution
            // continues untouched.
            if !ctx.stall(ticks) {
                absorb_pool(&mut st, &pool);
                return NodeOutcome::from_state(None, st);
            }
        }
        if shared
            .injector
            .should_fail(me, st.iter, FailPoint::BeforeBarrier)
        {
            ctx.die();
            absorb_pool(&mut st, &pool);
            return NodeOutcome::from_state(None, st);
        }
        let iter_sw = Stopwatch::start();

        let active =
            match shared
                .model
                .superstep(&ctx, &mut lg, shared, &mut st, &mut scratch, &pool)
            {
                StepOutcome::Committed(active) => active,
                StepOutcome::Failed(dead) => {
                    // Keep recovery messages that may already have arrived from
                    // faster peers; discard the failed iteration's data traffic.
                    stash_non_data::<M>(&ctx, &mut st);
                    let resume = st.iter;
                    if recovery::recover(&ctx, &mut lg, shared, &mut st, &dead, resume, &pool) {
                        absorb_pool(&mut st, &pool);
                        return NodeOutcome::from_state(None, st);
                    }
                    shared.model.refresh_scratch(&mut scratch, &lg);
                    continue;
                }
            };

        // Checkpoint inside the barrier window (§2.2).
        if let FtMode::Checkpoint {
            interval,
            incremental,
        } = shared.cfg.ft
        {
            if (st.iter + 1).is_multiple_of(interval) {
                let sw = Stopwatch::start();
                let kind = ckpt_epoch_kind(st.iter + 1, interval, incremental);
                let bytes = match kind {
                    EpochKind::Delta => {
                        let mut dirty: Vec<u32> = st.dirty.drain().collect();
                        dirty.sort_unstable();
                        shared.model.encode_snapshot_inc(&lg, st.iter + 1, &dirty)
                    }
                    EpochKind::Full => {
                        // A full epoch is a fresh base: the delta chain
                        // restarts from here, so the dirty set resets too.
                        st.dirty.clear();
                        shared.model.encode_snapshot(&lg, st.iter + 1)
                    }
                };
                if shared
                    .injector
                    .should_fail(me, st.iter, FailPoint::CkptWrite)
                {
                    // Crash mid-write: a torn (unsealed) part is left
                    // behind, making the epoch detectably incomplete —
                    // recovery must roll back to the previous complete one.
                    epoch::write_part_torn(&shared.dfs, M::PREFIX, st.iter + 1, me.raw(), bytes);
                    ctx.die();
                    absorb_pool(&mut st, &pool);
                    return NodeOutcome::from_state(None, st);
                }
                epoch::write_part(&shared.dfs, M::PREFIX, st.iter + 1, me.raw(), bytes);
                if me == st.leader() {
                    // The epoch commits only once its roster exists: the
                    // sealed member list (and epoch kind) recovery checks
                    // parts against.
                    let members: Vec<u32> = st
                        .alive
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &a)| a.then_some(i as u32))
                        .collect();
                    epoch::write_roster(&shared.dfs, M::PREFIX, st.iter + 1, kind, &members);
                }
                st.last_snapshot_iter = st.iter + 1;
                let d = sw.elapsed();
                st.ckpt_time += d;
                st.phases.record("ckpt", d);
            }
        }

        st.iter += 1;
        st.timeline.push((st.iter, st.start.elapsed()));

        // Leave barrier doubling as the activity all-reduce.
        let sw = Stopwatch::start();
        let (outcome, total_active) = ctx.enter_barrier_sum(active);
        st.phases.record("barrier", sw.elapsed());
        if st.iter <= st.replay_until {
            if let Some(r) = st.recoveries.last_mut() {
                r.replay += iter_sw.elapsed();
            }
        }
        if let BarrierOutcome::Failed(dead) = outcome {
            // Failure after commit: no rollback.
            stash_non_data::<M>(&ctx, &mut st);
            let resume = st.iter;
            if recovery::recover(&ctx, &mut lg, shared, &mut st, &dead, resume, &pool) {
                absorb_pool(&mut st, &pool);
                return NodeOutcome::from_state(None, st);
            }
            shared.model.refresh_scratch(&mut scratch, &lg);
            continue;
        }
        if total_active == 0 {
            // Converged: the job is over before any post-barrier crash can
            // strike (a machine lost after completion is outside the job's
            // lifetime and cannot be recovered by it).
            break;
        }
        if st.iter < shared.cfg.max_iters
            && shared
                .injector
                .should_fail(me, st.iter - 1, FailPoint::AfterBarrier)
        {
            ctx.die();
            absorb_pool(&mut st, &pool);
            return NodeOutcome::from_state(None, st);
        }
    }
    absorb_pool(&mut st, &pool);
    let lg = Arc::try_unwrap(lg).unwrap_or_else(|_| panic!("graph still shared at node exit"));
    NodeOutcome::from_state(Some(lg), st)
}

/// Exclusive access to the node's graph between phases. Pool workers drop
/// their `Arc` clones *before* publishing chunk results (see
/// [`WorkerPool::dispatch`]), so once every chunk has been consumed the
/// count is deterministically back to one.
pub(crate) fn graph_mut<G>(lg: &mut Arc<G>) -> &mut G {
    Arc::get_mut(lg).expect("local graph still shared by pool workers")
}

/// Reads the pool's lifetime counters into the node state before it is
/// frozen into an outcome.
fn absorb_pool<T>(st: &mut NodeState<T>, pool: &WorkerPool) {
    let (jobs, peak_busy) = pool.counters();
    st.pool.jobs = jobs;
    st.pool.peak_busy = peak_busy;
}

/// Stages one slice of master updates into the per-destination sync
/// batches, including the mirrors' dynamic state. Selfish masters (§4.4)
/// send nothing — their only replicas are FT replicas.
///
/// Staging runs on the main thread in ascending-position order (serial
/// order), so suppression decisions, delta spans and byte accounting are
/// identical whether the whole update set arrives at once or chunk by
/// chunk from the pipelined pool. Per-record wire bytes are charged to the
/// `SyncBufs` accumulators here; [`ship_staged_syncs`] moves batches onto
/// the fabric and [`flush_sync_acct`] records the superstep totals.
///
/// `stage_scatter` keys the suppression filter on the scatter bit too (the
/// sparse engine's replicas replay it; the dense engine's receivers apply
/// the value only, matching the full-sync rounds recovery sends).
pub(crate) fn stage_update_syncs<M: ComputeModel>(
    lg: &M::Graph,
    updates: &[MasterUpdate<M::Value>],
    shared: &Shared<M>,
    st: &mut St<M>,
    bufs: &mut SyncBufs<M::Value>,
    stage_scatter: bool,
) {
    let mut suppressed = 0u64;
    for u in updates {
        let i = lg.vid(u.local).index();
        if *shared.plan.selfish.get(i).unwrap_or(&false) {
            continue;
        }
        let meta = lg.meta(u.local).expect("masters always carry full state");
        let staged = st
            .sync_filter
            .stage(u.local, &u.value, stage_scatter && u.activate);
        let vb = shared.model.value_wire_bytes(&u.value);
        for (&node, &rpos) in meta.replica_nodes().iter().zip(meta.replica_positions()) {
            if st.sync_filter.suppress(staged, node) {
                suppressed += 1;
                continue;
            }
            // Accounted record size: the record's columnar frame columns —
            // position delta against the previous record staged toward this
            // destination, plus the value column (a byte-span delta when
            // the destination provably holds the base). Decided at stage
            // time → invariant under chunking.
            let n = node.index();
            let span = if shared.cfg.delta_sync {
                st.sync_filter.delta_span(staged, node)
            } else {
                None
            };
            let bytes = crate::wire::sync_record_bytes(rpos, bufs.prev_pos[n], vb, span);
            bufs.prev_pos[n] = rpos;
            bufs.batches[n].push(VertexSync {
                pos: rpos,
                value: u.value.clone(),
                activate: u.activate,
            });
            bufs.batch_bytes[n] += bytes;
            bufs.tot_entries[n] += 1;
            bufs.tot_bytes[n] += bytes;
            let extra = shared
                .plan
                .extra_replicas
                .get(i)
                .is_some_and(|e| e.contains(&node));
            if extra {
                bufs.tot_ft[n] += 1;
            }
        }
    }
    st.note_suppressed(suppressed);
}

/// Ships every non-empty staged batch onto the fabric (one envelope per
/// destination) and returns how many envelopes went out. The pipelined
/// driver calls this once per chunk; the strict driver once per phase.
pub(crate) fn ship_staged_syncs<M: ComputeModel>(
    ctx: &Ctx<M>,
    bufs: &mut SyncBufs<M::Value>,
) -> u64 {
    let mut shipped = 0;
    for (n, batch) in bufs.batches.iter_mut().enumerate() {
        if batch.is_empty() {
            continue;
        }
        shipped += 1;
        ctx.send_kind(
            NodeId::from_index(n),
            ProtoMsg::Sync(std::mem::take(batch)),
            std::mem::take(&mut bufs.batch_bytes[n]),
            CommKind::Sync,
        );
    }
    shipped
}

/// Records the superstep's per-destination sync totals into the node's
/// logical comm stats — exactly one record per destination per superstep
/// with the FT share pro-rata on whole-superstep entry counts, so the
/// accounting (and the golden hashes over it) is bit-identical whether the
/// batches shipped whole or chunk by chunk.
pub(crate) fn flush_sync_acct<M: ComputeModel>(st: &mut St<M>, bufs: &mut SyncBufs<M::Value>) {
    for n in 0..bufs.tot_entries.len() {
        let entries = std::mem::take(&mut bufs.tot_entries[n]);
        let col_bytes = std::mem::take(&mut bufs.tot_bytes[n]);
        let ft = std::mem::take(&mut bufs.tot_ft[n]);
        bufs.prev_pos[n] = 0;
        if entries == 0 {
            continue;
        }
        // One frame header (tag + count + flag bitmap) per destination per
        // superstep, on top of the per-record column bytes charged at stage
        // time: the superstep's records toward one destination are one
        // logical columnar frame, however many envelope chunks shipped.
        let bytes = col_bytes + crate::wire::sync_frame_overhead(entries);
        st.comm.record(entries, bytes);
        if ft > 0 {
            // FT share estimated pro-rata on entry count.
            st.ft_comm.record(ft, bytes * ft / entries.max(1));
        }
    }
}

/// Drains an update-producing chunk iterator and handles the whole
/// stage/ship/account dance for the phase, in both execution modes:
///
/// * **Pipelined** (`cfg.pipeline`): each chunk's sync batch is staged and
///   shipped the moment the chunk completes, while later chunks are still
///   computing on the pool — the sync barrier fences only the tail. Time
///   spent staging while compute was still outstanding is recorded as
///   `overlap` and counted in the pool stats.
/// * **Strict**: all chunks are drained first, then the phase stages and
///   ships once.
///
/// Returns the concatenated updates, which are identical in either mode:
/// chunks are disjoint ascending ranges consumed in submission order, so
/// the staged record sequence — and with [`flush_sync_acct`]'s tail flush,
/// the comm accounting — is a pure function of the inputs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pump_update_syncs<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
    bufs: &mut SyncBufs<M::Value>,
    chunks: &mut InOrder<Vec<MasterUpdate<M::Value>>>,
    sw: &mut Stopwatch,
    phase: &'static str,
    stage_scatter: bool,
) -> Vec<MasterUpdate<M::Value>> {
    let mut updates: Vec<MasterUpdate<M::Value>> = Vec::new();
    if shared.cfg.pipeline {
        while let Some(chunk) = chunks.next() {
            let outstanding = chunks.outstanding() > 0;
            let stage_sw = Stopwatch::start();
            stage_update_syncs::<M>(lg, &chunk, shared, st, bufs, stage_scatter);
            let shipped = ship_staged_syncs::<M>(ctx, bufs);
            if outstanding {
                // Staging/shipping overlapped with outstanding chunk work.
                let d = stage_sw.elapsed();
                st.pool.overlap += d;
                st.phases.record("overlap", d);
                st.pool.early_batches += shipped;
            }
            updates.extend(chunk);
        }
        st.phases.record(phase, sw.lap());
    } else {
        for chunk in chunks {
            updates.extend(chunk);
        }
        st.phases.record(phase, sw.lap());
        stage_update_syncs::<M>(lg, &updates, shared, st, bufs, stage_scatter);
        ship_staged_syncs::<M>(ctx, bufs);
    }
    flush_sync_acct::<M>(st, bufs);
    st.phases.record("send", sw.lap());
    updates
}

/// Marks this iteration's updates dirty for incremental checkpointing.
pub(crate) fn note_dirty<M: ComputeModel>(
    st: &mut St<M>,
    cfg: &RunConfig,
    updates: &[MasterUpdate<M::Value>],
) {
    if matches!(
        cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    ) {
        st.dirty.extend(updates.iter().map(|u| u.local));
    }
}

/// Drains stashed + queued sync records (position-addressed by the sender,
/// so no ID lookup happens here), stashing everything else for later.
pub(crate) fn collect_syncs<M: ComputeModel>(
    ctx: &Ctx<M>,
    st: &mut St<M>,
) -> Vec<VertexSync<M::Value>> {
    let mut out = Vec::new();
    let mut pending = std::mem::take(&mut st.stash);
    pending.extend(ctx.drain());
    for env in pending {
        match env.msg {
            ProtoMsg::Sync(batch) => out.extend(batch),
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    out
}

/// On failure: discard the failed iteration's data traffic (syncs and
/// gather partials), keep recovery messages that may already have arrived
/// from faster peers.
pub(crate) fn stash_non_data<M: ComputeModel>(ctx: &Ctx<M>, st: &mut St<M>) {
    for env in ctx.drain() {
        if !matches!(env.msg, ProtoMsg::Sync(_) | ProtoMsg::Gather(_)) {
            st.stash.push(env);
        }
    }
}

/// Pulls stashed + queued messages (recovery rounds are barrier-separated,
/// so everything for the current round is already queued).
pub(crate) fn round_msgs<M: ComputeModel>(ctx: &Ctx<M>, st: &mut St<M>) -> Vec<Envelope<Msg<M>>> {
    let mut v = std::mem::take(&mut st.stash);
    v.extend(ctx.drain());
    v
}

//! Fault-tolerance replica placement (§4).
//!
//! Given an existing partitioning's replica sets, this module decides, per
//! vertex:
//!
//! * which `K` replica locations become **mirrors** (full-state replicas,
//!   §4.2) — chosen greedily so every machine hosts a similar number of
//!   mirrors, which keeps recovery parallel (§6.5);
//! * where to create **extra FT replicas** for vertices with fewer than `K`
//!   replicas (§4.1) — a small random candidate set is drawn and the least
//!   loaded candidate wins ("power of choices", §1);
//! * which vertices are **selfish** (§4.4) — no out-edges and a program
//!   whose values are recomputable from in-neighbours; they get FT replicas
//!   but are never synchronised during normal execution.

use imitator_cluster::NodeId;
use imitator_engine::{FtPlan, MasterMeta, VcMeta};
use imitator_graph::{Graph, Vid};
use imitator_partition::{EdgeCut, VertexCut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A vertex copy's full-state view of its replica set, abstracting over the
/// edge-cut [`MasterMeta`] and vertex-cut [`VcMeta`] so replica-placement
/// decisions (mirror responsibility, promotion, FT restoration) are written
/// once in the model-generic recovery state machine.
pub trait ReplicaMeta {
    /// The master's array position on its own node.
    fn master_pos(&self) -> u32;
    /// Records a new master array position (after a Migration promotion).
    fn set_master_pos(&mut self, pos: u32);
    /// Nodes holding a replica of this vertex (excluding the master's).
    fn replica_nodes(&self) -> &[NodeId];
    /// The replica's array position on each node of [`Self::replica_nodes`],
    /// parallel to it.
    fn replica_positions(&self) -> &[u32];
    /// The subset of replica nodes upgraded to full-state mirrors, in
    /// responsibility order (§5.3.1).
    fn mirror_nodes(&self) -> &[NodeId];
    /// Designates `node` as an additional mirror (appended last in
    /// responsibility order).
    fn add_mirror(&mut self, node: NodeId);
    /// The replica's array position on `node`, if one exists there.
    fn replica_position_on(&self, node: NodeId) -> Option<u32>;
    /// Forgets every replica/mirror located on `node` (it crashed or was
    /// promoted).
    fn purge_node(&mut self, node: NodeId);
    /// Registers (or repositions) a replica of this vertex on `node`.
    fn register_replica(&mut self, node: NodeId, pos: u32);
}

impl ReplicaMeta for MasterMeta {
    fn master_pos(&self) -> u32 {
        self.master_pos
    }

    fn set_master_pos(&mut self, pos: u32) {
        self.master_pos = pos;
    }

    fn replica_nodes(&self) -> &[NodeId] {
        &self.replica_nodes
    }

    fn replica_positions(&self) -> &[u32] {
        &self.replica_positions
    }

    fn mirror_nodes(&self) -> &[NodeId] {
        &self.mirror_nodes
    }

    fn add_mirror(&mut self, node: NodeId) {
        self.mirror_nodes.push(node);
    }

    fn replica_position_on(&self, node: NodeId) -> Option<u32> {
        MasterMeta::replica_position_on(self, node)
    }

    fn purge_node(&mut self, node: NodeId) {
        MasterMeta::purge_node(self, node);
    }

    fn register_replica(&mut self, node: NodeId, pos: u32) {
        MasterMeta::register_replica(self, node, pos);
    }
}

impl ReplicaMeta for VcMeta {
    fn master_pos(&self) -> u32 {
        self.master_pos
    }

    fn set_master_pos(&mut self, pos: u32) {
        self.master_pos = pos;
    }

    fn replica_nodes(&self) -> &[NodeId] {
        &self.replica_nodes
    }

    fn replica_positions(&self) -> &[u32] {
        &self.replica_positions
    }

    fn mirror_nodes(&self) -> &[NodeId] {
        &self.mirror_nodes
    }

    fn add_mirror(&mut self, node: NodeId) {
        self.mirror_nodes.push(node);
    }

    fn replica_position_on(&self, node: NodeId) -> Option<u32> {
        VcMeta::replica_position_on(self, node)
    }

    fn purge_node(&mut self, node: NodeId) {
        VcMeta::purge_node(self, node);
    }

    fn register_replica(&mut self, node: NodeId, pos: u32) {
        VcMeta::register_replica(self, node, pos);
    }
}

/// First surviving node in `meta`'s mirror-ID order — the one responsible
/// for recovering the master without any election traffic (§5.3.1).
///
/// Returns `None` when every mirror is dead (an unrecoverable episode under
/// replication FT — more simultaneous failures than the tolerance level).
pub fn responsible_mirror<M: ReplicaMeta + ?Sized>(meta: &M, alive: &[bool]) -> Option<NodeId> {
    meta.mirror_nodes()
        .iter()
        .copied()
        .find(|m| alive[m.index()])
}

/// A partitioning's view of master/replica placement, abstracting over
/// edge-cut and vertex-cut.
pub trait ReplicaView {
    /// Number of parts.
    fn num_parts(&self) -> usize;
    /// Part mastering `v`.
    fn master_part(&self, v: Vid) -> usize;
    /// Parts holding a replica of `v` (excluding the master part).
    fn replica_parts(&self, v: Vid) -> &[u32];
}

impl ReplicaView for EdgeCut {
    fn num_parts(&self) -> usize {
        self.num_parts()
    }

    fn master_part(&self, v: Vid) -> usize {
        self.owner(v)
    }

    fn replica_parts(&self, v: Vid) -> &[u32] {
        self.replica_parts(v)
    }
}

impl ReplicaView for VertexCut {
    fn num_parts(&self) -> usize {
        self.num_parts()
    }

    fn master_part(&self, v: Vid) -> usize {
        self.master(v)
    }

    fn replica_parts(&self, v: Vid) -> &[u32] {
        self.replica_parts(v)
    }
}

/// Computes the FT placement for tolerating `tolerance` simultaneous
/// machine failures.
///
/// `selfish_enabled` is the configuration switch; `program_selfish_ok`
/// whether the vertex program declares its values recomputable
/// ([`imitator_engine::VertexProgram::selfish_compatible`]).
///
/// # Panics
///
/// Panics if `tolerance >= num_parts` (there must be a surviving copy) or
/// `tolerance == 0`.
#[allow(clippy::needless_range_loop)] // loops pair the index with Vid::from_index(i)
pub fn compute_ft_plan(
    g: &Graph,
    view: &dyn ReplicaView,
    tolerance: usize,
    selfish_enabled: bool,
    program_selfish_ok: bool,
    seed: u64,
) -> FtPlan {
    let parts = view.num_parts();
    assert!(tolerance > 0, "tolerance must be at least 1");
    assert!(
        tolerance < parts,
        "cannot tolerate {tolerance} failures with {parts} nodes"
    );
    let n = g.num_vertices();
    let mut out_deg = vec![0u32; n];
    for e in g.edges() {
        out_deg[e.src.index()] += 1;
    }

    let mut plan = FtPlan::none(n);
    // Per-node load trackers for balanced placement.
    let mut mirror_count = vec![0usize; parts];
    let mut copy_count = vec![0usize; parts];
    for i in 0..n {
        let v = Vid::from_index(i);
        copy_count[view.master_part(v)] += 1;
        for &p in view.replica_parts(v) {
            copy_count[p as usize] += 1;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 0..n {
        let v = Vid::from_index(i);
        let owner = view.master_part(v);
        plan.selfish[i] = selfish_enabled && program_selfish_ok && out_deg[i] == 0;

        // Greedy mirror choice among existing replicas: least-mirrored
        // machines first (ties by node ID for determinism).
        let mut candidates: Vec<usize> =
            view.replica_parts(v).iter().map(|&p| p as usize).collect();
        candidates.sort_by_key(|&p| (mirror_count[p], p));
        let mut mirrors: Vec<NodeId> = candidates
            .iter()
            .take(tolerance)
            .map(|&p| NodeId::from_index(p))
            .collect();

        // Not enough replicas: create extra FT replicas (§4.1). Draw a few
        // random candidates and keep the least-loaded one.
        while mirrors.len() < tolerance {
            let mut best: Option<usize> = None;
            for _ in 0..8 {
                let p = rng.gen_range(0..parts);
                if p == owner
                    || mirrors.contains(&NodeId::from_index(p))
                    || view.replica_parts(v).contains(&(p as u32))
                {
                    continue;
                }
                best = Some(match best {
                    None => p,
                    Some(b)
                        if copy_count[p] + mirror_count[p] < copy_count[b] + mirror_count[b] =>
                    {
                        p
                    }
                    Some(b) => b,
                });
            }
            // Random draws can all collide on small clusters; fall back to a
            // deterministic scan for any eligible node.
            let chosen = best.unwrap_or_else(|| {
                (0..parts)
                    .filter(|&p| {
                        p != owner
                            && !mirrors.contains(&NodeId::from_index(p))
                            && !view.replica_parts(v).contains(&(p as u32))
                    })
                    .min_by_key(|&p| (copy_count[p] + mirror_count[p], p))
                    .expect("tolerance < parts guarantees an eligible node")
            });
            mirrors.push(NodeId::from_index(chosen));
            plan.extra_replicas[i].push(NodeId::from_index(chosen));
            copy_count[chosen] += 1;
        }

        for m in &mirrors {
            mirror_count[m.index()] += 1;
        }
        plan.mirror[i] = mirrors;
    }
    plan
}

/// Fraction of vertices that needed an extra FT replica, excluding selfish
/// vertices (the series of Fig. 3(b)).
pub fn extra_replica_fraction(plan: &FtPlan) -> f64 {
    let n = plan.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let extra = (0..n)
        .filter(|&i| !plan.extra_replicas[i].is_empty() && !plan.selfish[i])
        .count();
    extra as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_graph::gen;
    use imitator_partition::{
        EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
    };

    fn plan_for(parts: usize, k: usize) -> (Graph, EdgeCut, FtPlan) {
        let g = gen::power_law_selfish(2_000, 2.0, 6, 0.2, 5);
        let cut = HashEdgeCut.partition(&g, parts);
        let plan = compute_ft_plan(&g, &cut, k, true, true, 42);
        (g, cut, plan)
    }

    #[test]
    fn every_vertex_gets_k_mirrors() {
        let (g, cut, plan) = plan_for(8, 2);
        for v in g.vertices() {
            let mirrors = plan.mirrors(v);
            assert_eq!(mirrors.len(), 2, "{v} has {} mirrors", mirrors.len());
            // distinct, none on the owner
            assert_ne!(mirrors[0], mirrors[1]);
            for m in mirrors {
                assert_ne!(m.index(), cut.owner(v));
            }
        }
    }

    #[test]
    fn extras_only_where_replicas_lack() {
        let (g, cut, plan) = plan_for(8, 1);
        for v in g.vertices() {
            if cut.replica_parts(v).is_empty() {
                assert_eq!(plan.extra_replicas[v.index()].len(), 1);
            } else {
                assert!(plan.extra_replicas[v.index()].is_empty());
            }
        }
    }

    #[test]
    fn selfish_flags_follow_out_degree() {
        let (g, _cut, plan) = plan_for(8, 1);
        let mut out_deg = vec![0u32; g.num_vertices()];
        for e in g.edges() {
            out_deg[e.src.index()] += 1;
        }
        for v in g.vertices() {
            assert_eq!(plan.selfish[v.index()], out_deg[v.index()] == 0);
        }
    }

    #[test]
    fn selfish_disabled_clears_flags() {
        let g = gen::power_law_selfish(500, 2.0, 6, 0.3, 1);
        let cut = HashEdgeCut.partition(&g, 4);
        let plan = compute_ft_plan(&g, &cut, 1, false, true, 1);
        assert!(plan.selfish.iter().all(|&s| !s));
        let plan2 = compute_ft_plan(&g, &cut, 1, true, false, 1);
        assert!(plan2.selfish.iter().all(|&s| !s));
    }

    #[test]
    fn mirror_load_is_balanced() {
        let (g, _cut, plan) = plan_for(8, 1);
        let mut counts = vec![0usize; 8];
        for v in g.vertices() {
            for m in plan.mirrors(v) {
                counts[m.index()] += 1;
            }
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min.max(1.0) < 1.6, "mirror imbalance: {counts:?}");
    }

    #[test]
    fn works_on_vertex_cut() {
        let g = gen::power_law(1_000, 2.0, 8, 3);
        let cut = RandomVertexCut.partition(&g, 6);
        let plan = compute_ft_plan(&g, &cut, 3, false, false, 9);
        for v in g.vertices() {
            assert_eq!(plan.mirrors(v).len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "cannot tolerate")]
    fn tolerance_must_leave_survivors() {
        let g = gen::power_law(100, 2.0, 4, 1);
        let cut = HashEdgeCut.partition(&g, 3);
        compute_ft_plan(&g, &cut, 3, false, false, 0);
    }

    #[test]
    fn extra_fraction_is_small_on_well_connected_graphs() {
        // Fig. 3(b): < 0.15% extra replicas for well-connected datasets.
        let g = gen::power_law(5_000, 2.0, 15, 7);
        let cut = HashEdgeCut.partition(&g, 16);
        let plan = compute_ft_plan(&g, &cut, 1, true, true, 3);
        assert!(extra_replica_fraction(&plan) < 0.02);
    }

    fn meta_with_mirrors(mirrors: &[usize]) -> MasterMeta {
        MasterMeta {
            master_pos: 0,
            replica_nodes: mirrors.iter().map(|&m| NodeId::from_index(m)).collect(),
            replica_positions: vec![0; mirrors.len()],
            mirror_nodes: mirrors.iter().map(|&m| NodeId::from_index(m)).collect(),
            in_edges_owner: Vec::new(),
            in_edge_srcs: Vec::new(),
            out_local_owner: Vec::new(),
            out_remote: Vec::new(),
        }
    }

    #[test]
    fn responsible_mirror_none_when_all_mirrors_dead() {
        let meta = meta_with_mirrors(&[1, 2]);
        // Nodes 1 and 2 (the only mirrors) are both dead: nobody can take
        // responsibility, recovery of this master is impossible.
        let alive = [true, false, false, true];
        assert_eq!(responsible_mirror(&meta, &alive), None);
    }

    #[test]
    fn responsible_mirror_returns_after_standby_promotion() {
        let meta = meta_with_mirrors(&[1, 3]);
        // First mirror (node 1) dead: responsibility falls to the next
        // surviving mirror in ID order.
        let mut alive = [true, false, true, true];
        assert_eq!(
            responsible_mirror(&meta, &alive),
            Some(NodeId::from_index(3))
        );
        // A standby adopts the crashed identity (Rebirth): node 1 is alive
        // again and, being first in mirror order, responsible once more.
        alive[1] = true;
        assert_eq!(
            responsible_mirror(&meta, &alive),
            Some(NodeId::from_index(1))
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::power_law(500, 2.0, 6, 11);
        let cut = HashEdgeCut.partition(&g, 5);
        let a = compute_ft_plan(&g, &cut, 2, true, true, 7);
        let b = compute_ft_plan(&g, &cut, 2, true, true, 7);
        assert_eq!(a, b);
    }
}

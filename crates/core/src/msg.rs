//! Wire message types.
//!
//! Messages travel between simulated nodes as owned values over channels;
//! byte sizes are *accounted* (for the paper's communication-cost numbers)
//! rather than serialised. Only DFS content (checkpoints, edge-ckpt files)
//! goes through the binary codec. Batch-shaped messages — [`ProtoMsg::Sync`],
//! [`ProtoMsg::Gather`], [`ProtoMsg::MirrorUpdate`] — are charged as
//! [columnar frames](crate::wire): one frame header per destination per
//! superstep, positions/IDs as zigzag-varint delta columns. The remaining
//! recovery messages are charged per record against the scalar codec; the
//! `accounted_sizes_match_codec` test pins both equalities.

use imitator_cluster::NodeId;
use imitator_engine::{CopyKind, MasterMeta, VcMeta};
use imitator_graph::Vid;

/// One vertex's synchronisation record, master → replica (Algorithm 1
/// line 6). With replication FT on, the same record doubles as the mirror's
/// dynamic-state refresh: `activate` is the scatter bit the mirror stores
/// for activation replay (§5.1.3).
///
/// Position-addressed, like the recovery entries (§5.1.2): the master knows
/// every replica's array position on its destination node, so the receiver
/// applies the record straight into its vertex array — no per-record
/// ID-to-position lookup on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexSync<V> {
    /// The replica's array position on the destination node.
    pub pos: u32,
    /// Its new committed value.
    pub value: V,
    /// The scatter decision of this update.
    pub activate: bool,
}

/// One recovered vertex copy, shipped to the node reconstructing it.
///
/// Position-addressed (§5.1.2): the receiver places it straight into its
/// vertex array slot, no lookups, no contention.
#[derive(Debug, Clone, PartialEq)]
pub struct EcRecoverEntry<V> {
    /// The vertex.
    pub vid: Vid,
    /// Array position on the node being reconstructed.
    pub pos: u32,
    /// Role the copy had there.
    pub kind: CopyKind,
    /// Node mastering the vertex (post-recovery view).
    pub master_node: NodeId,
    /// Last committed value.
    pub value: V,
    /// Last synchronised scatter bit, replayed to rebuild activation.
    pub last_activate: bool,
    /// Whether the master considers the vertex active (only meaningful when
    /// `kind` is `Master` and the sender *is* the master's own node — for
    /// mirror-recovered masters activation comes from replay instead).
    pub active: bool,
    /// In-edges in reconstructed-node-local positions (masters only).
    pub in_edges: Vec<(u32, f32)>,
    /// Out-edge targets in reconstructed-node-local positions.
    pub out_local: Vec<u32>,
    /// Full state (masters and mirrors).
    pub meta: Option<Box<MasterMeta>>,
}

impl<V> EcRecoverEntry<V> {
    /// Accounted wire size of one entry, matching the storage codec's
    /// encoding of every field except `meta` (mirror full state is charged
    /// separately by the meta-refresh estimates): `vid + pos + kind +
    /// master_node + value + last_activate + active + in_edges (length
    /// prefix + 8 per edge) + out_local (length prefix + 4 per target) +
    /// meta presence flag`.
    pub fn wire_bytes(value_bytes: usize, in_edges: usize, out_local: usize) -> usize {
        4 + 4 + 1 + 4 + value_bytes + 1 + 1 + (8 + 8 * in_edges) + (8 + 4 * out_local) + 1
    }
}

/// Migration round 1: a mirror promoted itself to master (§5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// The vertex whose master moved.
    pub vid: Vid,
    /// The surviving node now mastering it.
    pub new_master: NodeId,
    /// The master's array position there.
    pub new_pos: u32,
    /// The crashed node that used to master it.
    pub old_node: NodeId,
    /// The master's array position on the crashed node — peers use
    /// `(old_node, old_pos)` to rewrite position-addressed consumer tables.
    pub old_pos: u32,
}

/// Migration round 3: a master hands a fresh replica of `vid` to a node
/// that needs one for local-access semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaGrant<V> {
    /// The vertex.
    pub vid: Vid,
    /// Current value.
    pub value: V,
    /// Last committed scatter bit (for activation replay).
    pub last_activate: bool,
    /// The master's node.
    pub master_node: NodeId,
}

/// Migration rounds 5-7: mirror designation / full-state refresh. When
/// `value` is `Some`, the receiver has no copy yet and creates one (a brand
/// new FT replica); otherwise it upgrades or refreshes the existing copy.
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorUpdate<V, M> {
    /// The vertex.
    pub vid: Vid,
    /// The refreshed full state.
    pub meta: Box<M>,
    /// Value for receivers without a copy.
    pub value: Option<V>,
    /// Last committed scatter bit.
    pub last_activate: bool,
    /// The sending master's node.
    pub master_node: NodeId,
}

/// The model-generic cluster protocol, parameterized by value `V`, gather
/// accumulator `A`, Rebirth recovery entry `E`, and replica meta `M`.
///
/// Both compute models speak this one protocol; the [`EcMsg`] and [`VcMsg`]
/// aliases pin the type parameters per model (the edge-cut model never
/// sends `Gather` — its gather is fused into local compute).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg<V, A, E, M> {
    /// Gather phase: partial accumulators, edge holder → master
    /// (vertex-cut only).
    Gather(Vec<(Vid, A)>),
    /// Normal-execution value synchronisation, master → replicas.
    Sync(Vec<VertexSync<V>>),
    /// Rebirth: survivor → newbie reconstruction batch.
    Rebirth(Box<RebirthBatch<E>>),
    /// Migration R1: promotions performed by the sender.
    Promote(Vec<Promotion>),
    /// Migration R2: the sender needs replicas of these vertices.
    ReplicaRequest(Vec<Vid>),
    /// Migration R3: granted replicas.
    ReplicaGrant(Vec<ReplicaGrant<V>>),
    /// Migration R4/R6: `(vid, pos)` placements to record in master meta.
    ReplicaPlaced(Vec<(Vid, u32)>),
    /// Migration R5/R7: mirror designation / meta refresh.
    MirrorUpdate(Vec<MirrorUpdate<V, M>>),
}

/// A survivor's complete contribution to one Rebirth reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct RebirthBatch<E> {
    /// Iteration at which the cluster resumes after recovery.
    pub resume_iter: u64,
    /// Number of surviving nodes contributing batches (the newbie counts
    /// arrivals against this).
    pub num_survivors: u32,
    /// Recovered copies.
    pub entries: Vec<E>,
}

/// Edge-cut cluster messages ([`ProtoMsg`] instantiated for the edge-cut
/// model; the unused `Gather` accumulator is `()`).
pub type EcMsg<V> = ProtoMsg<V, (), EcRecoverEntry<V>, MasterMeta>;

/// Vertex-cut cluster messages.
pub type VcMsg<V, A> = ProtoMsg<V, A, VcRecoverEntry<V>, VcMeta>;

/// A vertex-cut recovered copy (no edges — those come from edge-ckpt files).
#[derive(Debug, Clone, PartialEq)]
pub struct VcRecoverEntry<V> {
    /// The vertex.
    pub vid: Vid,
    /// Array position on the node being reconstructed.
    pub pos: u32,
    /// Role the copy had there.
    pub kind: CopyKind,
    /// Node mastering the vertex.
    pub master_node: NodeId,
    /// Last committed value.
    pub value: V,
    /// Full state (masters and mirrors).
    pub meta: Option<Box<VcMeta>>,
}

impl<V> VcRecoverEntry<V> {
    /// Accounted wire size of one entry, matching the storage codec's
    /// encoding of every field except `meta` (charged separately): `vid +
    /// pos + kind + master_node + value + meta presence flag`.
    pub fn wire_bytes(value_bytes: usize) -> usize {
        4 + 4 + 1 + 4 + value_bytes + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_storage::codec::Encode;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m: EcMsg<f64> = EcMsg::Sync(vec![VertexSync {
            pos: 1,
            value: 0.5,
            activate: true,
        }]);
        assert_eq!(m.clone(), m);
    }

    /// The accounted wire sizes must equal the actual encoded sizes of the
    /// corresponding bytes, so the paper's communication-cost numbers can't
    /// silently drift from the byte encoding the fault-tolerance layers
    /// really use. Frame layouts (sizes in bytes):
    ///
    /// | frame  | tag | count      | flags  | id column        | payload column        |
    /// |--------|-----|------------|--------|------------------|-----------------------|
    /// | sync   | 1   | uvarint(n) | ⌈2n/8⌉ | Σ zzvarint(Δpos) | Σ full‖(off,len,span) |
    /// | gather | 1   | uvarint(n) | —      | Σ zzvarint(Δvid) | Σ accum encoding      |
    /// | mirror | 1   | uvarint(n) | —      | Σ zzvarint(Δvid) | Σ meta estimate       |
    ///
    /// Recovery entries, promotions, and grants stay scalar-coded.
    #[test]
    fn accounted_sizes_match_codec() {
        // A VertexSync batch is charged as one columnar sync frame: encode
        // the same records through the real frame codec and compare.
        let batch = [
            VertexSync {
                pos: 7,
                value: 1.5f64,
                activate: true,
            },
            VertexSync {
                pos: 9,
                value: -2.5f64,
                activate: false,
            },
        ];
        let values: Vec<Vec<u8>> = batch
            .iter()
            .map(|s| {
                let mut b = Vec::new();
                s.value.encode(&mut b);
                b
            })
            .collect();
        let recs: Vec<crate::wire::SyncRecEnc<'_>> = batch
            .iter()
            .zip(&values)
            .map(|(s, v)| crate::wire::SyncRecEnc {
                pos: s.pos,
                activate: s.activate,
                value: v,
                span: None,
            })
            .collect();
        let mut frame = Vec::new();
        crate::wire::encode_sync_frame(&recs, &mut frame);
        let mut accounted = crate::wire::sync_frame_overhead(batch.len() as u64);
        let mut prev = 0u32;
        for s in &batch {
            accounted += crate::wire::sync_record_bytes(s.pos, prev, 8, None);
            prev = s.pos;
        }
        assert_eq!(accounted, frame.len() as u64);

        // EcRecoverEntry sans meta: vid, pos, kind (one byte), master_node,
        // value, last_activate, active, in_edges, out_local, meta flag.
        let in_edges: Vec<(u32, f32)> = vec![(3, 0.5), (9, 0.25)];
        let out_local: Vec<u32> = vec![1, 2, 3];
        let mut buf = Vec::new();
        4u32.encode(&mut buf); // vid
        2u32.encode(&mut buf); // pos
        0u8.encode(&mut buf); // kind discriminant
        1u32.encode(&mut buf); // master_node
        1.5f64.encode(&mut buf); // value
        true.encode(&mut buf); // last_activate
        false.encode(&mut buf); // active
        in_edges.encode(&mut buf);
        out_local.encode(&mut buf);
        Option::<u8>::None.encode(&mut buf); // meta presence flag
        assert_eq!(
            EcRecoverEntry::<f64>::wire_bytes(8, in_edges.len(), out_local.len()),
            buf.len()
        );

        // VcRecoverEntry sans meta: vid, pos, kind, master_node, value,
        // meta flag.
        let mut buf = Vec::new();
        4u32.encode(&mut buf);
        2u32.encode(&mut buf);
        0u8.encode(&mut buf);
        1u32.encode(&mut buf);
        1.5f64.encode(&mut buf);
        Option::<u8>::None.encode(&mut buf);
        assert_eq!(VcRecoverEntry::<f64>::wire_bytes(8), buf.len());
    }
}

//! Wire message types.
//!
//! Messages travel between simulated nodes as owned values over channels;
//! byte sizes are *accounted* (for the paper's communication-cost numbers)
//! rather than serialised. Only DFS content (checkpoints, edge-ckpt files)
//! goes through the binary codec. Batch-shaped messages — [`ProtoMsg::Sync`],
//! [`ProtoMsg::Gather`], [`ProtoMsg::MirrorUpdate`] — are charged as
//! [columnar frames](crate::wire): one frame header per destination per
//! superstep, positions/IDs as zigzag-varint delta columns. The remaining
//! recovery messages are charged per record against the scalar codec; the
//! `accounted_sizes_match_codec` test pins both equalities.

use imitator_cluster::{NodeId, WireCodec};
use imitator_engine::{CopyKind, MasterMeta, VcMeta};
use imitator_graph::Vid;
use imitator_storage::codec::{read_uvarint, write_uvarint, Decode, DecodeError, Encode, Reader};

use crate::ckpt::{dec_meta, dec_vc_meta, enc_meta, enc_vc_meta, kind_bits, kind_from_bits};
use crate::wire::{
    decode_gather_frame, decode_sync_frame, encode_gather_frame, encode_sync_frame, SyncRecEnc,
    GATHER_FRAME_TAG, SYNC_FRAME_TAG,
};

/// One vertex's synchronisation record, master → replica (Algorithm 1
/// line 6). With replication FT on, the same record doubles as the mirror's
/// dynamic-state refresh: `activate` is the scatter bit the mirror stores
/// for activation replay (§5.1.3).
///
/// Position-addressed, like the recovery entries (§5.1.2): the master knows
/// every replica's array position on its destination node, so the receiver
/// applies the record straight into its vertex array — no per-record
/// ID-to-position lookup on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexSync<V> {
    /// The replica's array position on the destination node.
    pub pos: u32,
    /// Its new committed value.
    pub value: V,
    /// The scatter decision of this update.
    pub activate: bool,
}

/// One recovered vertex copy, shipped to the node reconstructing it.
///
/// Position-addressed (§5.1.2): the receiver places it straight into its
/// vertex array slot, no lookups, no contention.
#[derive(Debug, Clone, PartialEq)]
pub struct EcRecoverEntry<V> {
    /// The vertex.
    pub vid: Vid,
    /// Array position on the node being reconstructed.
    pub pos: u32,
    /// Role the copy had there.
    pub kind: CopyKind,
    /// Node mastering the vertex (post-recovery view).
    pub master_node: NodeId,
    /// Last committed value.
    pub value: V,
    /// Last synchronised scatter bit, replayed to rebuild activation.
    pub last_activate: bool,
    /// Whether the master considers the vertex active (only meaningful when
    /// `kind` is `Master` and the sender *is* the master's own node — for
    /// mirror-recovered masters activation comes from replay instead).
    pub active: bool,
    /// In-edges in reconstructed-node-local positions (masters only).
    pub in_edges: Vec<(u32, f32)>,
    /// Out-edge targets in reconstructed-node-local positions.
    pub out_local: Vec<u32>,
    /// Full state (masters and mirrors).
    pub meta: Option<Box<MasterMeta>>,
}

impl<V> EcRecoverEntry<V> {
    /// Accounted wire size of one entry, matching the storage codec's
    /// encoding of every field except `meta` (mirror full state is charged
    /// separately by the meta-refresh estimates): `vid + pos + kind +
    /// master_node + value + last_activate + active + in_edges (length
    /// prefix + 8 per edge) + out_local (length prefix + 4 per target) +
    /// meta presence flag`.
    pub fn wire_bytes(value_bytes: usize, in_edges: usize, out_local: usize) -> usize {
        4 + 4 + 1 + 4 + value_bytes + 1 + 1 + (8 + 8 * in_edges) + (8 + 4 * out_local) + 1
    }
}

/// Migration round 1: a mirror promoted itself to master (§5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// The vertex whose master moved.
    pub vid: Vid,
    /// The surviving node now mastering it.
    pub new_master: NodeId,
    /// The master's array position there.
    pub new_pos: u32,
    /// The crashed node that used to master it.
    pub old_node: NodeId,
    /// The master's array position on the crashed node — peers use
    /// `(old_node, old_pos)` to rewrite position-addressed consumer tables.
    pub old_pos: u32,
}

/// Migration round 3: a master hands a fresh replica of `vid` to a node
/// that needs one for local-access semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaGrant<V> {
    /// The vertex.
    pub vid: Vid,
    /// Current value.
    pub value: V,
    /// Last committed scatter bit (for activation replay).
    pub last_activate: bool,
    /// The master's node.
    pub master_node: NodeId,
}

/// Migration rounds 5-7: mirror designation / full-state refresh. When
/// `value` is `Some`, the receiver has no copy yet and creates one (a brand
/// new FT replica); otherwise it upgrades or refreshes the existing copy.
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorUpdate<V, M> {
    /// The vertex.
    pub vid: Vid,
    /// The refreshed full state.
    pub meta: Box<M>,
    /// Value for receivers without a copy.
    pub value: Option<V>,
    /// Last committed scatter bit.
    pub last_activate: bool,
    /// The sending master's node.
    pub master_node: NodeId,
}

/// The model-generic cluster protocol, parameterized by value `V`, gather
/// accumulator `A`, Rebirth recovery entry `E`, and replica meta `M`.
///
/// Both compute models speak this one protocol; the [`EcMsg`] and [`VcMsg`]
/// aliases pin the type parameters per model (the edge-cut model never
/// sends `Gather` — its gather is fused into local compute).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg<V, A, E, M> {
    /// Gather phase: partial accumulators, edge holder → master
    /// (vertex-cut only).
    Gather(Vec<(Vid, A)>),
    /// Normal-execution value synchronisation, master → replicas.
    Sync(Vec<VertexSync<V>>),
    /// Rebirth: survivor → newbie reconstruction batch.
    Rebirth(Box<RebirthBatch<E>>),
    /// Migration R1: promotions performed by the sender.
    Promote(Vec<Promotion>),
    /// Migration R2: the sender needs replicas of these vertices.
    ReplicaRequest(Vec<Vid>),
    /// Migration R3: granted replicas.
    ReplicaGrant(Vec<ReplicaGrant<V>>),
    /// Migration R4/R6: `(vid, pos)` placements to record in master meta.
    ReplicaPlaced(Vec<(Vid, u32)>),
    /// Migration R5/R7: mirror designation / meta refresh.
    MirrorUpdate(Vec<MirrorUpdate<V, M>>),
}

/// A survivor's complete contribution to one Rebirth reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct RebirthBatch<E> {
    /// Iteration at which the cluster resumes after recovery.
    pub resume_iter: u64,
    /// Number of surviving nodes contributing batches (the newbie counts
    /// arrivals against this).
    pub num_survivors: u32,
    /// Recovered copies.
    pub entries: Vec<E>,
}

/// Edge-cut cluster messages ([`ProtoMsg`] instantiated for the edge-cut
/// model; the unused `Gather` accumulator is `()`).
pub type EcMsg<V> = ProtoMsg<V, (), EcRecoverEntry<V>, MasterMeta>;

/// Vertex-cut cluster messages.
pub type VcMsg<V, A> = ProtoMsg<V, A, VcRecoverEntry<V>, VcMeta>;

/// A vertex-cut recovered copy (no edges — those come from edge-ckpt files).
#[derive(Debug, Clone, PartialEq)]
pub struct VcRecoverEntry<V> {
    /// The vertex.
    pub vid: Vid,
    /// Array position on the node being reconstructed.
    pub pos: u32,
    /// Role the copy had there.
    pub kind: CopyKind,
    /// Node mastering the vertex.
    pub master_node: NodeId,
    /// Last committed value.
    pub value: V,
    /// Full state (masters and mirrors).
    pub meta: Option<Box<VcMeta>>,
}

impl<V> VcRecoverEntry<V> {
    /// Accounted wire size of one entry, matching the storage codec's
    /// encoding of every field except `meta` (charged separately): `vid +
    /// pos + kind + master_node + value + meta presence flag`.
    pub fn wire_bytes(value_bytes: usize) -> usize {
        4 + 4 + 1 + 4 + value_bytes + 1
    }
}

// ---------------------------------------------------------------------------
// On-the-wire codec (TCP transport).
//
// In-process transports move `ProtoMsg` as owned values; the TCP backend
// serialises them. The batch-shaped variants go through the columnar
// frame codecs from [`crate::wire`] — the same layouts the byte accounting
// charges — dispatched by their frame tags; the recovery variants get one
// tag byte plus the scalar storage codec, reusing the checkpoint meta
// codecs for full replica state. Sync frames always carry full values on
// the wire (`span: None`): delta payloads need the receiver's base value,
// which a frame decoded off a socket cannot consult.
// ---------------------------------------------------------------------------

const TAG_REBIRTH: u8 = 0x01;
const TAG_PROMOTE: u8 = 0x02;
const TAG_REPLICA_REQUEST: u8 = 0x03;
const TAG_REPLICA_GRANT: u8 = 0x04;
const TAG_REPLICA_PLACED: u8 = 0x05;
const TAG_MIRROR_UPDATE: u8 = 0x06;

fn dec_vid(r: &mut Reader<'_>) -> Result<Vid, DecodeError> {
    Ok(Vid::new(u32::decode(r)?))
}

fn dec_node(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId::new(u32::decode(r)?))
}

/// Reads a collection length, rejecting prefixes that exceed the payload
/// (every element encodes to at least one byte).
fn dec_len(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let n = read_uvarint(r)? as usize;
    if n > r.remaining() {
        return Err(DecodeError::Corrupt("length prefix exceeds payload"));
    }
    Ok(n)
}

fn enc_sync<V: Encode>(recs: &[VertexSync<V>], out: &mut Vec<u8>) {
    let values: Vec<Vec<u8>> = recs
        .iter()
        .map(|s| {
            let mut b = Vec::new();
            s.value.encode(&mut b);
            b
        })
        .collect();
    let enc: Vec<SyncRecEnc<'_>> = recs
        .iter()
        .zip(&values)
        .map(|(s, v)| SyncRecEnc {
            pos: s.pos,
            activate: s.activate,
            value: v,
            span: None,
        })
        .collect();
    encode_sync_frame(&enc, out);
}

fn dec_sync<V: Decode>(bytes: &[u8]) -> Result<Vec<VertexSync<V>>, DecodeError> {
    // Wire frames carry full values only, so the base callback is never
    // consulted on well-formed input; a hostile delta flag fails cleanly.
    Ok(decode_sync_frame::<V>(bytes, |_| Vec::new())?
        .into_iter()
        .map(|r| VertexSync {
            pos: r.pos,
            value: r.value,
            activate: r.activate,
        })
        .collect())
}

fn enc_gather<A: Encode + Clone>(recs: &[(Vid, A)], out: &mut Vec<u8>) {
    let raw: Vec<(u32, A)> = recs.iter().map(|(v, a)| (v.raw(), a.clone())).collect();
    encode_gather_frame(&raw, out);
}

fn dec_gather<A: Decode>(bytes: &[u8]) -> Result<Vec<(Vid, A)>, DecodeError> {
    Ok(decode_gather_frame::<A>(bytes)?
        .into_iter()
        .map(|(v, a)| (Vid::new(v), a))
        .collect())
}

fn enc_batch<E>(b: &RebirthBatch<E>, buf: &mut Vec<u8>, enc_e: impl Fn(&E, &mut Vec<u8>)) {
    b.resume_iter.encode(buf);
    b.num_survivors.encode(buf);
    write_uvarint(buf, b.entries.len() as u64);
    for e in &b.entries {
        enc_e(e, buf);
    }
}

fn dec_batch<E>(
    r: &mut Reader<'_>,
    dec_e: impl Fn(&mut Reader<'_>) -> Result<E, DecodeError>,
) -> Result<RebirthBatch<E>, DecodeError> {
    let resume_iter = u64::decode(r)?;
    let num_survivors = u32::decode(r)?;
    let n = dec_len(r)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(dec_e(r)?);
    }
    Ok(RebirthBatch {
        resume_iter,
        num_survivors,
        entries,
    })
}

fn enc_ec_entry<V: Encode>(e: &EcRecoverEntry<V>, buf: &mut Vec<u8>) {
    e.vid.raw().encode(buf);
    e.pos.encode(buf);
    kind_bits(e.kind).encode(buf);
    e.master_node.raw().encode(buf);
    e.value.encode(buf);
    e.last_activate.encode(buf);
    e.active.encode(buf);
    e.in_edges.encode(buf);
    e.out_local.encode(buf);
    match &e.meta {
        Some(m) => {
            true.encode(buf);
            enc_meta(m, buf);
        }
        None => false.encode(buf),
    }
}

fn dec_ec_entry<V: Decode>(r: &mut Reader<'_>) -> Result<EcRecoverEntry<V>, DecodeError> {
    Ok(EcRecoverEntry {
        vid: dec_vid(r)?,
        pos: u32::decode(r)?,
        kind: kind_from_bits(u8::decode(r)?)?,
        master_node: dec_node(r)?,
        value: V::decode(r)?,
        last_activate: bool::decode(r)?,
        active: bool::decode(r)?,
        in_edges: Vec::<(u32, f32)>::decode(r)?,
        out_local: Vec::<u32>::decode(r)?,
        meta: bool::decode(r)?
            .then(|| dec_meta(r).map(Box::new))
            .transpose()?,
    })
}

fn enc_vc_entry<V: Encode>(e: &VcRecoverEntry<V>, buf: &mut Vec<u8>) {
    e.vid.raw().encode(buf);
    e.pos.encode(buf);
    kind_bits(e.kind).encode(buf);
    e.master_node.raw().encode(buf);
    e.value.encode(buf);
    match &e.meta {
        Some(m) => {
            true.encode(buf);
            enc_vc_meta(m, buf);
        }
        None => false.encode(buf),
    }
}

fn dec_vc_entry<V: Decode>(r: &mut Reader<'_>) -> Result<VcRecoverEntry<V>, DecodeError> {
    Ok(VcRecoverEntry {
        vid: dec_vid(r)?,
        pos: u32::decode(r)?,
        kind: kind_from_bits(u8::decode(r)?)?,
        master_node: dec_node(r)?,
        value: V::decode(r)?,
        meta: bool::decode(r)?
            .then(|| dec_vc_meta(r).map(Box::new))
            .transpose()?,
    })
}

fn enc_promotions(ps: &[Promotion], buf: &mut Vec<u8>) {
    write_uvarint(buf, ps.len() as u64);
    for p in ps {
        p.vid.raw().encode(buf);
        p.new_master.raw().encode(buf);
        p.new_pos.encode(buf);
        p.old_node.raw().encode(buf);
        p.old_pos.encode(buf);
    }
}

fn dec_promotions(r: &mut Reader<'_>) -> Result<Vec<Promotion>, DecodeError> {
    let n = dec_len(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Promotion {
            vid: dec_vid(r)?,
            new_master: dec_node(r)?,
            new_pos: u32::decode(r)?,
            old_node: dec_node(r)?,
            old_pos: u32::decode(r)?,
        });
    }
    Ok(out)
}

fn enc_grants<V: Encode>(gs: &[ReplicaGrant<V>], buf: &mut Vec<u8>) {
    write_uvarint(buf, gs.len() as u64);
    for g in gs {
        g.vid.raw().encode(buf);
        g.value.encode(buf);
        g.last_activate.encode(buf);
        g.master_node.raw().encode(buf);
    }
}

fn dec_grants<V: Decode>(r: &mut Reader<'_>) -> Result<Vec<ReplicaGrant<V>>, DecodeError> {
    let n = dec_len(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ReplicaGrant {
            vid: dec_vid(r)?,
            value: V::decode(r)?,
            last_activate: bool::decode(r)?,
            master_node: dec_node(r)?,
        });
    }
    Ok(out)
}

fn enc_mirror_updates<V: Encode, M>(
    us: &[MirrorUpdate<V, M>],
    buf: &mut Vec<u8>,
    enc_m: impl Fn(&M, &mut Vec<u8>),
) {
    write_uvarint(buf, us.len() as u64);
    for u in us {
        u.vid.raw().encode(buf);
        enc_m(&u.meta, buf);
        u.value.encode(buf);
        u.last_activate.encode(buf);
        u.master_node.raw().encode(buf);
    }
}

fn dec_mirror_updates<V: Decode, M>(
    r: &mut Reader<'_>,
    dec_m: impl Fn(&mut Reader<'_>) -> Result<M, DecodeError>,
) -> Result<Vec<MirrorUpdate<V, M>>, DecodeError> {
    let n = dec_len(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(MirrorUpdate {
            vid: dec_vid(r)?,
            meta: Box::new(dec_m(r)?),
            value: Option::<V>::decode(r)?,
            last_activate: bool::decode(r)?,
            master_node: dec_node(r)?,
        });
    }
    Ok(out)
}

fn enc_vids(vids: &[Vid], buf: &mut Vec<u8>) {
    write_uvarint(buf, vids.len() as u64);
    for v in vids {
        v.raw().encode(buf);
    }
}

fn dec_vids(r: &mut Reader<'_>) -> Result<Vec<Vid>, DecodeError> {
    let n = dec_len(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_vid(r)?);
    }
    Ok(out)
}

fn enc_placed(ps: &[(Vid, u32)], buf: &mut Vec<u8>) {
    write_uvarint(buf, ps.len() as u64);
    for &(v, pos) in ps {
        v.raw().encode(buf);
        pos.encode(buf);
    }
}

fn dec_placed(r: &mut Reader<'_>) -> Result<Vec<(Vid, u32)>, DecodeError> {
    let n = dec_len(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((dec_vid(r)?, u32::decode(r)?));
    }
    Ok(out)
}

/// Finishes a scalar-coded decode: the whole payload must be consumed.
fn settle<T>(r: Reader<'_>, value: T) -> Option<T> {
    (r.remaining() == 0).then_some(value)
}

impl<V: Encode + Decode> WireCodec for EcMsg<V> {
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        match self {
            ProtoMsg::Sync(recs) => enc_sync(recs, buf),
            ProtoMsg::Gather(recs) => enc_gather(recs, buf),
            ProtoMsg::Rebirth(b) => {
                buf.push(TAG_REBIRTH);
                enc_batch(b, buf, enc_ec_entry);
            }
            ProtoMsg::Promote(ps) => {
                buf.push(TAG_PROMOTE);
                enc_promotions(ps, buf);
            }
            ProtoMsg::ReplicaRequest(vids) => {
                buf.push(TAG_REPLICA_REQUEST);
                enc_vids(vids, buf);
            }
            ProtoMsg::ReplicaGrant(gs) => {
                buf.push(TAG_REPLICA_GRANT);
                enc_grants(gs, buf);
            }
            ProtoMsg::ReplicaPlaced(ps) => {
                buf.push(TAG_REPLICA_PLACED);
                enc_placed(ps, buf);
            }
            ProtoMsg::MirrorUpdate(us) => {
                buf.push(TAG_MIRROR_UPDATE);
                enc_mirror_updates(us, buf, enc_meta);
            }
        }
    }

    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        let tag = *bytes.first()?;
        match tag {
            SYNC_FRAME_TAG => dec_sync(bytes).ok().map(ProtoMsg::Sync),
            GATHER_FRAME_TAG => dec_gather(bytes).ok().map(ProtoMsg::Gather),
            _ => {
                let mut r = Reader::new(&bytes[1..]);
                let msg = match tag {
                    TAG_REBIRTH => {
                        ProtoMsg::Rebirth(Box::new(dec_batch(&mut r, dec_ec_entry).ok()?))
                    }
                    TAG_PROMOTE => ProtoMsg::Promote(dec_promotions(&mut r).ok()?),
                    TAG_REPLICA_REQUEST => ProtoMsg::ReplicaRequest(dec_vids(&mut r).ok()?),
                    TAG_REPLICA_GRANT => ProtoMsg::ReplicaGrant(dec_grants(&mut r).ok()?),
                    TAG_REPLICA_PLACED => ProtoMsg::ReplicaPlaced(dec_placed(&mut r).ok()?),
                    TAG_MIRROR_UPDATE => {
                        ProtoMsg::MirrorUpdate(dec_mirror_updates(&mut r, dec_meta).ok()?)
                    }
                    _ => return None,
                };
                settle(r, msg)
            }
        }
    }
}

impl<V: Encode + Decode, A: Encode + Decode + Clone> WireCodec for VcMsg<V, A> {
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        match self {
            ProtoMsg::Sync(recs) => enc_sync(recs, buf),
            ProtoMsg::Gather(recs) => enc_gather(recs, buf),
            ProtoMsg::Rebirth(b) => {
                buf.push(TAG_REBIRTH);
                enc_batch(b, buf, enc_vc_entry);
            }
            ProtoMsg::Promote(ps) => {
                buf.push(TAG_PROMOTE);
                enc_promotions(ps, buf);
            }
            ProtoMsg::ReplicaRequest(vids) => {
                buf.push(TAG_REPLICA_REQUEST);
                enc_vids(vids, buf);
            }
            ProtoMsg::ReplicaGrant(gs) => {
                buf.push(TAG_REPLICA_GRANT);
                enc_grants(gs, buf);
            }
            ProtoMsg::ReplicaPlaced(ps) => {
                buf.push(TAG_REPLICA_PLACED);
                enc_placed(ps, buf);
            }
            ProtoMsg::MirrorUpdate(us) => {
                buf.push(TAG_MIRROR_UPDATE);
                enc_mirror_updates(us, buf, enc_vc_meta);
            }
        }
    }

    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        let tag = *bytes.first()?;
        match tag {
            SYNC_FRAME_TAG => dec_sync(bytes).ok().map(ProtoMsg::Sync),
            GATHER_FRAME_TAG => dec_gather(bytes).ok().map(ProtoMsg::Gather),
            _ => {
                let mut r = Reader::new(&bytes[1..]);
                let msg = match tag {
                    TAG_REBIRTH => {
                        ProtoMsg::Rebirth(Box::new(dec_batch(&mut r, dec_vc_entry).ok()?))
                    }
                    TAG_PROMOTE => ProtoMsg::Promote(dec_promotions(&mut r).ok()?),
                    TAG_REPLICA_REQUEST => ProtoMsg::ReplicaRequest(dec_vids(&mut r).ok()?),
                    TAG_REPLICA_GRANT => ProtoMsg::ReplicaGrant(dec_grants(&mut r).ok()?),
                    TAG_REPLICA_PLACED => ProtoMsg::ReplicaPlaced(dec_placed(&mut r).ok()?),
                    TAG_MIRROR_UPDATE => {
                        ProtoMsg::MirrorUpdate(dec_mirror_updates(&mut r, dec_vc_meta).ok()?)
                    }
                    _ => return None,
                };
                settle(r, msg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_storage::codec::Encode;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m: EcMsg<f64> = EcMsg::Sync(vec![VertexSync {
            pos: 1,
            value: 0.5,
            activate: true,
        }]);
        assert_eq!(m.clone(), m);
    }

    /// The accounted wire sizes must equal the actual encoded sizes of the
    /// corresponding bytes, so the paper's communication-cost numbers can't
    /// silently drift from the byte encoding the fault-tolerance layers
    /// really use. Frame layouts (sizes in bytes):
    ///
    /// | frame  | tag | count      | flags  | id column        | payload column        |
    /// |--------|-----|------------|--------|------------------|-----------------------|
    /// | sync   | 1   | uvarint(n) | ⌈2n/8⌉ | Σ zzvarint(Δpos) | Σ full‖(off,len,span) |
    /// | gather | 1   | uvarint(n) | —      | Σ zzvarint(Δvid) | Σ accum encoding      |
    /// | mirror | 1   | uvarint(n) | —      | Σ zzvarint(Δvid) | Σ meta estimate       |
    ///
    /// Recovery entries, promotions, and grants stay scalar-coded.
    #[test]
    fn accounted_sizes_match_codec() {
        // A VertexSync batch is charged as one columnar sync frame: encode
        // the same records through the real frame codec and compare.
        let batch = [
            VertexSync {
                pos: 7,
                value: 1.5f64,
                activate: true,
            },
            VertexSync {
                pos: 9,
                value: -2.5f64,
                activate: false,
            },
        ];
        let values: Vec<Vec<u8>> = batch
            .iter()
            .map(|s| {
                let mut b = Vec::new();
                s.value.encode(&mut b);
                b
            })
            .collect();
        let recs: Vec<crate::wire::SyncRecEnc<'_>> = batch
            .iter()
            .zip(&values)
            .map(|(s, v)| crate::wire::SyncRecEnc {
                pos: s.pos,
                activate: s.activate,
                value: v,
                span: None,
            })
            .collect();
        let mut frame = Vec::new();
        crate::wire::encode_sync_frame(&recs, &mut frame);
        let mut accounted = crate::wire::sync_frame_overhead(batch.len() as u64);
        let mut prev = 0u32;
        for s in &batch {
            accounted += crate::wire::sync_record_bytes(s.pos, prev, 8, None);
            prev = s.pos;
        }
        assert_eq!(accounted, frame.len() as u64);

        // EcRecoverEntry sans meta: vid, pos, kind (one byte), master_node,
        // value, last_activate, active, in_edges, out_local, meta flag.
        let in_edges: Vec<(u32, f32)> = vec![(3, 0.5), (9, 0.25)];
        let out_local: Vec<u32> = vec![1, 2, 3];
        let mut buf = Vec::new();
        4u32.encode(&mut buf); // vid
        2u32.encode(&mut buf); // pos
        0u8.encode(&mut buf); // kind discriminant
        1u32.encode(&mut buf); // master_node
        1.5f64.encode(&mut buf); // value
        true.encode(&mut buf); // last_activate
        false.encode(&mut buf); // active
        in_edges.encode(&mut buf);
        out_local.encode(&mut buf);
        Option::<u8>::None.encode(&mut buf); // meta presence flag
        assert_eq!(
            EcRecoverEntry::<f64>::wire_bytes(8, in_edges.len(), out_local.len()),
            buf.len()
        );

        // VcRecoverEntry sans meta: vid, pos, kind, master_node, value,
        // meta flag.
        let mut buf = Vec::new();
        4u32.encode(&mut buf);
        2u32.encode(&mut buf);
        0u8.encode(&mut buf);
        1u32.encode(&mut buf);
        1.5f64.encode(&mut buf);
        Option::<u8>::None.encode(&mut buf);
        assert_eq!(VcRecoverEntry::<f64>::wire_bytes(8), buf.len());
    }

    fn roundtrip_ec(m: &EcMsg<f64>) {
        let mut buf = Vec::new();
        m.encode_wire(&mut buf);
        assert_eq!(EcMsg::<f64>::decode_wire(&buf).as_ref(), Some(m));
    }

    fn roundtrip_vc(m: &VcMsg<f64, f64>) {
        let mut buf = Vec::new();
        m.encode_wire(&mut buf);
        assert_eq!(VcMsg::<f64, f64>::decode_wire(&buf).as_ref(), Some(m));
    }

    #[test]
    fn wire_codec_roundtrips_every_variant() {
        let meta = MasterMeta {
            master_pos: 3,
            replica_nodes: vec![NodeId::new(1), NodeId::new(2)],
            replica_positions: vec![9, 11],
            mirror_nodes: vec![NodeId::new(2)],
            in_edges_owner: vec![(4, 0.5), (6, -1.25)],
            in_edge_srcs: vec![Vid::new(40), Vid::new(60)],
            out_local_owner: vec![1, 2],
            out_remote: vec![],
        };
        let vc_meta = VcMeta {
            master_pos: 5,
            replica_nodes: vec![NodeId::new(3)],
            replica_positions: vec![0],
            mirror_nodes: vec![NodeId::new(3)],
        };
        roundtrip_ec(&EcMsg::Sync(vec![
            VertexSync {
                pos: 7,
                value: 1.5,
                activate: true,
            },
            VertexSync {
                pos: 1_000_000,
                value: -0.25,
                activate: false,
            },
        ]));
        roundtrip_ec(&EcMsg::Sync(vec![]));
        roundtrip_ec(&EcMsg::Gather(vec![(Vid::new(3), ()), (Vid::new(900), ())]));
        roundtrip_ec(&EcMsg::Rebirth(Box::new(RebirthBatch {
            resume_iter: 17,
            num_survivors: 3,
            entries: vec![
                EcRecoverEntry {
                    vid: Vid::new(12),
                    pos: 4,
                    kind: CopyKind::Master,
                    master_node: NodeId::new(0),
                    value: 2.5,
                    last_activate: true,
                    active: false,
                    in_edges: vec![(1, 0.5)],
                    out_local: vec![2, 3],
                    meta: Some(Box::new(meta.clone())),
                },
                EcRecoverEntry {
                    vid: Vid::new(13),
                    pos: 5,
                    kind: CopyKind::Replica,
                    master_node: NodeId::new(1),
                    value: -1.0,
                    last_activate: false,
                    active: true,
                    in_edges: vec![],
                    out_local: vec![],
                    meta: None,
                },
            ],
        })));
        roundtrip_ec(&EcMsg::Promote(vec![Promotion {
            vid: Vid::new(8),
            new_master: NodeId::new(2),
            new_pos: 14,
            old_node: NodeId::new(0),
            old_pos: 3,
        }]));
        roundtrip_ec(&EcMsg::ReplicaRequest(vec![Vid::new(1), Vid::new(2)]));
        roundtrip_ec(&EcMsg::ReplicaGrant(vec![ReplicaGrant {
            vid: Vid::new(5),
            value: 0.125,
            last_activate: true,
            master_node: NodeId::new(1),
        }]));
        roundtrip_ec(&EcMsg::ReplicaPlaced(vec![(Vid::new(5), 77)]));
        roundtrip_ec(&EcMsg::MirrorUpdate(vec![MirrorUpdate {
            vid: Vid::new(6),
            meta: Box::new(meta),
            value: Some(3.5),
            last_activate: false,
            master_node: NodeId::new(2),
        }]));
        roundtrip_vc(&VcMsg::Gather(vec![
            (Vid::new(4), 0.75),
            (Vid::new(5), -2.0),
        ]));
        roundtrip_vc(&VcMsg::Rebirth(Box::new(RebirthBatch {
            resume_iter: 2,
            num_survivors: 1,
            entries: vec![VcRecoverEntry {
                vid: Vid::new(9),
                pos: 0,
                kind: CopyKind::Mirror,
                master_node: NodeId::new(3),
                value: 4.5,
                meta: Some(Box::new(vc_meta.clone())),
            }],
        })));
        roundtrip_vc(&VcMsg::MirrorUpdate(vec![MirrorUpdate {
            vid: Vid::new(10),
            meta: Box::new(vc_meta),
            value: None,
            last_activate: true,
            master_node: NodeId::new(3),
        }]));
    }

    #[test]
    fn wire_codec_rejects_garbage() {
        assert_eq!(EcMsg::<f64>::decode_wire(&[]), None);
        assert_eq!(EcMsg::<f64>::decode_wire(&[0xFF, 0, 0]), None);
        // Trailing bytes after a well-formed scalar message.
        let mut buf = Vec::new();
        EcMsg::<f64>::ReplicaRequest(vec![Vid::new(1)]).encode_wire(&mut buf);
        buf.push(0);
        assert_eq!(EcMsg::<f64>::decode_wire(&buf), None);
        // Truncated payload.
        buf.pop();
        buf.pop();
        assert_eq!(EcMsg::<f64>::decode_wire(&buf), None);
    }
}

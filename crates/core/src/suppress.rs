//! Redundant-sync suppression (§4.3 flavour of "send less").
//!
//! A master's sync record is redundant when the destination replica already
//! holds exactly what the record would install: the codec-encoded value is
//! bitwise identical to the last record shipped there *and* the scatter bit
//! matches. [`SyncFilter`] remembers, per local master position, the last
//! committed `(bytes, activate)` pair shipped to the replicas, plus a
//! per-destination validity epoch so recovery can cheaply mark a single
//! destination's replicas as unknown (its state was rebuilt from snapshots,
//! not from our last sync).
//!
//! # Fault-tolerance correctness
//!
//! The filter only ever *skips* a record when the destination provably holds
//! the identical `(value, activate)` pair, so every replica still equals the
//! state an unfiltered run would have installed — recovery paths
//! (Rebirth reconstruction, Migration grants, checkpoint full-sync) read the
//! master's committed state, which by construction equals the filter entry.
//! Staged entries only become authoritative after the sync barrier commits
//! (`commit`); a failed barrier rolls them back (`rollback`), mirroring how
//! the runners discard the iteration's staged updates.
//!
//! # Adaptive dormancy
//!
//! Staging costs an encode + compare per master update, which is pure
//! overhead in supersteps where every value changes (e.g. early PageRank
//! iterations). The filter therefore mutes itself: a committed superstep
//! that staged real traffic against valid entries yet matched *nothing*
//! sends the filter dormant for an exponentially growing number of
//! supersteps (4, 8, … capped at 256), after which it probes again by
//! re-staging. Entering dormancy clears the entry table — entries go stale
//! the moment staging stops, and a stale match could suppress a record the
//! destination never saw. On large partitions (≥ 4096 local positions)
//! probe supersteps additionally stage only one position in eight (a
//! residue class that rotates between dormancy cycles), so even the probe
//! costs an eighth of a full seed; the first hit escalates to full staging.
//! Sampling can only change while the table is empty, so a sampled-out
//! position never holds a stale entry. Dormancy and sampling are
//! deterministic per node (a pure function of that node's update stream)
//! and only ever suppress *less*, so they cannot affect results or
//! recovery correctness.

use imitator_cluster::NodeId;
use imitator_storage::codec::Encode;

/// Last committed sync for one local master position. `epoch == 0` marks a
/// vacant slot; the encoded value lives in `SyncFilter::table` at
/// `start..start + len`. Flat storage: seeding or re-seeding thousands of
/// masters costs zero allocations beyond amortised arena growth.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    epoch: u64,
    activate: bool,
    start: u32,
    len: u32,
}

/// One staged record: its encoded bytes live in `SyncFilter::pending_bytes`
/// at `start..start + len` (a flat arena, so staging never allocates once
/// the buffers are warm — this sits on the per-update hot path).
#[derive(Debug, Clone)]
struct Pending {
    pos: u32,
    activate: bool,
    start: u32,
    len: u32,
}

/// The result of staging one master update against the filter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Staged {
    /// The update is bitwise identical to the last committed sync.
    matches: bool,
    /// Epoch of the entry the update was compared against (0 when the
    /// filter held no entry for the position, or was not staging).
    entry_epoch: u64,
    /// Minimal changed-byte span vs the committed entry's encoded value,
    /// when both encodings have the same width: `(start, len)`. The basis
    /// for delta-encoded sync records (see `crate::delta`); `None` means
    /// no same-width base exists and the full value must ship.
    delta: Option<(u16, u16)>,
}

/// First dormancy window, in supersteps; doubles per unproductive probe.
/// Short on purpose: workloads that churn everywhere for a few supersteps
/// and then stabilise (label propagation, convergent traversals) are back
/// under the filter within a handful of iterations, while steady churners
/// (PageRank) escalate to the cap after a few cheap probes.
const DORMANCY_INITIAL: u32 = 4;
/// Longest the filter stays muted between probes.
const DORMANCY_MAX: u32 = 256;
/// While probing on a large partition, stage only positions whose low bits
/// equal the rotating probe phase: 1 in `SAMPLE_MASK + 1`.
const SAMPLE_MASK: u32 = 7;
/// Partitions smaller than this are probed in full — sampling only pays
/// when seeding the table is expensive, and small tables must not risk
/// missing their few static vertices.
const SAMPLE_DOMAIN_MIN: u32 = 4096;

/// Per-node redundant-sync filter (see module docs).
///
/// `Clone` exists for recovery undo snapshots: an aborted recovery attempt
/// must restore the filter exactly (entries, epochs, dormancy phase) or the
/// suppression decisions — and therefore the wire bytes — would diverge from
/// a run that never aborted.
#[derive(Debug, Clone)]
pub(crate) struct SyncFilter {
    enabled: bool,
    /// Supersteps left before the next probe; `0` means actively staging.
    dormant_left: u32,
    /// Dormancy window the next unproductive probe earns (exponential).
    dormancy: u32,
    /// Whether `entries` was non-empty when this superstep began — a probe
    /// superstep rebuilding an empty table is not judged unproductive.
    had_entries: bool,
    /// Updates staged this superstep that matched their committed entry.
    hits: u64,
    /// Probation: no staged update has matched since the last wake-up.
    /// Large partitions sample during probation (see `sample`).
    probing: bool,
    /// Latched at wake-up: probe supersteps stage only 1 in 8 positions.
    /// May only change while `entries` is empty, so a sampled-out position
    /// can never hold a stale entry.
    sample: bool,
    /// Rotates the sampled residue class between dormancy cycles.
    phase: u32,
    /// Number of local positions, reported by the runner via `set_domain`.
    domain: u32,
    /// Epoch the *next* `commit` stamps on its entries; strictly increasing.
    epoch: u64,
    /// Per destination node: minimum entry epoch still known to be installed
    /// there. Suppression toward `d` requires `entry.epoch >= valid_from[d]`.
    valid_from: Vec<u64>,
    /// Indexed by local master position; vacant slots have `epoch == 0`.
    entries: Vec<Slot>,
    /// Byte arena holding every slot's committed encoded value.
    table: Vec<u8>,
    /// Records staged this superstep, applied by `commit`.
    pending: Vec<Pending>,
    /// Byte arena backing `pending` (see [`Pending`]).
    pending_bytes: Vec<u8>,
    scratch: Vec<u8>,
}

impl SyncFilter {
    pub(crate) fn new(num_nodes: usize, enabled: bool) -> Self {
        SyncFilter {
            enabled,
            dormant_left: 0,
            dormancy: DORMANCY_INITIAL,
            had_entries: false,
            hits: 0,
            probing: true,
            sample: false,
            phase: 0,
            domain: 0,
            epoch: 1,
            valid_from: vec![0; num_nodes],
            entries: Vec::new(),
            table: Vec::new(),
            pending: Vec::new(),
            pending_bytes: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Reports how many local positions this node's graph holds. Enables
    /// sampled probing on large partitions; safe to call any time before the
    /// first superstep (it only takes effect while the table is empty).
    pub(crate) fn set_domain(&mut self, domain: u32) {
        self.domain = domain;
        if self.entries.is_empty() && self.pending.is_empty() {
            self.sample = domain >= SAMPLE_DOMAIN_MIN;
        }
    }

    /// Compares one master update against the last committed sync for
    /// `pos` and, when it differs, stages it as the new last-shipped state.
    /// Use [`SyncFilter::suppress`] with the result for each destination.
    pub(crate) fn stage<V: Encode>(&mut self, pos: u32, value: &V, activate: bool) -> Staged {
        if !self.enabled
            || self.dormant_left > 0
            || (self.probing && self.sample && (pos ^ self.phase) & SAMPLE_MASK != 0)
        {
            return Staged {
                matches: false,
                entry_epoch: 0,
                delta: None,
            };
        }
        self.scratch.clear();
        value.encode(&mut self.scratch);
        let mut entry_epoch = 0;
        let mut delta = None;
        if let Some(e) = self.entries.get(pos as usize) {
            if e.epoch != 0 {
                entry_epoch = e.epoch;
                let old = &self.table[e.start as usize..(e.start + e.len) as usize];
                if e.activate == activate && old == &self.scratch[..] {
                    self.hits += 1;
                    return Staged {
                        matches: true,
                        entry_epoch,
                        delta: None,
                    };
                }
                delta = crate::wire::min_span(old, &self.scratch);
                // Debug builds prove the wire format on every staged record:
                // framing it against this base and decoding the frame back
                // must reassemble the staged value exactly. (The in-memory
                // fabric ships typed records; the columnar codec defines —
                // and the driver charges — their encoded sizes.)
                if cfg!(debug_assertions) {
                    let mut wire = Vec::new();
                    crate::wire::encode_sync_frame(
                        &[crate::wire::SyncRecEnc {
                            pos,
                            activate,
                            value: &self.scratch,
                            span: delta,
                        }],
                        &mut wire,
                    );
                    let rec = crate::wire::decode_sync_frame_one(&wire, || old.to_vec())
                        .expect("staged sync record decodes");
                    assert_eq!(
                        (rec.pos, rec.activate, &rec.value[..]),
                        (pos, activate, &self.scratch[..]),
                        "columnar codec must reconstruct the staged value"
                    );
                }
            }
        }
        let start = self.pending_bytes.len() as u32;
        self.pending_bytes.extend_from_slice(&self.scratch);
        self.pending.push(Pending {
            pos,
            activate,
            start,
            len: self.scratch.len() as u32,
        });
        Staged {
            matches: false,
            entry_epoch,
            delta,
        }
    }

    /// Whether the staged record may be skipped toward `dest`: it matches the
    /// last committed sync *and* that sync is still known to be installed on
    /// `dest` (not invalidated by a recovery that rebuilt `dest`'s state).
    pub(crate) fn suppress(&self, staged: Staged, dest: NodeId) -> bool {
        self.enabled && staged.matches && staged.entry_epoch >= self.valid_from[dest.index()]
    }

    /// Minimal changed-byte span usable as a delta base toward `dest`: the
    /// committed entry the update was compared against is still installed
    /// there (same validity rule as [`SyncFilter::suppress`]). `None` means
    /// the full value must ship.
    pub(crate) fn delta_span(&self, staged: Staged, dest: NodeId) -> Option<(u16, u16)> {
        if self.enabled
            && staged.entry_epoch != 0
            && staged.entry_epoch >= self.valid_from[dest.index()]
        {
            staged.delta
        } else {
            None
        }
    }

    /// The sync barrier passed: staged records become the authoritative
    /// last-shipped state.
    pub(crate) fn commit(&mut self) {
        if self.dormant_left > 0 {
            self.dormant_left -= 1; // reaching 0 resumes staging (a probe)
            self.epoch += 1;
            return;
        }
        let staged_traffic = !self.pending.is_empty();
        for p in self.pending.drain(..) {
            let pos = p.pos as usize;
            if pos >= self.entries.len() {
                self.entries.resize(pos + 1, Slot::default());
            }
            let src = p.start as usize..(p.start + p.len) as usize;
            let e = &mut self.entries[pos];
            if e.epoch != 0 && e.len == p.len {
                // Same width: overwrite the slot's arena span in place.
                let dst = e.start as usize;
                self.table[dst..dst + p.len as usize].copy_from_slice(&self.pending_bytes[src]);
            } else {
                // Fresh slot (or a width change, which strands the old span
                // until the next `clear` — bounded by value-size variety).
                e.start = self.table.len() as u32;
                self.table.extend_from_slice(&self.pending_bytes[src]);
            }
            e.epoch = self.epoch;
            e.activate = p.activate;
            e.len = p.len;
        }
        self.pending_bytes.clear();
        self.epoch += 1;
        if self.hits > 0 {
            // The probe found a static region: stage everything from now on.
            self.probing = false;
        } else if staged_traffic && self.had_entries {
            // Real traffic, valid entries, zero matches: the workload has no
            // static region right now — mute until the next probe, which
            // samples a different residue class.
            self.dormant_left = self.dormancy;
            self.dormancy = (self.dormancy * 2).min(DORMANCY_MAX);
            self.probing = true;
            self.phase = self.phase.wrapping_add(1);
            // Stale the moment staging stops.
            self.entries.clear();
            self.table.clear();
            self.sample = self.domain >= SAMPLE_DOMAIN_MIN;
        }
        self.hits = 0;
        self.had_entries = !self.entries.is_empty();
    }

    /// The sync barrier failed: the staged records were never applied
    /// anywhere (receivers discard in-flight syncs on rollback).
    pub(crate) fn rollback(&mut self) {
        self.pending.clear();
        self.pending_bytes.clear();
        self.hits = 0;
    }

    /// `dest`'s replica state was rebuilt from something other than our last
    /// syncs (snapshot reload): every existing entry is unknown there until
    /// re-shipped.
    pub(crate) fn invalidate_dest(&mut self, dest: NodeId) {
        self.valid_from[dest.index()] = self.epoch;
    }

    /// Every destination now holds our entries again (a full sync round
    /// covered every `(master, destination)` pair).
    pub(crate) fn revalidate_all(&mut self) {
        self.valid_from.fill(0);
    }

    /// Forget everything — our own masters' values were rebuilt from
    /// something other than their committed state (initial-state reset or an
    /// incremental snapshot chain), so entries no longer describe what any
    /// replica holds.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.table.clear();
        self.pending.clear();
        self.pending_bytes.clear();
        self.valid_from.fill(0);
        self.hits = 0;
        self.had_entries = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn repeat_after_commit_suppresses_changed_value_does_not() {
        let mut f = SyncFilter::new(2, true);
        let s = f.stage(4, &1.5f64, true);
        assert!(!f.suppress(s, n(1)));
        f.commit();
        // Identical value + bit → suppressed everywhere.
        let s = f.stage(4, &1.5f64, true);
        assert!(f.suppress(s, n(0)) && f.suppress(s, n(1)));
        // Same value, flipped scatter bit → shipped.
        let s = f.stage(4, &1.5f64, false);
        assert!(!f.suppress(s, n(1)));
        f.commit();
        // Different value → shipped.
        let s = f.stage(4, &2.5f64, false);
        assert!(!f.suppress(s, n(1)));
    }

    #[test]
    fn rollback_discards_staged_state() {
        let mut f = SyncFilter::new(1, true);
        f.stage(0, &7u32, false);
        f.rollback();
        // Nothing committed: the retry of the same record must ship.
        let s = f.stage(0, &7u32, false);
        assert!(!f.suppress(s, n(0)));
        f.commit();
        let s = f.stage(0, &7u32, false);
        assert!(f.suppress(s, n(0)));
    }

    #[test]
    fn invalidation_is_per_destination_until_revalidated() {
        let mut f = SyncFilter::new(3, true);
        f.stage(2, &9u64, true);
        f.commit();
        f.invalidate_dest(n(1));
        let s = f.stage(2, &9u64, true);
        assert!(f.suppress(s, n(0)));
        assert!(
            !f.suppress(s, n(1)),
            "rebuilt destination must be re-shipped"
        );
        assert!(f.suppress(s, n(2)));
        // A full sync round re-installs entries everywhere.
        f.commit();
        f.revalidate_all();
        let s = f.stage(2, &9u64, true);
        assert!(f.suppress(s, n(1)));
    }

    #[test]
    fn newer_commits_are_valid_toward_invalidated_destinations() {
        let mut f = SyncFilter::new(2, true);
        f.stage(0, &1u32, false);
        f.stage(1, &9u32, false);
        f.commit();
        f.invalidate_dest(n(1));
        // The value changes after the invalidation: the fresh entry was
        // shipped to the rebuilt destination too, so it suppresses there.
        let s = f.stage(0, &2u32, false);
        assert!(!f.suppress(s, n(1)));
        // Position 1 repeats — a hit that keeps the filter out of dormancy.
        f.stage(1, &9u32, false);
        f.commit();
        let s = f.stage(0, &2u32, false);
        assert!(f.suppress(s, n(1)));
    }

    #[test]
    fn large_partitions_probe_a_sample_and_escalate_on_hit() {
        let mut f = SyncFilter::new(1, true);
        f.set_domain(10_000);
        // Probe superstep: only the phase-0 residue class is staged.
        for p in 0..64u32 {
            f.stage(p, &1.0f32, false);
        }
        assert_eq!(f.pending.len(), 8, "1 in 8 positions staged while probing");
        f.commit();
        // The sampled positions repeat → hits escalate to full staging.
        for p in 0..64u32 {
            f.stage(p, &1.0f32, false);
        }
        f.commit();
        // First full superstep seeds the 56 off-sample positions…
        for p in 0..64u32 {
            f.stage(p, &1.0f32, false);
        }
        assert_eq!(
            f.pending.len(),
            56,
            "off-sample positions seed on escalation"
        );
        f.commit();
        // …after which every repeating position matches.
        for p in 0..64u32 {
            f.stage(p, &1.0f32, false);
        }
        assert_eq!(f.pending.len(), 0);
        let s = f.stage(3, &1.0f32, false);
        assert!(f.suppress(s, n(0)), "off-sample position suppresses too");
    }

    #[test]
    fn small_partitions_never_sample() {
        let mut f = SyncFilter::new(1, true);
        f.set_domain(64);
        for p in 0..64u32 {
            f.stage(p, &1.0f32, false);
        }
        assert_eq!(f.pending.len(), 64, "small domains are probed in full");
    }

    #[test]
    fn unproductive_filter_goes_dormant_then_probes() {
        let mut f = SyncFilter::new(1, true);
        // Superstep 0 seeds the table; superstep 1 stages real traffic
        // against valid entries and matches nothing → the filter mutes.
        f.stage(0, &0u64, false);
        f.commit();
        f.stage(0, &1u64, false);
        f.commit();
        // Dormant: even a would-be repeat is not recognised.
        let s = f.stage(0, &1u64, false);
        assert!(!f.suppress(s, n(0)));
        f.commit();
        // Sleep through the rest of the window; the probe superstep then
        // rebuilds the table and suppression resumes one superstep later.
        for _ in 0..DORMANCY_INITIAL {
            f.commit();
        }
        f.stage(0, &7u64, false);
        f.commit();
        let s = f.stage(0, &7u64, false);
        assert!(f.suppress(s, n(0)), "probe rebuilds and re-arms the filter");
    }

    #[test]
    fn clear_forgets_entries() {
        let mut f = SyncFilter::new(1, true);
        f.stage(0, &3u8, true);
        f.commit();
        f.clear();
        let s = f.stage(0, &3u8, true);
        assert!(!f.suppress(s, n(0)));
    }

    #[test]
    fn disabled_filter_never_suppresses_or_stores() {
        let mut f = SyncFilter::new(1, false);
        let s = f.stage(0, &3u8, true);
        assert!(!f.suppress(s, n(0)));
        f.commit();
        let s = f.stage(0, &3u8, true);
        assert!(!f.suppress(s, n(0)));
    }

    #[test]
    fn delta_span_tracks_the_changed_bytes_of_the_committed_base() {
        let mut f = SyncFilter::new(2, true);
        let s = f.stage(0, &0x11_22_33_44_55_66_77_88u64, true);
        assert_eq!(f.delta_span(s, n(0)), None, "no committed base yet");
        // A static companion position generates a hit every superstep so
        // the filter never goes dormant under the all-changing position 0.
        f.stage(1, &5u64, false);
        f.commit();
        // Low byte flips: a 1-byte span at offset 0 (little-endian).
        let s = f.stage(0, &0x11_22_33_44_55_66_77_89u64, true);
        assert_eq!(f.delta_span(s, n(0)), Some((0, 1)));
        assert_eq!(f.delta_span(s, n(1)), Some((0, 1)));
        f.stage(1, &5u64, false);
        f.commit();
        // An exact repeat is a match, not a delta.
        let s = f.stage(0, &0x11_22_33_44_55_66_77_89u64, true);
        assert!(f.suppress(s, n(0)));
        assert_eq!(f.delta_span(s, n(0)), None);
    }

    #[test]
    fn delta_span_is_refused_toward_invalidated_destinations() {
        let mut f = SyncFilter::new(2, true);
        f.stage(3, &100u64, false);
        f.stage(4, &7u64, false); // static companion: keeps hits > 0
        f.commit();
        f.invalidate_dest(n(1));
        let s = f.stage(3, &101u64, false);
        // Node 0 still holds the base; node 1 was rebuilt from a snapshot
        // and must receive the full value.
        assert_eq!(f.delta_span(s, n(0)), Some((0, 1)));
        assert_eq!(f.delta_span(s, n(1)), None);
        f.stage(4, &7u64, false);
        // A commit newer than the invalidation restores delta eligibility.
        f.commit();
        let s = f.stage(3, &102u64, false);
        assert_eq!(f.delta_span(s, n(1)), Some((0, 1)));
    }

    #[test]
    fn delta_span_requires_a_live_filter_and_stable_width() {
        let mut off = SyncFilter::new(1, false);
        off.stage(0, &1u64, false);
        off.commit();
        let s = off.stage(0, &2u64, false);
        assert_eq!(off.delta_span(s, n(0)), None, "disabled filter: no base");

        let mut f = SyncFilter::new(1, true);
        f.stage(0, &vec![1u8, 2, 3, 4], false);
        f.commit();
        // Width change: no byte-span delta against the old base.
        let s = f.stage(0, &vec![1u8, 2, 3, 4, 5], false);
        assert_eq!(f.delta_span(s, n(0)), None);

        // `clear` forgets the base entirely (masters rebuilt elsewhere).
        let mut g = SyncFilter::new(1, true);
        g.stage(0, &7u64, false);
        g.commit();
        g.clear();
        let s = g.stage(0, &8u64, false);
        assert_eq!(g.delta_span(s, n(0)), None);
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;

    #[test]
    #[ignore]
    fn stage_microbench() {
        let mut f = SyncFilter::new(8, true);
        let n = 2_500u32;
        // Seed.
        for p in 0..n {
            f.stage(p, &(p as f32), true);
        }
        f.commit();
        let t = std::time::Instant::now();
        let iters = 400u64;
        let mut x = 0.0f32;
        for it in 0..iters {
            for p in 0..n {
                let v = (p as f32) + (it as f32); // always changes
                let s = f.stage(p, &v, true);
                if f.suppress(s, NodeId::from_index(0)) {
                    x += 1.0;
                }
            }
            f.commit();
        }
        let per = t.elapsed().as_nanos() as f64 / (iters as f64 * n as f64);
        eprintln!("stage+commit per-update: {per:.1} ns (x={x})");
    }
}

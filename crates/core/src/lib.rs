//! **Imitator** — replication-based fault tolerance for large-scale graph
//! processing (Chen et al., DSN'14 / TPDS'18), reproduced in Rust.
//!
//! Imitator's observation: distributed graph engines already replicate
//! vertices so computation can read neighbours locally. By (1) guaranteeing
//! every vertex has at least `K` replicas, (2) upgrading one replica per
//! vertex to a full-state **mirror** kept fresh by piggybacking on the
//! normal synchronisation messages, and (3) reconstructing a crashed node's
//! state *from cluster memory, in parallel*, fault tolerance becomes almost
//! free during normal execution and recovery takes seconds instead of a
//! checkpoint reload.
//!
//! This crate is the policy layer on top of the `imitator-engine` mechanism:
//!
//! * [`plan`] — fault-tolerance replica placement (§4): extra FT replicas
//!   for vertices without replicas, balanced mirror selection, the
//!   selfish-vertex optimisation;
//! * [`run_edge_cut`] — the distributed BSP runner (Algorithm 1) for the
//!   edge-cut engine (Cyclops), with [`FtMode::Replication`] (Rebirth and
//!   Migration recovery, §5), [`FtMode::Checkpoint`] (the Imitator-CKPT
//!   baseline, §2.2), or no fault tolerance;
//! * [`run_vertex_cut`] — the same for the vertex-cut engine (PowerLyra),
//!   including edge-ckpt files on the DFS (§4.3).
//!
//! # Examples
//!
//! Configure a run with replication-based fault tolerance (see `examples/`
//! for complete programs):
//!
//! ```
//! use imitator::{FtMode, RecoveryStrategy, RunConfig};
//!
//! let cfg = RunConfig {
//!     num_nodes: 4,
//!     max_iters: 10,
//!     ft: FtMode::Replication {
//!         tolerance: 1,
//!         selfish_opt: true,
//!         recovery: RecoveryStrategy::Rebirth,
//!     },
//!     ..RunConfig::default()
//! };
//! assert_eq!(cfg.standbys_needed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ckpt;
mod driver;
mod msg;
pub mod plan;
mod recovery;
mod report;
mod rt;
mod runner_ec;
mod runner_vc;
mod suppress;
pub mod wire;

pub use imitator_cluster::{DetectorConfig, DetectorKind, LinkFaults, NetFaults, TransportKind};
pub use msg::{EcMsg, VcMsg, VertexSync};
pub use report::{RecoveryReport, RunReport};
pub use runner_ec::run_edge_cut;
pub use runner_vc::run_vertex_cut;

use std::time::Duration;

/// How a failed node's state is brought back (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryStrategy {
    /// Reconstruct the crashed node's exact state on a hot-standby machine
    /// that adopts its logical identity (§5.1).
    Rebirth,
    /// Scatter the crashed node's masters over the surviving machines by
    /// promoting their mirrors in place (§5.2) — no standby needed.
    Migration,
}

/// The fault-tolerance mode of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// No fault tolerance (the BASE configuration of Figs. 7 and 13).
    /// Any injected failure aborts the run.
    None,
    /// Checkpoint-based fault tolerance (Imitator-CKPT, §2.2): every
    /// `interval` iterations each node snapshots its masters' state to the
    /// DFS inside the global barrier; recovery rolls the whole cluster back
    /// to the last snapshot and replays lost iterations.
    Checkpoint {
        /// Snapshot period in iterations.
        interval: u64,
        /// Incremental snapshots (§2.3): persist only the masters whose
        /// values changed since the last snapshot (plus the full activation
        /// bitmap, which is cheap); recovery replays the snapshot chain.
        /// `false` writes the full master state every time.
        incremental: bool,
    },
    /// Replication-based fault tolerance (Imitator, §3-5).
    Replication {
        /// Number of simultaneous machine failures to tolerate (`K`): every
        /// vertex gets at least `K` mirrors (§5.3.1).
        tolerance: usize,
        /// Enable the selfish-vertex optimisation (§4.4): vertices with no
        /// out-edges get an FT replica but are never synchronised.
        selfish_opt: bool,
        /// Recovery strategy on failure.
        recovery: RecoveryStrategy,
    },
}

impl FtMode {
    /// Whether replication-based fault tolerance is active.
    pub fn is_replication(&self) -> bool {
        matches!(self, FtMode::Replication { .. })
    }
}

/// Configuration of one distributed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Number of (initially alive) logical nodes.
    pub num_nodes: usize,
    /// Iteration budget; the run also stops early once no vertex is active.
    pub max_iters: u64,
    /// Fault-tolerance mode.
    pub ft: FtMode,
    /// How node failures are noticed. [`DetectorKind::Oracle`] is told
    /// about each crash by the injector (with `detection_delay` latency);
    /// [`DetectorKind::Heartbeat`] infers crashes from missed
    /// sequence-numbered heartbeats and retracts suspicions when late
    /// evidence of life arrives.
    pub detector: DetectorKind,
    /// Oracle-mode failure-detection delay (the paper uses a conservative
    /// 500 ms; tests use zero). Ignored under [`DetectorKind::Heartbeat`].
    pub detection_delay: Duration,
    /// Heartbeat emission period (heartbeat detector only).
    pub hb_interval: Duration,
    /// Silence threshold before a node is *suspected* (heartbeat detector
    /// only). Suspicion is retracted if evidence of life arrives before
    /// the fence confirms it.
    pub hb_timeout: Duration,
    /// Hot standby machines for Rebirth (and for checkpoint recovery, which
    /// also replaces crashed machines).
    pub standbys: usize,
    /// Worker threads each node uses for its local compute phases (the
    /// paper's evaluation runs 4 worker threads per machine). Results are
    /// bit-identical for any value; `0` is treated as `1`.
    pub threads_per_node: usize,
    /// Skip sync records whose codec-encoded value is bitwise identical to
    /// the last record shipped to that destination *and* whose scatter bit
    /// matches (redundant-sync suppression). Results are bit-identical
    /// either way; the skipped records show up in
    /// [`RunReport::suppressed_syncs`].
    pub sync_suppress: bool,
    /// Pipeline supersteps: each compute/gather chunk's sync batch is
    /// staged and shipped through the fabric as soon as the chunk (and all
    /// earlier chunks) completed, with the sync barrier fencing only the
    /// tail. Results and byte accounting are bit-identical either way;
    /// disabling restores the strict compute → send phase ordering.
    pub pipeline: bool,
    /// Delta-encode sync records: when the destination provably holds the
    /// previous value (same validity rule as suppression), ship only the
    /// changed byte span. Results are bit-identical either way; wire bytes
    /// shrink when values change slightly.
    pub delta_sync: bool,
    /// The wire backend nodes communicate over. The default in-process
    /// channels are reliable and ordered; [`TransportKind::Lossy`] injects
    /// seeded drop/duplicate/reorder/delay faults per traffic kind, and
    /// [`TransportKind::Tcp`] ships encoded frames over loopback sockets.
    /// Results are bit-identical across all backends — the transport layer
    /// restores the pre-barrier delivery guarantee with sequence-numbered
    /// idempotent redelivery and pre-barrier retransmission fences.
    pub transport: TransportKind,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            num_nodes: 4,
            max_iters: 100,
            ft: FtMode::None,
            detector: DetectorKind::Oracle,
            detection_delay: Duration::ZERO,
            hb_interval: Duration::from_millis(10),
            hb_timeout: Duration::from_millis(60),
            standbys: 0,
            threads_per_node: 4,
            sync_suppress: true,
            pipeline: true,
            delta_sync: true,
            transport: TransportKind::Channel,
        }
    }
}

impl RunConfig {
    /// Standbys the configured recovery strategy requires per tolerated
    /// failure (Rebirth and Checkpoint consume one per crashed node;
    /// Migration none).
    pub fn standbys_needed(&self) -> usize {
        match self.ft {
            FtMode::Replication {
                recovery: RecoveryStrategy::Rebirth,
                tolerance,
                ..
            } => tolerance,
            FtMode::Checkpoint { .. } => 1,
            _ => 0,
        }
    }

    /// The failure-detector configuration this run requests.
    pub fn detector_config(&self) -> DetectorConfig {
        match self.detector {
            DetectorKind::Oracle => DetectorConfig::oracle(self.detection_delay),
            DetectorKind::Heartbeat => DetectorConfig::heartbeat(self.hb_interval, self.hb_timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standbys_needed_by_mode() {
        let mut cfg = RunConfig::default();
        assert_eq!(cfg.standbys_needed(), 0);
        cfg.ft = FtMode::Checkpoint {
            interval: 2,
            incremental: false,
        };
        assert_eq!(cfg.standbys_needed(), 1);
        cfg.ft = FtMode::Replication {
            tolerance: 3,
            selfish_opt: false,
            recovery: RecoveryStrategy::Rebirth,
        };
        assert_eq!(cfg.standbys_needed(), 3);
        cfg.ft = FtMode::Replication {
            tolerance: 3,
            selfish_opt: false,
            recovery: RecoveryStrategy::Migration,
        };
        assert_eq!(cfg.standbys_needed(), 0);
    }
}
